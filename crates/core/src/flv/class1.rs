//! FLV for class 1 (Algorithm 2): votes only.
//!
//! Class 1 pairs with `FLAG = *` and `TD > (n + 3b + f)/2`, giving
//! 2 rounds per phase, state `vote_p` only, and the resilience bound
//! `n > 5b + 3f` (Table 1). Examples: OneThirdRule (b = 0) and FaB Paxos
//! (f = 0).

use gencon_types::quorum;

use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;
use crate::vote_count::VoteTally;

/// Algorithm 2 of the paper.
///
/// ```text
/// 1: correctVotes ← { v : |{(v,−,−,−) ∈ ~µ}| > n − TD + b }
/// 2: if |correctVotes| = 1 then return v ∈ correctVotes
/// 4: else if |~µ| > 2(n − TD + b) then return ?
/// 6: else return null
/// ```
///
/// Intuition (Figure 1): if `v` was decided, at least `TD − b` honest
/// processes vote `v`, so at most `n − TD + b` messages carry anything else;
/// any sample larger than `2(n − TD + b)` therefore contains `v` more than
/// `n − TD + b` times, and only `v` can pass line 1.
#[derive(Clone, Copy, Default, Debug)]
pub struct Class1Flv;

impl Class1Flv {
    /// Creates the class-1 FLV.
    #[must_use]
    pub fn new() -> Self {
        Class1Flv
    }
}

impl<V: gencon_types::Value> Flv<V> for Class1Flv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let pivot = ctx.n_td_b();

        // Line 1: votes appearing more than n − TD + b times.
        let tally = VoteTally::of_votes(msgs.iter().map(|m| &m.vote));
        let correct_votes: Vec<&V> = tally.votes_above(pivot).collect();

        // Line 2–3.
        if correct_votes.len() == 1 {
            return FlvOutcome::Value(correct_votes[0].clone());
        }
        // Line 4–5.
        if quorum::more_than(msgs.len(), 2 * pivot) {
            return FlvOutcome::Any;
        }
        // Line 7.
        FlvOutcome::NoInfo
    }

    fn name(&self) -> &'static str {
        "class1"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        gencon_types::quorum::class1_min_td(cfg.n(), cfg.f(), cfg.b())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::testutil::{m1, refs};
    use gencon_types::{Config, Phase};

    /// The Figure 1 setting: n = 6, b = 1, f = 0, TD = 5 ⇒ n − TD + b = 2.
    fn fig1_ctx() -> FlvContext {
        FlvContext {
            cfg: Config::new(6, 0, 1).unwrap(),
            td: 5,
            phase: Phase::new(2),
        }
    }

    #[test]
    fn figure1_scenario_recovers_locked_value() {
        // Figure 1: TD − b = 4 honest votes v1, n − TD + b = 2 votes v2.
        let msgs = vec![m1(1), m1(1), m1(1), m1(1), m1(2), m1(2)];
        let out = Class1Flv.evaluate(&fig1_ctx(), &refs(&msgs));
        assert_eq!(out, FlvOutcome::Value(1));
    }

    #[test]
    fn figure1_any_sufficiently_large_subset_returns_v1() {
        // Any subset of > 2(n−TD+b) = 4 messages contains > 2 copies of v1.
        let msgs = vec![m1(1), m1(1), m1(1), m1(1), m1(2), m1(2)];
        let all = refs(&msgs);
        // exhaust all 5-subsets and the 6-set
        for skip in 0..=msgs.len() {
            let subset: Vec<_> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, m)| *m)
                .collect();
            let out = Class1Flv.evaluate(&fig1_ctx(), &subset);
            if subset.len() > 4 {
                assert_eq!(out, FlvOutcome::Value(1), "skip={skip}");
            }
        }
    }

    #[test]
    fn too_few_messages_returns_no_info() {
        // |µ| = 4 is not > 2(n−TD+b) = 4 and no vote clears the pivot.
        let msgs = vec![m1(1), m1(1), m1(2), m1(2)];
        assert_eq!(
            Class1Flv.evaluate(&fig1_ctx(), &refs(&msgs)),
            FlvOutcome::NoInfo
        );
    }

    #[test]
    fn unlocked_large_sample_returns_any() {
        // 5 messages, no vote above pivot (2): 2+2+1 split.
        let msgs = vec![m1(1), m1(1), m1(2), m1(2), m1(3)];
        assert_eq!(
            Class1Flv.evaluate(&fig1_ctx(), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn two_qualifying_votes_is_not_a_unique_answer() {
        // Both votes above pivot ⇒ |correctVotes| = 2 ⇒ line 4 applies.
        let msgs = vec![m1(1), m1(1), m1(1), m1(2), m1(2), m1(2)];
        assert_eq!(
            Class1Flv.evaluate(&fig1_ctx(), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn empty_input_is_no_info() {
        assert_eq!(
            <Class1Flv as Flv<u64>>::evaluate(&Class1Flv, &fig1_ctx(), &[]),
            FlvOutcome::NoInfo
        );
    }

    #[test]
    fn liveness_bound_matches_theorem2() {
        // TD > (n+3b+f)/2 ⇒ n − b − f > 2(n − TD + b): messages from all
        // correct processes always produce a non-null outcome.
        let ctx = fig1_ctx();
        let correct = ctx.cfg.correct_minimum(); // 5
        assert!(correct > 2 * ctx.n_td_b());
        let msgs: Vec<_> = (0..correct).map(|i| m1(i as u64)).collect();
        assert!(!Class1Flv.evaluate(&ctx, &refs(&msgs)).is_no_info());
    }

    #[test]
    fn validity_returns_only_received_votes() {
        let msgs = vec![m1(9), m1(9), m1(9)];
        match Class1Flv.evaluate(&fig1_ctx(), &refs(&msgs)) {
            FlvOutcome::Value(v) => assert_eq!(v, 9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<Class1Flv as Flv<u64>>::name(&Class1Flv), "class1");
    }
}
