//! The FLV ("Find the Locked Value") parameter of the generic algorithm.
//!
//! §3.2 characterizes FLV by three abstract properties:
//!
//! * **FLV-validity** — a returned value (≠ `?`, ≠ `null`) is the vote of
//!   some received message;
//! * **FLV-agreement** — if a value `v` is locked, only `v` or `null` may be
//!   returned;
//! * **FLV-liveness** — on input containing a message from every correct
//!   process, `null` is not returned.
//!
//! §4.1 gives three instantiations (Algorithms 2, 3, 4) that induce the
//! paper's three classes, and §5/§6 four specializations (Algorithms 6, 7,
//! 8, 9). All are implemented here; the executable counterparts of the
//! abstract properties live in [`properties`] and are exercised by unit,
//! integration and property-based tests.

mod ben_or;
mod class1;
mod class2;
mod class3;
mod fab;
mod paxos;
mod pbft;
pub mod properties;

pub use ben_or::BenOrFlv;
pub use class1::Class1Flv;
pub use class2::Class2Flv;
pub use class3::Class3Flv;
pub use fab::FabFlv;
pub use paxos::PaxosFlv;
pub use pbft::PbftFlv;

use std::fmt::Debug;

use gencon_types::{Config, Phase};

use crate::messages::SelectionMsg;

/// Result of an FLV evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlvOutcome<V> {
    /// A (possibly locked) value was identified; the selector must adopt it.
    Value(V),
    /// No value is locked: any received value may be selected (the paper's
    /// `?`). Line 11 of Algorithm 1 then chooses deterministically — or
    /// flips a coin in the randomized adaptation of §6.
    Any,
    /// Not enough information (the paper's `null`); the selector keeps its
    /// state unchanged and the phase will make no progress.
    NoInfo,
}

impl<V> FlvOutcome<V> {
    /// The carried value, if [`FlvOutcome::Value`].
    #[must_use]
    pub fn value(&self) -> Option<&V> {
        match self {
            FlvOutcome::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this outcome is `null`.
    #[must_use]
    pub fn is_no_info(&self) -> bool {
        matches!(self, FlvOutcome::NoInfo)
    }
}

/// Evaluation context handed to FLV implementations.
#[derive(Clone, Copy, Debug)]
pub struct FlvContext {
    /// System parameters n, f, b (+ unanimity switch).
    pub cfg: Config,
    /// The decision threshold `TD` of the instantiation.
    pub td: usize,
    /// The phase whose selection round is being evaluated (needed by the
    /// Ben-Or FLV, which looks for votes validated in `φ − 1`).
    pub phase: Phase,
}

impl FlvContext {
    /// `n − TD + b`, the pivotal quantity of Algorithms 2–4.
    #[must_use]
    pub fn n_td_b(&self) -> usize {
        self.cfg.n() + self.cfg.b() - self.td
    }
}

/// The FLV function: examines the selection-round messages `~µ_p^r` and
/// tries to identify the locked value.
///
/// Implementations must be pure functions of `(ctx, msgs)` — determinism is
/// what lets `Pcons` force all correct selectors to select the same value.
pub trait Flv<V>: Send + Sync + Debug {
    /// Evaluates the function on the received selection messages.
    ///
    /// `msgs` contains one entry per *received* message (the ⊥ entries of
    /// `~µ_p^r` are absent); order is sender order but implementations must
    /// not rely on it.
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V>;

    /// A short name for tables and traces (e.g. `"class2"`).
    fn name(&self) -> &'static str;

    /// The minimal `TD` for which this FLV's liveness theorem holds
    /// (Theorem 2: `TD > (n+3b+f)/2`; Theorem 3: `TD > 3b+f`; Theorem 4:
    /// `TD > 2b+f`). [`Params::validate`](crate::params::Params::validate)
    /// rejects thresholds below it.
    fn min_live_td(&self, cfg: &Config) -> usize;

    /// Whether liveness additionally requires Selector-strongValidity
    /// (`|S| > 3b + 2f`, §4.1.3) — true for the class-3 FLVs.
    fn requires_strong_selector(&self) -> bool {
        false
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Builders shared by the FLV unit tests.

    use gencon_types::{Phase, ProcessSet};

    use crate::messages::SelectionMsg;
    use crate::state::History;

    /// Message with vote only (class-1 shape).
    pub fn m1(vote: u64) -> SelectionMsg<u64> {
        SelectionMsg {
            vote,
            ts: Phase::ZERO,
            history: History::new(),
            selector: ProcessSet::new(),
        }
    }

    /// Message with vote + timestamp (class-2 shape).
    pub fn m2(vote: u64, ts: u64) -> SelectionMsg<u64> {
        SelectionMsg {
            vote,
            ts: Phase::new(ts),
            history: History::new(),
            selector: ProcessSet::new(),
        }
    }

    /// Message with vote + timestamp + history (class-3 shape).
    pub fn m3(vote: u64, ts: u64, history: &[(u64, u64)]) -> SelectionMsg<u64> {
        SelectionMsg {
            vote,
            ts: Phase::new(ts),
            history: history
                .iter()
                .map(|&(v, p)| (v, Phase::new(p)))
                .collect::<History<u64>>(),
            selector: ProcessSet::new(),
        }
    }

    /// Borrows a message vector the way the engine hands it to FLV.
    pub fn refs(msgs: &[SelectionMsg<u64>]) -> Vec<&SelectionMsg<u64>> {
        msgs.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let v: FlvOutcome<u64> = FlvOutcome::Value(3);
        assert_eq!(v.value(), Some(&3));
        assert!(!v.is_no_info());
        let a: FlvOutcome<u64> = FlvOutcome::Any;
        assert_eq!(a.value(), None);
        let n: FlvOutcome<u64> = FlvOutcome::NoInfo;
        assert!(n.is_no_info());
    }

    #[test]
    fn context_pivot_quantity() {
        let cfg = Config::new(6, 0, 1).unwrap();
        let ctx = FlvContext {
            cfg,
            td: 5,
            phase: Phase::new(1),
        };
        // n − TD + b = 6 − 5 + 1 = 2 (the Figure 1 setting).
        assert_eq!(ctx.n_td_b(), 2);
    }
}
