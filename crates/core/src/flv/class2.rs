//! FLV for class 2 (Algorithm 3): votes + timestamps.
//!
//! Class 2 pairs with `FLAG = φ` and `TD > 3b + f`, giving 3 rounds per
//! phase, state `(vote_p, ts_p)` and the resilience bound `n > 4b + 2f`
//! (Table 1). Examples: Paxos and CT (b = 0) and the paper's new MQB
//! algorithm (f = 0).

use gencon_types::quorum;

use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;
use crate::vote_count::VoteTally;

/// Algorithm 3 of the paper.
///
/// ```text
/// 1: possibleVotes ← {# (vote, ts) ∈ ~µ :
///        |{(vote′, ts′) ∈ ~µ : vote = vote′ ∨ ts > ts′}| > n − TD + b #}
/// 2: correctVotes ← { (vote) ∈ possibleVotes :
///        |{(vote′) ∈ possibleVotes : vote = vote′}| > b }
/// 3: if |correctVotes| = 1 then return v
/// 5: else if |~µ| > n − TD + 2b then return ?
/// 7: else return null
/// ```
///
/// `possibleVotes` is a **multiset** of messages: a message `(v, ts)` is
/// *possible* when more than `n − TD + b` received messages either agree on
/// `v` or are strictly older than `ts`. A vote is *correct* when more than
/// `b` possible messages carry it — one of them must then come from an
/// honest process (Figure 2's geometry).
#[derive(Clone, Copy, Default, Debug)]
pub struct Class2Flv;

impl Class2Flv {
    /// Creates the class-2 FLV.
    #[must_use]
    pub fn new() -> Self {
        Class2Flv
    }
}

/// Shared by classes 2/3 (line 1 of Algorithms 3 and 4): indices of the
/// messages supported by more than `bound` messages that agree on the vote
/// or are strictly older.
pub(crate) fn possible_vote_indices<V: gencon_types::Value>(
    msgs: &[&SelectionMsg<V>],
    bound: usize,
) -> Vec<usize> {
    (0..msgs.len())
        .filter(|&i| {
            let (vote, ts) = (&msgs[i].vote, msgs[i].ts);
            let support = msgs.iter().filter(|m| m.vote == *vote || ts > m.ts).count();
            quorum::more_than(support, bound)
        })
        .collect()
}

impl<V: gencon_types::Value> Flv<V> for Class2Flv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let pivot = ctx.n_td_b();
        let b = ctx.cfg.b();

        // Line 1 (multiset semantics: one entry per qualifying message).
        let possible = possible_vote_indices(msgs, pivot);

        // Line 2: votes carried by more than b possible messages.
        let tally = VoteTally::of_votes(possible.iter().map(|&i| &msgs[i].vote));
        let correct_votes: Vec<&V> = tally.votes_above(b).collect();

        // Lines 3–4.
        if correct_votes.len() == 1 {
            return FlvOutcome::Value(correct_votes[0].clone());
        }
        // Lines 5–6.
        if quorum::more_than(msgs.len(), pivot + b) {
            return FlvOutcome::Any;
        }
        // Line 8.
        FlvOutcome::NoInfo
    }

    fn name(&self) -> &'static str {
        "class2"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        gencon_types::quorum::class2_min_td(cfg.f(), cfg.b())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::testutil::{m2, refs};
    use gencon_types::{Config, Phase};

    /// The Figure 2 setting: n = 5, b = 1, f = 0, TD = 4 ⇒ n − TD + b = 2.
    fn fig2_ctx() -> FlvContext {
        FlvContext {
            cfg: Config::new(5, 0, 1).unwrap(),
            td: 4,
            phase: Phase::new(3),
        }
    }

    #[test]
    fn figure2_scenario_recovers_locked_value() {
        // Figure 2: TD − b = 3 honest (v1, φ1); one honest (v2, φ2' < φ1);
        // one Byzantine (v2, φ2 > φ1). φ1 = 2 here.
        let msgs = vec![m2(1, 2), m2(1, 2), m2(1, 2), m2(2, 1), m2(2, 5)];
        assert_eq!(
            Class2Flv.evaluate(&fig2_ctx(), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn figure2_all_large_subsets_return_v1() {
        let msgs = vec![m2(1, 2), m2(1, 2), m2(1, 2), m2(2, 1), m2(2, 5)];
        let all = refs(&msgs);
        // |µ| > n − TD + 2b = 4 ⇒ only the full 5-message set qualifies for
        // `?`; check every subset of size ≥ TD − b never returns v2.
        for mask in 0u32..(1 << msgs.len()) {
            let subset: Vec<_> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, m)| *m)
                .collect();
            match Class2Flv.evaluate(&fig2_ctx(), &subset) {
                FlvOutcome::Value(v) => {
                    assert_eq!(v, 1, "subset mask {mask:b} returned unlocked value")
                }
                FlvOutcome::Any => panic!(
                    "subset mask {mask:b} returned ? although v1 is locked (possible only \
                     if the adversary withholds honest messages — here all honest sent v1-\
                     compatible state)"
                ),
                FlvOutcome::NoInfo => {}
            }
        }
    }

    #[test]
    fn byzantine_high_timestamp_cannot_hijack() {
        // A Byzantine process claims (v2, huge ts): its own message has huge
        // support via "ts > ts′", but no honest duplicate exists, so line 2
        // filters it out (count must exceed b = 1).
        let msgs = vec![m2(1, 2), m2(1, 2), m2(1, 2), m2(1, 2), m2(2, 99)];
        assert_eq!(
            Class2Flv.evaluate(&fig2_ctx(), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn fresh_system_returns_any_on_quorum() {
        // All timestamps 0, all votes distinct: nothing locked.
        let msgs = vec![m2(1, 0), m2(2, 0), m2(3, 0), m2(4, 0), m2(5, 0)];
        assert_eq!(
            Class2Flv.evaluate(&fig2_ctx(), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn insufficient_sample_returns_no_info() {
        // |µ| = 3 is not > n − TD + 2b = 3.
        let msgs = vec![m2(1, 0), m2(2, 0), m2(3, 0)];
        assert_eq!(
            Class2Flv.evaluate(&fig2_ctx(), &refs(&msgs)),
            FlvOutcome::NoInfo
        );
        // One more message crosses the bound and yields `?`.
        let msgs4 = vec![m2(1, 0), m2(2, 0), m2(3, 0), m2(4, 0)];
        assert_eq!(
            Class2Flv.evaluate(&fig2_ctx(), &refs(&msgs4)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn liveness_bound_matches_theorem3() {
        // TD > 3b + f ⇒ n − b − f > n − TD + 2b.
        let ctx = fig2_ctx();
        assert!(ctx.cfg.correct_minimum() > ctx.n_td_b() + ctx.cfg.b());
        let msgs: Vec<_> = (0..ctx.cfg.correct_minimum())
            .map(|i| m2(i as u64, 0))
            .collect();
        assert!(!Class2Flv.evaluate(&ctx, &refs(&msgs)).is_no_info());
    }

    #[test]
    fn same_timestamp_same_vote_counts_as_support() {
        // 2 honest with (v1, φ1) support each other via vote equality even
        // though neither dominates by timestamp.
        let msgs = vec![m2(1, 3), m2(1, 3), m2(1, 3), m2(2, 0), m2(2, 0)];
        assert_eq!(
            Class2Flv.evaluate(&fig2_ctx(), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn empty_input_is_no_info() {
        assert_eq!(
            <Class2Flv as Flv<u64>>::evaluate(&Class2Flv, &fig2_ctx(), &[]),
            FlvOutcome::NoInfo
        );
    }

    #[test]
    fn possible_vote_indices_multiset_semantics() {
        let msgs = vec![m2(1, 2), m2(1, 2), m2(2, 3)];
        let r = refs(&msgs);
        // bound 1: (1,2) supported by 2 (vote equality) + not by (2,3)?
        // (2,3) has ts 3 > 2, so it supports… no: support counts messages m
        // with m.vote == vote OR ts > m.ts — (2,3) has different vote and
        // ts(candidate)=2 is NOT > 3. So support((1,2)) = 2.
        // support((2,3)) = itself (vote) + both (1,2) via ts 3 > 2 = 3.
        let poss = possible_vote_indices(&r, 2);
        assert_eq!(poss, vec![2], "only (2,3) has support > 2");
        let poss1 = possible_vote_indices(&r, 1);
        assert_eq!(poss1, vec![0, 1, 2]);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<Class2Flv as Flv<u64>>::name(&Class2Flv), "class2");
    }
}
