//! Executable forms of the abstract FLV properties of §3.2.
//!
//! The paper proves each FLV instantiation correct by showing three
//! properties. This module turns them into reusable checkers so unit,
//! integration and property-based tests all speak the same language:
//!
//! * [`validity_holds`] — FLV-validity,
//! * [`agreement_holds`] — FLV-agreement (relative to a known locked value),
//! * [`liveness_holds`] — FLV-liveness.
//!
//! It also provides [`locked_distribution`], which builds message vectors
//! consistent with "value `v` is locked" — the precondition under which
//! FLV-agreement must hold (a decision in an earlier round left at least
//! `TD − b` honest processes voting `v`).

use gencon_types::{Phase, ProcessSet, Value};

use crate::flv::FlvOutcome;
use crate::messages::SelectionMsg;
use crate::state::History;

/// FLV-validity: a returned value is the vote of some received message.
#[must_use]
pub fn validity_holds<V: Value>(out: &FlvOutcome<V>, msgs: &[&SelectionMsg<V>]) -> bool {
    match out {
        FlvOutcome::Value(v) => msgs.iter().any(|m| m.vote == *v),
        FlvOutcome::Any | FlvOutcome::NoInfo => true,
    }
}

/// FLV-agreement: when `locked` is locked, only `locked` or `null` may come
/// back. (`?` would let a selector adopt a conflicting value.)
#[must_use]
pub fn agreement_holds<V: Value>(out: &FlvOutcome<V>, locked: &V) -> bool {
    match out {
        FlvOutcome::Value(v) => v == locked,
        FlvOutcome::NoInfo => true,
        FlvOutcome::Any => false,
    }
}

/// FLV-liveness: with messages from all correct processes present, `null`
/// must not be returned.
#[must_use]
pub fn liveness_holds<V: Value>(out: &FlvOutcome<V>) -> bool {
    !matches!(out, FlvOutcome::NoInfo)
}

/// A Byzantine contribution to a locked scenario: claimed vote, claimed
/// timestamp, and a fully forged history.
pub type ByzantineClaim<V> = (V, Phase, Vec<(V, Phase)>);

/// Parameters of a "locked value" message distribution.
#[derive(Clone, Debug)]
pub struct LockedScenario<V> {
    /// The locked value.
    pub locked: V,
    /// Phase in which it was validated (`φ − 1` for a decision in phase
    /// `φ − 1`; `Phase::ZERO` for the all-same-initial-value case).
    pub validated_at: Phase,
    /// Number of honest messages carrying the locked vote (must be
    /// ≥ `TD − b` for the scenario to be reachable).
    pub honest_locked: usize,
    /// Honest messages with *older* state: `(vote, ts)` with `ts <`
    /// `validated_at`.
    pub honest_stale: Vec<(V, Phase)>,
    /// Byzantine messages: arbitrary `(vote, ts, fake_history)` triples.
    pub byzantine: Vec<ByzantineClaim<V>>,
}

/// Builds the selection-round message vector of a locked scenario.
///
/// Honest locked messages carry the truthful history `{(v, 0)?, (v, ts)}`;
/// stale messages carry their own truthful histories **plus** the locked
/// pair when `attest_stale` is set (processes that selected `v` in the
/// locking phase but missed its validation — they revert their vote yet keep
/// the history entry, which is what makes the class-3 FLV live).
#[must_use]
pub fn locked_distribution<V: Value>(
    s: &LockedScenario<V>,
    attest_stale: bool,
) -> Vec<SelectionMsg<V>> {
    let mut msgs = Vec::new();
    for _ in 0..s.honest_locked {
        let mut h = History::initial(s.locked.clone());
        h.record(s.locked.clone(), s.validated_at);
        msgs.push(SelectionMsg {
            vote: s.locked.clone(),
            ts: s.validated_at,
            history: h,
            selector: ProcessSet::new(),
        });
    }
    for (vote, ts) in &s.honest_stale {
        let mut h = History::initial(vote.clone());
        if !ts.is_zero() {
            h.record(vote.clone(), *ts);
        }
        if attest_stale {
            h.record(s.locked.clone(), s.validated_at);
        }
        msgs.push(SelectionMsg {
            vote: vote.clone(),
            ts: *ts,
            history: h,
            selector: ProcessSet::new(),
        });
    }
    for (vote, ts, hist) in &s.byzantine {
        msgs.push(SelectionMsg {
            vote: vote.clone(),
            ts: *ts,
            history: hist.iter().cloned().collect(),
            selector: ProcessSet::new(),
        });
    }
    msgs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::testutil::m1;

    #[test]
    fn validity_checker() {
        let msgs = [m1(1), m1(2)];
        let refs: Vec<_> = msgs.iter().collect();
        assert!(validity_holds(&FlvOutcome::Value(1), &refs));
        assert!(!validity_holds(&FlvOutcome::Value(9), &refs));
        assert!(validity_holds(&FlvOutcome::Any, &refs));
        assert!(validity_holds(&FlvOutcome::NoInfo, &refs));
    }

    #[test]
    fn agreement_checker() {
        assert!(agreement_holds(&FlvOutcome::Value(5), &5));
        assert!(!agreement_holds(&FlvOutcome::Value(6), &5));
        assert!(agreement_holds(&FlvOutcome::NoInfo, &5));
        assert!(!agreement_holds::<u64>(&FlvOutcome::Any, &5));
    }

    #[test]
    fn liveness_checker() {
        assert!(liveness_holds::<u64>(&FlvOutcome::Value(1)));
        assert!(liveness_holds::<u64>(&FlvOutcome::Any));
        assert!(!liveness_holds::<u64>(&FlvOutcome::NoInfo));
    }

    #[test]
    fn locked_distribution_shapes() {
        let s = LockedScenario {
            locked: 7u64,
            validated_at: Phase::new(2),
            honest_locked: 2,
            honest_stale: vec![(3, Phase::new(1)), (4, Phase::ZERO)],
            byzantine: vec![(9, Phase::new(8), vec![(9, Phase::new(8))])],
        };
        let msgs = locked_distribution(&s, true);
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].vote, 7);
        assert_eq!(msgs[0].ts, Phase::new(2));
        assert!(msgs[0].history.contains(&7, Phase::new(2)));
        // stale attestors carry the locked pair
        assert!(msgs[2].history.contains(&7, Phase::new(2)));
        assert_eq!(msgs[2].vote, 3);
        // byzantine keeps its forged history
        assert!(msgs[4].history.contains(&9, Phase::new(8)));

        let unattested = locked_distribution(&s, false);
        assert!(!unattested[2].history.contains(&7, Phase::new(2)));
    }
}
