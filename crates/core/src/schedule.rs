//! The `FLAG` parameter and the mapping from executor rounds to
//! `(phase, round-kind)` pairs.
//!
//! With `FLAG = φ` each phase runs selection → validation → decision
//! (3 rounds). With `FLAG = *` the validation round is suppressed (§3.1),
//! so phases are selection → decision (2 rounds). The §3.1 first-phase
//! optimization additionally drops the selection round of phase 1.

use std::fmt;

use gencon_types::{Phase, Round, RoundKind};

/// The `FLAG` parameter of the decision round (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Flag {
    /// `FLAG = *`: all votes count in the decision round; the validation
    /// round is suppressed, `ts`/`history` are unnecessary (class 1).
    Star,
    /// `FLAG = φ`: only votes validated in the current phase count
    /// (classes 2 and 3).
    Phi,
}

impl Flag {
    /// Rounds per phase this flag induces (Table 1's last column).
    #[must_use]
    pub fn rounds_per_phase(self) -> usize {
        match self {
            Flag::Star => 2,
            Flag::Phi => 3,
        }
    }

    /// The round kinds of one phase, in order.
    #[must_use]
    pub fn kinds(self) -> &'static [RoundKind] {
        match self {
            Flag::Star => &[RoundKind::Selection, RoundKind::Decision],
            Flag::Phi => &[
                RoundKind::Selection,
                RoundKind::Validation,
                RoundKind::Decision,
            ],
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Flag::Star => f.write_str("*"),
            Flag::Phi => f.write_str("φ"),
        }
    }
}

/// Maps global executor rounds `1, 2, 3, …` to the algorithm's
/// phase/round-kind structure.
///
/// All honest processes share the same schedule (it is a pure function of
/// the instantiation parameters), so the lock-step executor needs no
/// per-process coordination.
#[derive(Clone, Copy, Debug)]
pub struct Schedule {
    flag: Flag,
    skip_first_selection: bool,
}

impl Schedule {
    /// Creates a schedule for `flag`, optionally applying the §3.1
    /// first-phase optimization (selection round of phase 1 suppressed).
    #[must_use]
    pub fn new(flag: Flag, skip_first_selection: bool) -> Self {
        Schedule {
            flag,
            skip_first_selection,
        }
    }

    /// The flag.
    #[must_use]
    pub fn flag(&self) -> Flag {
        self.flag
    }

    /// Whether phase 1 skips its selection round.
    #[must_use]
    pub fn skips_first_selection(&self) -> bool {
        self.skip_first_selection
    }

    /// Rounds in a full phase.
    #[must_use]
    pub fn rounds_per_phase(&self) -> usize {
        self.flag.rounds_per_phase()
    }

    /// The `(phase, kind)` a global round maps to.
    #[must_use]
    pub fn locate(&self, r: Round) -> (Phase, RoundKind) {
        let kinds = self.flag.kinds();
        let rpp = kinds.len() as u64;
        let mut r0 = r.number() - 1; // 0-based
        if self.skip_first_selection {
            let first_phase_rounds = rpp - 1;
            if r0 < first_phase_rounds {
                return (Phase::FIRST, kinds[(r0 + 1) as usize]);
            }
            r0 -= first_phase_rounds;
            let phase = Phase::new(2 + r0 / rpp);
            return (phase, kinds[(r0 % rpp) as usize]);
        }
        let phase = Phase::new(1 + r0 / rpp);
        (phase, kinds[(r0 % rpp) as usize])
    }

    /// The global round of `(phase, kind)`, or `None` when the schedule
    /// skips it (e.g. validation under `FLAG = *`, or phase-1 selection with
    /// the optimization). Useful to tests and trace analysis.
    #[must_use]
    pub fn round_of(&self, phase: Phase, kind: RoundKind) -> Option<Round> {
        let kinds = self.flag.kinds();
        let idx = kinds.iter().position(|k| *k == kind)?;
        let rpp = kinds.len() as u64;
        if phase.is_zero() {
            return None;
        }
        if self.skip_first_selection {
            if phase == Phase::FIRST {
                if kind == RoundKind::Selection {
                    return None;
                }
                return Some(Round::new(idx as u64));
            }
            let base = rpp - 1 + (phase.number() - 2) * rpp;
            return Some(Round::new(base + idx as u64 + 1));
        }
        Some(Round::new((phase.number() - 1) * rpp + idx as u64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_structure() {
        assert_eq!(Flag::Star.rounds_per_phase(), 2);
        assert_eq!(Flag::Phi.rounds_per_phase(), 3);
        assert_eq!(Flag::Star.to_string(), "*");
        assert_eq!(Flag::Phi.to_string(), "φ");
    }

    #[test]
    fn phi_schedule_is_the_paper_numbering() {
        // r = 3φ−2 selection, 3φ−1 validation, 3φ decision.
        let s = Schedule::new(Flag::Phi, false);
        for phi in 1..=4u64 {
            assert_eq!(
                s.locate(Round::new(3 * phi - 2)),
                (Phase::new(phi), RoundKind::Selection)
            );
            assert_eq!(
                s.locate(Round::new(3 * phi - 1)),
                (Phase::new(phi), RoundKind::Validation)
            );
            assert_eq!(
                s.locate(Round::new(3 * phi)),
                (Phase::new(phi), RoundKind::Decision)
            );
        }
    }

    #[test]
    fn star_schedule_has_two_rounds() {
        let s = Schedule::new(Flag::Star, false);
        assert_eq!(
            s.locate(Round::new(1)),
            (Phase::new(1), RoundKind::Selection)
        );
        assert_eq!(
            s.locate(Round::new(2)),
            (Phase::new(1), RoundKind::Decision)
        );
        assert_eq!(
            s.locate(Round::new(3)),
            (Phase::new(2), RoundKind::Selection)
        );
        assert_eq!(
            s.locate(Round::new(4)),
            (Phase::new(2), RoundKind::Decision)
        );
    }

    #[test]
    fn skip_first_selection_phi() {
        let s = Schedule::new(Flag::Phi, true);
        assert_eq!(
            s.locate(Round::new(1)),
            (Phase::new(1), RoundKind::Validation)
        );
        assert_eq!(
            s.locate(Round::new(2)),
            (Phase::new(1), RoundKind::Decision)
        );
        assert_eq!(
            s.locate(Round::new(3)),
            (Phase::new(2), RoundKind::Selection)
        );
        assert_eq!(
            s.locate(Round::new(4)),
            (Phase::new(2), RoundKind::Validation)
        );
        assert_eq!(
            s.locate(Round::new(5)),
            (Phase::new(2), RoundKind::Decision)
        );
        assert_eq!(
            s.locate(Round::new(6)),
            (Phase::new(3), RoundKind::Selection)
        );
    }

    #[test]
    fn skip_first_selection_star() {
        let s = Schedule::new(Flag::Star, true);
        assert_eq!(
            s.locate(Round::new(1)),
            (Phase::new(1), RoundKind::Decision)
        );
        assert_eq!(
            s.locate(Round::new(2)),
            (Phase::new(2), RoundKind::Selection)
        );
        assert_eq!(
            s.locate(Round::new(3)),
            (Phase::new(2), RoundKind::Decision)
        );
    }

    #[test]
    fn round_of_inverts_locate() {
        for flag in [Flag::Star, Flag::Phi] {
            for skip in [false, true] {
                let s = Schedule::new(flag, skip);
                for r in 1..=30u64 {
                    let (phase, kind) = s.locate(Round::new(r));
                    assert_eq!(
                        s.round_of(phase, kind),
                        Some(Round::new(r)),
                        "flag {flag:?} skip {skip} r {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_of_skipped_rounds_is_none() {
        let star = Schedule::new(Flag::Star, false);
        assert_eq!(star.round_of(Phase::new(2), RoundKind::Validation), None);
        let skip = Schedule::new(Flag::Phi, true);
        assert_eq!(skip.round_of(Phase::FIRST, RoundKind::Selection), None);
        assert_eq!(skip.round_of(Phase::ZERO, RoundKind::Selection), None);
    }

    #[test]
    fn accessors() {
        let s = Schedule::new(Flag::Phi, true);
        assert_eq!(s.flag(), Flag::Phi);
        assert!(s.skips_first_selection());
        assert_eq!(s.rounds_per_phase(), 3);
    }
}
