//! The generic consensus engine: a line-by-line implementation of
//! Algorithm 1.
//!
//! [`GenericConsensus`] implements [`RoundProcess`]; any executor that
//! drives closed rounds (the `gencon-sim` lock-step simulator, the
//! `gencon-net` threaded runtime, or a `Pcons` stack from `gencon-pcons`)
//! can run it. The paper's line numbers are cited throughout so the code
//! can be audited against Algorithm 1 directly.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gencon_types::{quorum, Phase, ProcessId, ProcessSet, Round, RoundKind, Value};

use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};

use crate::flv::{FlvContext, FlvOutcome};
use crate::messages::{ConsensusMsg, DecisionMsg, SelectionMsg, ValidationMsg};
use crate::params::{ChoicePolicy, LivenessMode, Params, ParamsError};
use crate::schedule::Schedule;
use crate::state::History;
use crate::vote_count::VoteTally;

/// A decision, with the phase and round it was reached in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Decision<V> {
    /// The decided value.
    pub value: V,
    /// The phase of the deciding round.
    pub phase: Phase,
    /// The global round number.
    pub round: Round,
}

/// One process of the generic consensus algorithm (Algorithm 1).
///
/// # Example
///
/// ```
/// use gencon_core::{ClassId, GenericConsensus, Params};
/// use gencon_types::{Config, ProcessId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = Config::byzantine(4, 1)?; // PBFT-style system
/// let params = Params::<u64>::for_class(ClassId::Three, cfg)?;
/// let p0 = GenericConsensus::new(ProcessId::new(0), params, 42)?;
/// assert_eq!(p0.vote(), &42);
/// assert!(p0.decision().is_none());
/// # Ok(())
/// # }
/// ```
pub struct GenericConsensus<V: Value> {
    id: ProcessId,
    params: Params<V>,
    schedule: Schedule,

    // ---- the paper's process state (lines 1–4) ----
    vote: V,
    ts: Phase,
    history: History<V>,
    /// The value validated at `ts` — the target of line 26's revert
    /// (`v such that (v, ts_p) ∈ history_p`).
    last_validated: V,

    // ---- per-phase scratch ----
    selected: Option<V>,
    validators: ProcessSet,

    decision: Option<Decision<V>>,
    coin: Option<StdRng>,
}

impl<V: Value> GenericConsensus<V> {
    /// Creates a process with the given parameters and initial value
    /// (line 2: `vote_p := init_p`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] when the parameters violate any side
    /// condition of Theorem 1 (see [`Params::validate`]).
    pub fn new(id: ProcessId, params: Params<V>, init: V) -> Result<Self, ParamsError> {
        params.validate()?;
        Ok(Self::new_unchecked(id, params, init))
    }

    /// Creates a process **without** validating the parameters.
    ///
    /// Exists so experiments can demonstrate *why* the side conditions of
    /// Theorem 1 matter (e.g. the resilience-boundary experiment runs
    /// deliberately under-provisioned systems and watches termination or
    /// agreement fail). Production code should always use
    /// [`GenericConsensus::new`].
    #[must_use]
    pub fn new_unchecked(id: ProcessId, params: Params<V>, init: V) -> Self {
        let schedule = params.schedule();
        let coin = match &params.choice {
            ChoicePolicy::UniformCoin { seed, .. } => {
                // Independent stream per process.
                Some(StdRng::seed_from_u64(
                    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.index() as u64 + 1)),
                ))
            }
            ChoicePolicy::DeterministicMin => None,
        };
        let mut history = History::initial(init.clone());
        let mut selected = None;
        let mut validators = ProcessSet::new();
        if params.skip_first_selection {
            // §3.1 first-phase optimization: the skipped selection round is
            // emulated at initialization — every process "selects" its own
            // initial value (safe: if a value is initially locked, all
            // honest processes share it) and the constant validator set is
            // installed directly.
            selected = Some(init.clone());
            history.record(init.clone(), Phase::FIRST);
            validators = params.selector.select(id, Phase::FIRST, &params.cfg);
        }
        GenericConsensus {
            id,
            schedule,
            vote: init.clone(),
            ts: Phase::ZERO,
            history,
            last_validated: init,
            selected,
            validators,
            decision: None,
            coin,
            params,
        }
    }

    /// The parameters this process runs with.
    #[must_use]
    pub fn params(&self) -> &Params<V> {
        &self.params
    }

    /// Current vote (`vote_p`).
    #[must_use]
    pub fn vote(&self) -> &V {
        &self.vote
    }

    /// Current timestamp (`ts_p`).
    #[must_use]
    pub fn ts(&self) -> Phase {
        self.ts
    }

    /// The history log (`history_p`).
    #[must_use]
    pub fn history(&self) -> &History<V> {
        &self.history
    }

    /// The validator set this process currently believes in.
    #[must_use]
    pub fn validators(&self) -> ProcessSet {
        self.validators
    }

    /// The value selected in the current phase, if any (`select_p`).
    #[must_use]
    pub fn selected(&self) -> Option<&V> {
        self.selected.as_ref()
    }

    /// The decision, once reached.
    #[must_use]
    pub fn decision(&self) -> Option<&Decision<V>> {
        self.decision.as_ref()
    }

    /// The schedule (round ↔ phase/kind mapping) of this instantiation.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    // ---- selection round (lines 5–15) ----

    fn selection_send(&mut self, phase: Phase) -> Outgoing<ConsensusMsg<V>> {
        let dests = self
            .params
            .selector
            .select(self.id, phase, &self.params.cfg);
        if dests.is_empty() {
            return Outgoing::Silent;
        }
        let profile = self.params.profile;
        let msg = SelectionMsg {
            vote: self.vote.clone(),
            ts: if profile.sends_ts() {
                self.ts
            } else {
                Phase::ZERO
            },
            history: if profile.sends_history() {
                self.history.clone()
            } else {
                History::new()
            },
            // With a constant selector the set is known to everyone and is
            // not transmitted (§3.1).
            selector: if self.params.constant_selector {
                ProcessSet::new()
            } else {
                dests
            },
        };
        Outgoing::Multicast {
            dests,
            msg: ConsensusMsg::Selection(phase, msg),
        }
    }

    fn selection_receive(&mut self, phase: Phase, heard: &HeardOf<ConsensusMsg<V>>) {
        let msgs: Vec<&SelectionMsg<V>> = heard
            .messages()
            .filter_map(ConsensusMsg::as_selection)
            .collect();

        // Line 9: select_p ← FLV(~µ).
        let ctx = FlvContext {
            cfg: self.params.cfg,
            td: self.params.td,
            phase,
        };
        self.selected = match self.params.flv.evaluate(&ctx, &msgs) {
            FlvOutcome::Value(v) => Some(v),
            // Lines 10–11: choose deterministically (or flip the §6 coin).
            FlvOutcome::Any => Some(self.choose(&msgs)),
            FlvOutcome::NoInfo => None,
        };

        // Lines 12–14.
        if let Some(v) = self.selected.clone() {
            self.vote = v.clone();
            self.history.record(v, phase);
        }

        // Line 15: elect validators from the selector sets received.
        self.validators = if self.params.constant_selector {
            self.params
                .selector
                .select(self.id, phase, &self.params.cfg)
        } else {
            let threshold_base = self.params.cfg.n() + self.params.cfg.b();
            let mut counts: BTreeMap<ProcessSet, usize> = BTreeMap::new();
            for m in &msgs {
                if !m.selector.is_empty() {
                    *counts.entry(m.selector).or_insert(0) += 1;
                }
            }
            counts
                .into_iter()
                .find(|(_, c)| quorum::more_than_half(*c, threshold_base))
                .map(|(s, _)| s)
                .unwrap_or_default()
        };
    }

    /// Line 11's choice among the received votes.
    fn choose(&mut self, msgs: &[&SelectionMsg<V>]) -> V {
        match (&self.params.choice, &mut self.coin) {
            (ChoicePolicy::UniformCoin { domain, .. }, Some(rng)) => {
                domain[rng.gen_range(0..domain.len())].clone()
            }
            _ => {
                let tally = VoteTally::of_votes(msgs.iter().map(|m| &m.vote));
                tally
                    .min_vote()
                    .cloned()
                    // FLV returned `?` on an empty input would be an FLV
                    // bug; fall back to the current vote defensively.
                    .unwrap_or_else(|| self.vote.clone())
            }
        }
    }

    // ---- validation round (lines 16–26) ----

    fn validation_send(&mut self, phase: Phase) -> Outgoing<ConsensusMsg<V>> {
        // Line 18: only validators speak.
        if !self.validators.contains(self.id) {
            return Outgoing::Silent;
        }
        let msg = ValidationMsg {
            select: self.selected.clone(),
            validators: if self.params.constant_selector {
                ProcessSet::new()
            } else {
                self.validators
            },
        };
        Outgoing::Broadcast(ConsensusMsg::Validation(phase, msg))
    }

    fn validation_receive(&mut self, phase: Phase, heard: &HeardOf<ConsensusMsg<V>>) {
        let msgs: Vec<(ProcessId, &ValidationMsg<V>)> = heard
            .iter()
            .filter_map(|(q, m)| m.as_validation().map(|vm| (q, vm)))
            .collect();

        // Line 21: adopt the validator set vouched for by b + 1 messages.
        if self.params.constant_selector {
            self.validators = self
                .params
                .selector
                .select(self.id, phase, &self.params.cfg);
        } else {
            let mut counts: BTreeMap<ProcessSet, usize> = BTreeMap::new();
            for (_, m) in &msgs {
                if !m.validators.is_empty() {
                    *counts.entry(m.validators).or_insert(0) += 1;
                }
            }
            self.validators = counts
                .into_iter()
                .find(|(_, c)| *c > self.params.cfg.b())
                .map(|(s, _)| s)
                .unwrap_or_default();
        }

        // Line 22: a value announced by a majority of validators (counting
        // the at most b Byzantine among them) is valid.
        if !self.validators.is_empty() {
            let quorum_base = self.validators.len() + self.params.cfg.b();
            let tally = VoteTally::of_votes(
                msgs.iter()
                    .filter(|(q, _)| self.validators.contains(*q))
                    .filter_map(|(_, m)| m.select.as_ref()),
            );
            let winner: Option<V> = tally
                .iter()
                .find(|(_, c)| quorum::more_than_half(*c, quorum_base))
                .map(|(v, _)| v.clone());
            if let Some(v) = winner {
                // Lines 23–24.
                self.vote = v.clone();
                self.ts = phase;
                self.last_validated = v;
                if self.params.prune_history {
                    // Footnote-5 GC: proofs older than the validated
                    // timestamp are no longer produced by this process.
                    self.history.prune_before(self.ts);
                }
                return;
            }
        }
        // Line 26: revert the vote to stay consistent with ts_p.
        self.vote = self.last_validated.clone();
    }

    // ---- decision round (lines 27–32) ----

    fn decision_send(&mut self, phase: Phase) -> Outgoing<ConsensusMsg<V>> {
        let msg = DecisionMsg {
            vote: self.vote.clone(),
            ts: if self.params.profile.sends_ts() {
                self.ts
            } else {
                Phase::ZERO
            },
        };
        Outgoing::Broadcast(ConsensusMsg::Decision(phase, msg))
    }

    fn decision_receive(&mut self, phase: Phase, round: Round, heard: &HeardOf<ConsensusMsg<V>>) {
        if self.decision.is_some() {
            return; // decide once; keep participating
        }
        let msgs: Vec<&DecisionMsg<V>> = heard
            .messages()
            .filter_map(ConsensusMsg::as_decision)
            .collect();

        // Line 31: TD identical votes, filtered by FLAG.
        let considered = msgs.iter().filter(|m| match self.schedule.flag() {
            crate::schedule::Flag::Star => true,
            crate::schedule::Flag::Phi => m.ts == phase,
        });
        let tally = VoteTally::of_votes(considered.map(|m| &m.vote));
        let decided: Option<V> = tally.votes_at_least(self.params.td).next().cloned();
        if let Some(value) = decided {
            self.decision = Some(Decision {
                value,
                phase,
                round,
            });
        }
    }
}

impl<V: Value> RoundProcess for GenericConsensus<V> {
    type Msg = ConsensusMsg<V>;
    type Output = Decision<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn requirement(&self, r: Round) -> Predicate {
        if self.params.liveness == LivenessMode::ReliableChannels {
            return Predicate::Rel;
        }
        match self.schedule.locate(r).1 {
            RoundKind::Selection => Predicate::Cons,
            RoundKind::Validation | RoundKind::Decision => Predicate::Good,
        }
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        let (phase, kind) = self.schedule.locate(r);
        match kind {
            RoundKind::Selection => self.selection_send(phase),
            RoundKind::Validation => self.validation_send(phase),
            RoundKind::Decision => self.decision_send(phase),
        }
    }

    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        let (phase, kind) = self.schedule.locate(r);
        match kind {
            RoundKind::Selection => self.selection_receive(phase, heard),
            RoundKind::Validation => self.validation_receive(phase, heard),
            RoundKind::Decision => self.decision_receive(phase, r, heard),
        }
    }

    fn output(&self) -> Option<Decision<V>> {
        self.decision.clone()
    }
}

impl<V: Value> std::fmt::Debug for GenericConsensus<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenericConsensus")
            .field("id", &self.id.to_string())
            .field("vote", &self.vote)
            .field("ts", &self.ts)
            .field("decided", &self.decision.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassId;
    use gencon_types::Config;

    fn pbft_params() -> Params<u64> {
        Params::for_class(ClassId::Three, Config::byzantine(4, 1).unwrap()).unwrap()
    }

    /// Drives n engine instances through one full-delivery round.
    fn run_round(procs: &mut [GenericConsensus<u64>], r: Round) {
        let n = procs.len();
        let outs: Vec<_> = procs.iter_mut().map(|p| p.send(r)).collect();
        for (dest, proc_) in procs.iter_mut().enumerate() {
            let mut ho = HeardOf::empty(n);
            for (src, out) in outs.iter().enumerate() {
                if let Some(m) = out.message_for(ProcessId::new(dest)) {
                    ho.put(ProcessId::new(src), m);
                }
            }
            proc_.receive(r, &ho);
        }
    }

    fn make_system(init: &[u64]) -> Vec<GenericConsensus<u64>> {
        init.iter()
            .enumerate()
            .map(|(i, &v)| GenericConsensus::new(ProcessId::new(i), pbft_params(), v).unwrap())
            .collect()
    }

    #[test]
    fn unanimous_system_decides_in_one_phase() {
        let mut procs = make_system(&[7, 7, 7, 7]);
        for r in 1..=3u64 {
            run_round(&mut procs, Round::new(r));
        }
        for p in &procs {
            let d = p.decision().expect("should decide in phase 1");
            assert_eq!(d.value, 7);
            assert_eq!(d.phase, Phase::new(1));
            assert_eq!(d.round, Round::new(3));
        }
    }

    #[test]
    fn divergent_system_decides_same_value() {
        let mut procs = make_system(&[1, 2, 3, 4]);
        for r in 1..=3u64 {
            run_round(&mut procs, Round::new(r));
        }
        let d0 = procs[0].decision().expect("decides").value;
        assert_eq!(d0, 1, "deterministic min choice selects smallest vote");
        for p in &procs {
            assert_eq!(p.decision().unwrap().value, d0);
        }
    }

    #[test]
    fn initial_state_follows_lines_1_to_4() {
        let p = GenericConsensus::new(ProcessId::new(0), pbft_params(), 9).unwrap();
        assert_eq!(p.vote(), &9);
        assert_eq!(p.ts(), Phase::ZERO);
        assert!(p.history().contains(&9, Phase::ZERO));
        assert_eq!(p.history().len(), 1);
        assert!(p.validators().is_empty());
        assert!(p.selected().is_none());
    }

    #[test]
    fn selection_updates_vote_and_history() {
        let mut procs = make_system(&[5, 5, 5, 6]);
        run_round(&mut procs, Round::new(1));
        // 3-of-4 initial votes are 5 → FLV (class 3) returns 5.
        for p in &procs {
            assert_eq!(p.selected(), Some(&5));
            assert_eq!(p.vote(), &5);
            assert!(p.history().contains(&5, Phase::new(1)));
        }
    }

    #[test]
    fn validation_sets_timestamp() {
        let mut procs = make_system(&[5, 5, 5, 6]);
        run_round(&mut procs, Round::new(1));
        run_round(&mut procs, Round::new(2));
        for p in &procs {
            assert_eq!(p.ts(), Phase::new(1));
            assert_eq!(p.vote(), &5);
        }
    }

    #[test]
    fn no_decision_without_td_current_timestamps() {
        // Isolated decision round: stale timestamps are ignored under φ.
        let mut p = GenericConsensus::new(ProcessId::new(0), pbft_params(), 1).unwrap();
        let mut ho = HeardOf::empty(4);
        for i in 0..4 {
            ho.put(
                ProcessId::new(i),
                ConsensusMsg::Decision(
                    Phase::new(1),
                    DecisionMsg {
                        vote: 1,
                        ts: Phase::ZERO, // never validated
                    },
                ),
            );
        }
        p.receive(Round::new(3), &ho);
        assert!(
            p.decision().is_none(),
            "FLAG = φ requires ts = current phase"
        );
    }

    #[test]
    fn decision_requires_td_matching_votes() {
        let mut p = GenericConsensus::new(ProcessId::new(0), pbft_params(), 1).unwrap();
        let mut ho = HeardOf::empty(4);
        for i in 0..3 {
            ho.put(
                ProcessId::new(i),
                ConsensusMsg::Decision(
                    Phase::new(1),
                    DecisionMsg {
                        vote: 8,
                        ts: Phase::new(1),
                    },
                ),
            );
        }
        p.receive(Round::new(3), &ho);
        let d = p.decision().expect("TD = 3 votes with current ts decide");
        assert_eq!(d.value, 8);
    }

    #[test]
    fn decides_only_once() {
        let mut p = GenericConsensus::new(ProcessId::new(0), pbft_params(), 1).unwrap();
        let mk = |v: u64, phi: u64| {
            let mut ho = HeardOf::empty(4);
            for i in 0..4 {
                ho.put(
                    ProcessId::new(i),
                    ConsensusMsg::Decision(
                        Phase::new(phi),
                        DecisionMsg {
                            vote: v,
                            ts: Phase::new(phi),
                        },
                    ),
                );
            }
            ho
        };
        p.receive(Round::new(3), &mk(8, 1));
        assert_eq!(p.decision().unwrap().value, 8);
        p.receive(Round::new(6), &mk(9, 2));
        assert_eq!(p.decision().unwrap().value, 8, "first decision sticks");
    }

    #[test]
    fn silent_when_not_validator() {
        // With a constant Π selector every process is a validator; force a
        // non-member by clearing validators directly via a fresh process
        // that never ran a selection round *without* the constant-selector
        // optimization.
        let mut params = pbft_params();
        params.constant_selector = false;
        let mut p = GenericConsensus::new(ProcessId::new(0), params, 1).unwrap();
        // No selection messages received → validators = ∅ → silent.
        let empty = HeardOf::empty(4);
        p.receive(Round::new(1), &empty);
        assert!(p.validators().is_empty());
        match p.send(Round::new(2)) {
            Outgoing::Silent => {}
            other => panic!("non-validator must stay silent, got {other:?}"),
        }
    }

    #[test]
    fn requirement_follows_round_kind() {
        let p = GenericConsensus::new(ProcessId::new(0), pbft_params(), 1).unwrap();
        assert_eq!(p.requirement(Round::new(1)), Predicate::Cons);
        assert_eq!(p.requirement(Round::new(2)), Predicate::Good);
        assert_eq!(p.requirement(Round::new(3)), Predicate::Good);
        assert_eq!(p.requirement(Round::new(4)), Predicate::Cons);
    }

    #[test]
    fn reliable_channel_mode_requires_prel_everywhere() {
        let mut params = pbft_params();
        params.liveness = LivenessMode::ReliableChannels;
        let p = GenericConsensus::new(ProcessId::new(0), params, 1).unwrap();
        for r in 1..=6u64 {
            assert_eq!(p.requirement(Round::new(r)), Predicate::Rel);
        }
    }

    #[test]
    fn class1_profile_strips_ts_and_history() {
        let cfg = Config::byzantine(6, 1).unwrap();
        let params = Params::<u64>::for_class(ClassId::One, cfg).unwrap();
        let mut p = GenericConsensus::new(ProcessId::new(0), params, 3).unwrap();
        match p.send(Round::new(1)) {
            Outgoing::Multicast { msg, .. } => {
                let sel = msg.as_selection().unwrap();
                assert_eq!(sel.ts, Phase::ZERO);
                assert!(sel.history.is_empty());
                assert!(sel.selector.is_empty(), "constant selector not sent");
            }
            other => panic!("expected multicast, got {other:?}"),
        }
    }

    #[test]
    fn class1_schedule_has_no_validation_round() {
        let cfg = Config::byzantine(6, 1).unwrap();
        let params = Params::<u64>::for_class(ClassId::One, cfg).unwrap();
        let mut procs: Vec<_> = (0..6)
            .map(|i| GenericConsensus::new(ProcessId::new(i), params.clone(), 4u64).unwrap())
            .collect();
        // 2 rounds per phase: selection (r1) then decision (r2).
        run_round(&mut procs, Round::new(1));
        run_round(&mut procs, Round::new(2));
        for p in &procs {
            assert_eq!(p.decision().unwrap().value, 4);
            assert_eq!(p.decision().unwrap().round, Round::new(2));
        }
    }

    #[test]
    fn skip_first_selection_decides_in_two_rounds_phi() {
        let cfg = Config::byzantine(4, 1).unwrap();
        let mut params = Params::<u64>::for_class(ClassId::Three, cfg).unwrap();
        params.skip_first_selection = true;
        let mut procs: Vec<_> = (0..4)
            .map(|i| GenericConsensus::new(ProcessId::new(i), params.clone(), 5u64).unwrap())
            .collect();
        run_round(&mut procs, Round::new(1)); // validation of phase 1
        run_round(&mut procs, Round::new(2)); // decision of phase 1
        for p in &procs {
            assert_eq!(p.decision().unwrap().value, 5);
            assert_eq!(p.decision().unwrap().round, Round::new(2));
        }
    }

    #[test]
    fn line15_elects_validators_from_selector_quorum() {
        // Non-constant selector path: validators come from > (n+b)/2
        // matching ⟨−,−,−,S⟩ messages.
        let mut params = pbft_params();
        params.constant_selector = false;
        let mut p = GenericConsensus::new(ProcessId::new(0), params, 1).unwrap();
        let everyone = ProcessSet::range(0, 4);
        let mut ho = HeardOf::empty(4);
        // 3 messages (> (4+1)/2 = 2.5) carrying S = Π.
        for i in 0..3 {
            ho.put(
                ProcessId::new(i),
                ConsensusMsg::Selection(
                    Phase::new(1),
                    SelectionMsg {
                        vote: 1,
                        ts: Phase::ZERO,
                        history: History::initial(1),
                        selector: everyone,
                    },
                ),
            );
        }
        p.receive(Round::new(1), &ho);
        assert_eq!(p.validators(), everyone);
    }

    #[test]
    fn line15_no_quorum_leaves_validators_empty() {
        let mut params = pbft_params();
        params.constant_selector = false;
        let mut p = GenericConsensus::new(ProcessId::new(0), params, 1).unwrap();
        let mut ho = HeardOf::empty(4);
        // Split selector proposals: 2 × Π vs 1 × {p0,p1} — no set reaches 3.
        for (i, set) in [
            (0usize, ProcessSet::range(0, 4)),
            (1, ProcessSet::range(0, 4)),
            (2, ProcessSet::range(0, 2)),
        ] {
            ho.put(
                ProcessId::new(i),
                ConsensusMsg::Selection(
                    Phase::new(1),
                    SelectionMsg {
                        vote: 1,
                        ts: Phase::ZERO,
                        history: History::initial(1),
                        selector: set,
                    },
                ),
            );
        }
        p.receive(Round::new(1), &ho);
        assert!(p.validators().is_empty(), "no set got > (n+b)/2 support");
    }

    #[test]
    fn line21_adopts_validator_set_from_b_plus_one_vouchers() {
        let mut params = pbft_params();
        params.constant_selector = false;
        let mut p = GenericConsensus::new(ProcessId::new(0), params, 1).unwrap();
        let vset = ProcessSet::range(0, 4);
        let mut ho = HeardOf::empty(4);
        // b + 1 = 2 validation messages vouching for Π, selecting value 9.
        for i in 0..3 {
            ho.put(
                ProcessId::new(i),
                ConsensusMsg::Validation(
                    Phase::new(1),
                    ValidationMsg {
                        select: Some(9),
                        validators: vset,
                    },
                ),
            );
        }
        p.receive(Round::new(2), &ho);
        assert_eq!(p.validators(), vset);
        // 3 of (4+1) validators announced 9 → 2·3 > 4+1 → validated.
        assert_eq!(p.vote(), &9);
        assert_eq!(p.ts(), Phase::new(1));
    }

    #[test]
    fn line26_reverts_vote_when_validation_fails() {
        let mut procs = make_system(&[5, 5, 5, 6]);
        run_round(&mut procs, Round::new(1)); // all select 5
        assert_eq!(procs[3].vote(), &5, "p3 adopted the selection");
        // Validation round with NO messages delivered: line 22 fails,
        // line 26 reverts to the value matching ts (= init at ts 0).
        let empty = HeardOf::empty(4);
        procs[3].receive(Round::new(2), &empty);
        assert_eq!(procs[3].ts(), Phase::ZERO);
        assert_eq!(
            procs[3].vote(),
            &6,
            "vote reverted to the ts-consistent value"
        );
    }

    #[test]
    fn history_pruning_bounds_the_log() {
        let mut params = pbft_params();
        params.prune_history = true;
        let mut procs: Vec<_> = (0..4)
            .map(|i| GenericConsensus::new(ProcessId::new(i), params.clone(), 5u64).unwrap())
            .collect();
        // Run several full phases; with pruning, only entries at or above
        // the validated timestamp survive.
        for r in 1..=9u64 {
            run_round(&mut procs, Round::new(r));
        }
        for p in &procs {
            assert!(
                p.history().len() <= 2,
                "pruned history stays bounded, got {:?}",
                p.history()
            );
            assert!(p.history().contains(&5, p.ts()));
        }
    }

    #[test]
    fn unpruned_history_grows_per_phase() {
        let mut procs = make_system(&[5, 5, 5, 5]);
        for r in 1..=9u64 {
            run_round(&mut procs, Round::new(r));
        }
        // initial entry + one per selection round (3 phases)
        assert_eq!(procs[0].history().len(), 4);
    }

    #[test]
    fn coin_choice_flips_over_domain() {
        let cfg = Config::benign(3, 1).unwrap();
        let mut params = Params::<u64>::for_class(ClassId::Two, cfg).unwrap();
        params.choice = ChoicePolicy::UniformCoin {
            domain: vec![0, 1],
            seed: 7,
        };
        let mut p = GenericConsensus::new(ProcessId::new(0), params, 0).unwrap();
        // Feed a split selection round so FLV answers `?`.
        let mut ho = HeardOf::empty(3);
        for (i, v) in [(0usize, 0u64), (1, 1)] {
            ho.put(
                ProcessId::new(i),
                ConsensusMsg::Selection(
                    Phase::new(1),
                    SelectionMsg {
                        vote: v,
                        ts: Phase::ZERO,
                        history: History::initial(v),
                        selector: ProcessSet::new(),
                    },
                ),
            );
        }
        p.receive(Round::new(1), &ho);
        let got = p.selected().copied().expect("coin always selects");
        assert!(got == 0 || got == 1);
    }

    #[test]
    fn debug_format_mentions_vote() {
        let p = GenericConsensus::new(ProcessId::new(1), pbft_params(), 3).unwrap();
        let s = format!("{p:?}");
        assert!(s.contains("vote"));
        assert!(s.contains("p1"));
    }
}
