//! The generic consensus algorithm of Rütti, Milosevic and Schiper
//! (*Generic Construction of Consensus Algorithms for Benign and Byzantine
//! Faults*, DSN 2010).
//!
//! The paper expresses consensus as a sequence of phases — selection,
//! validation, decision rounds — parameterized by four knobs:
//!
//! | Parameter | Here |
//! |-----------|------|
//! | `FLV` (find the locked value) | [`Flv`] + [`Class1Flv`]/[`Class2Flv`]/[`Class3Flv`] and the specializations [`FabFlv`], [`PaxosFlv`], [`PbftFlv`], [`BenOrFlv`] |
//! | `Selector(p, φ)` | [`Selector`] + [`FullSelector`], [`RotatingCoordinator`], [`StableLeader`], [`RotatingSubset`] |
//! | `TD` (decision threshold) | [`Params::td`] |
//! | `FLAG` (`*` or `φ`) | [`Flag`] |
//!
//! Instantiations fall into the three classes of Table 1 ([`ClassId`]); the
//! engine [`GenericConsensus`] executes Algorithm 1 for any valid bundle of
//! parameters ([`Params`]) over the closed-round model of `gencon-rounds`.
//! Randomized algorithms (§6) are obtained with
//! [`ChoicePolicy::UniformCoin`] + [`LivenessMode::ReliableChannels`].
//!
//! # Quickstart
//!
//! ```
//! use gencon_core::{ClassId, GenericConsensus, Params};
//! use gencon_types::{Config, ProcessId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 4-process Byzantine system (n > 3b), class 3 — the PBFT regime.
//! let cfg = Config::byzantine(4, 1)?;
//! let params = Params::<u64>::for_class(ClassId::Three, cfg)?;
//! let process = GenericConsensus::new(ProcessId::new(0), params, 7)?;
//! assert_eq!(process.vote(), &7);
//! # Ok(())
//! # }
//! ```
//!
//! Drive processes with the lock-step simulator (`gencon-sim`), a real
//! threaded runtime (`gencon-net`), or any executor of the
//! [`gencon_rounds::RoundProcess`] interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classes;
mod engine;
pub mod flv;
mod messages;
mod params;
mod schedule;
mod selector;
mod state;
mod vote_count;

pub use classes::ClassId;
pub use engine::{Decision, GenericConsensus};
pub use flv::{
    BenOrFlv, Class1Flv, Class2Flv, Class3Flv, FabFlv, Flv, FlvContext, FlvOutcome, PaxosFlv,
    PbftFlv,
};
pub use messages::{ConsensusMsg, DecisionMsg, SelectionMsg, ValidationMsg};
pub use params::{ChoicePolicy, LivenessMode, Params, ParamsError};
pub use schedule::{Flag, Schedule};
pub use selector::{FullSelector, RotatingCoordinator, RotatingSubset, Selector, StableLeader};
pub use state::{History, StateProfile};
pub use vote_count::VoteTally;
