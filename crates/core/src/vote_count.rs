//! Deterministic vote tallying shared by the FLV implementations and the
//! engine's decision rule.

use std::collections::BTreeMap;

use gencon_types::quorum;

/// A tally of votes by value.
///
/// Backed by a `BTreeMap` so iteration order is the value order — every
/// consumer of a tally is deterministic, which FLV implementations require.
#[derive(Clone, Debug)]
pub struct VoteTally<'a, V: Ord> {
    counts: BTreeMap<&'a V, usize>,
}

impl<'a, V: Ord> VoteTally<'a, V> {
    /// Tallies an iterator of votes.
    #[must_use]
    pub fn of_votes(votes: impl Iterator<Item = &'a V>) -> Self {
        let mut counts = BTreeMap::new();
        for v in votes {
            *counts.entry(v).or_insert(0) += 1;
        }
        VoteTally { counts }
    }

    /// Count of a specific vote.
    #[must_use]
    pub fn count(&self, v: &V) -> usize {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Number of distinct votes.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Votes whose count strictly exceeds `bound`, in value order.
    pub fn votes_above(&self, bound: usize) -> impl Iterator<Item = &'a V> + '_ {
        self.counts
            .iter()
            .filter(move |(_, &c)| quorum::more_than(c, bound))
            .map(|(&v, _)| v)
    }

    /// Votes whose count reaches at least `threshold`, in value order.
    pub fn votes_at_least(&self, threshold: usize) -> impl Iterator<Item = &'a V> + '_ {
        self.counts
            .iter()
            .filter(move |(_, &c)| c >= threshold)
            .map(|(&v, _)| v)
    }

    /// The vote held by a strict majority of `total`, if any
    /// (Algorithm 4 line 8: "a majority of messages").
    #[must_use]
    pub fn strict_majority_of(&self, total: usize) -> Option<&'a V> {
        self.counts
            .iter()
            .find(|(_, &c)| quorum::more_than_half(c, total))
            .map(|(&v, _)| v)
    }

    /// The smallest vote (the deterministic choice of line 11).
    #[must_use]
    pub fn min_vote(&self) -> Option<&'a V> {
        self.counts.keys().next().copied()
    }

    /// The vote with the highest count; ties broken toward the smaller
    /// value. (The OneThirdRule comparison uses "smallest most often
    /// received value".)
    #[must_use]
    pub fn most_frequent(&self) -> Option<&'a V> {
        self.counts
            .iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            .map(|(&v, _)| v)
    }

    /// Iterates `(vote, count)` pairs in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a V, usize)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts() {
        let votes = [3u64, 1, 3, 2, 3];
        let t = VoteTally::of_votes(votes.iter());
        assert_eq!(t.count(&3), 3);
        assert_eq!(t.count(&1), 1);
        assert_eq!(t.count(&9), 0);
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn votes_above_is_strict_and_ordered() {
        let votes = [2u64, 2, 1, 1, 3];
        let t = VoteTally::of_votes(votes.iter());
        let above1: Vec<_> = t.votes_above(1).collect();
        assert_eq!(above1, [&1, &2], "value order");
        assert_eq!(t.votes_above(2).count(), 0, "strict bound");
    }

    #[test]
    fn votes_at_least_is_inclusive() {
        let votes = [2u64, 2, 1];
        let t = VoteTally::of_votes(votes.iter());
        assert_eq!(t.votes_at_least(2).collect::<Vec<_>>(), [&2]);
        assert_eq!(t.votes_at_least(1).count(), 2);
    }

    #[test]
    fn strict_majority_detection() {
        let votes = [7u64, 7, 7, 8, 9];
        let t = VoteTally::of_votes(votes.iter());
        assert_eq!(t.strict_majority_of(5), Some(&7));
        assert_eq!(t.strict_majority_of(6), None, "3 of 6 is not a majority");
    }

    #[test]
    fn min_and_most_frequent() {
        let votes = [5u64, 4, 5, 4, 6];
        let t = VoteTally::of_votes(votes.iter());
        assert_eq!(t.min_vote(), Some(&4));
        assert_eq!(t.most_frequent(), Some(&4), "tie 4 vs 5 broken to smaller");
        let empty: VoteTally<u64> = VoteTally::of_votes([].iter());
        assert_eq!(empty.min_vote(), None);
        assert_eq!(empty.most_frequent(), None);
    }

    #[test]
    fn iter_in_value_order() {
        let votes = [9u64, 1, 9];
        let t = VoteTally::of_votes(votes.iter());
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, [(&1, 1), (&9, 2)]);
    }
}
