//! Process state of Algorithm 1: `vote_p`, `ts_p`, `history_p`.

use std::fmt;

use gencon_types::{Phase, Value};

/// The `history_p` variable: the list of pairs `(v, φ)` recording that
/// `vote_p` was set to `v` in the selection round of phase `φ` (line 14).
///
/// In the Byzantine context the history proves that a value *may have been
/// validated* in some phase; with benign faults it can be ignored. The paper
/// notes (footnote 5) that its size is unbounded; [`History::prune_before`]
/// offers the optional garbage-collection measured by the ablation bench
/// (disabled by default).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct History<V> {
    entries: Vec<(V, Phase)>,
}

impl<V: Value> History<V> {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        History {
            entries: Vec::new(),
        }
    }

    /// The initial history `{(init_p, 0)}` of line 4.
    #[must_use]
    pub fn initial(init: V) -> Self {
        History {
            entries: vec![(init, Phase::ZERO)],
        }
    }

    /// Records `(v, φ)` (line 14). Duplicate pairs are kept once (the paper
    /// treats `history` as a set).
    pub fn record(&mut self, v: V, phase: Phase) {
        if !self.contains(&v, phase) {
            self.entries.push((v, phase));
        }
    }

    /// Whether the pair `(v, φ)` is in the history (used by the class-3 FLV,
    /// Algorithm 4 line 2).
    #[must_use]
    pub fn contains(&self, v: &V, phase: Phase) -> bool {
        self.entries.iter().any(|(ev, ep)| ev == v && *ep == phase)
    }

    /// The value recorded for phase `φ`, if any — the lookup of line 26
    /// (`vote_p ← v such that (v, ts_p) ∈ history_p`).
    #[must_use]
    pub fn value_at(&self, phase: Phase) -> Option<&V> {
        // The engine records at most one pair per phase for honest
        // processes; take the latest on the off-chance of duplicates.
        self.entries
            .iter()
            .rev()
            .find(|(_, ep)| *ep == phase)
            .map(|(v, _)| v)
    }

    /// Number of recorded pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(value, phase)` pairs in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &(V, Phase)> {
        self.entries.iter()
    }

    /// Optional GC (ablation A1): drops entries strictly older than `keep`.
    ///
    /// Sound only when the instantiation never needs proofs older than the
    /// last validated timestamp; see DESIGN.md. Disabled by default.
    pub fn prune_before(&mut self, keep: Phase) {
        self.entries.retain(|(_, p)| *p >= keep);
    }
}

impl<V: Value> FromIterator<(V, Phase)> for History<V> {
    fn from_iter<I: IntoIterator<Item = (V, Phase)>>(iter: I) -> Self {
        let mut h = History::new();
        for (v, p) in iter {
            h.record(v, p);
        }
        h
    }
}

impl<V: fmt::Debug> fmt::Debug for History<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.entries.iter().map(|(v, p)| (v, p.number())))
            .finish()
    }
}

/// Which state variables an instantiation maintains *and transmits* —
/// Table 1's "process state" column.
///
/// The engine always tracks enough internally to run (line 26's revert needs
/// the last validated value), but messages are stripped down to the profile,
/// so wire sizes reflect the class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StateProfile {
    /// Class 1: only `vote_p` (FLAG = `*`; `ts` and `history` unnecessary).
    VoteOnly,
    /// Class 2: `vote_p` and `ts_p`.
    VoteTs,
    /// Class 3: `vote_p`, `ts_p` and `history_p`.
    Full,
}

impl StateProfile {
    /// Whether timestamps are transmitted.
    #[must_use]
    pub fn sends_ts(self) -> bool {
        !matches!(self, StateProfile::VoteOnly)
    }

    /// Whether the history log is transmitted.
    #[must_use]
    pub fn sends_history(self) -> bool {
        matches!(self, StateProfile::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_history_holds_init_pair() {
        let h = History::initial(42u64);
        assert_eq!(h.len(), 1);
        assert!(h.contains(&42, Phase::ZERO));
        assert_eq!(h.value_at(Phase::ZERO), Some(&42));
    }

    #[test]
    fn record_and_lookup() {
        let mut h = History::initial(1u64);
        h.record(2, Phase::new(1));
        h.record(3, Phase::new(2));
        assert_eq!(h.value_at(Phase::new(1)), Some(&2));
        assert_eq!(h.value_at(Phase::new(2)), Some(&3));
        assert_eq!(h.value_at(Phase::new(9)), None);
        assert!(h.contains(&2, Phase::new(1)));
        assert!(!h.contains(&2, Phase::new(2)));
    }

    #[test]
    fn set_semantics_deduplicate() {
        let mut h = History::new();
        h.record(5u64, Phase::new(1));
        h.record(5, Phase::new(1));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn latest_entry_wins_lookup() {
        // Defensive: if duplicates for a phase ever existed, the latest wins.
        let mut h = History::new();
        h.record(1u64, Phase::new(3));
        h.record(2, Phase::new(3)); // different value, same phase
        assert_eq!(h.value_at(Phase::new(3)), Some(&2));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn prune_drops_old_entries() {
        let mut h: History<u64> = [(1, Phase::ZERO), (2, Phase::new(3)), (3, Phase::new(5))]
            .into_iter()
            .collect();
        h.prune_before(Phase::new(3));
        assert_eq!(h.len(), 2);
        assert!(!h.contains(&1, Phase::ZERO));
        assert!(h.contains(&2, Phase::new(3)));
    }

    #[test]
    fn profiles_declare_transmission() {
        assert!(!StateProfile::VoteOnly.sends_ts());
        assert!(!StateProfile::VoteOnly.sends_history());
        assert!(StateProfile::VoteTs.sends_ts());
        assert!(!StateProfile::VoteTs.sends_history());
        assert!(StateProfile::Full.sends_ts());
        assert!(StateProfile::Full.sends_history());
    }

    #[test]
    fn debug_format_is_compact() {
        let h = History::initial(7u64);
        assert_eq!(format!("{h:?}"), "{(7, 0)}");
    }
}
