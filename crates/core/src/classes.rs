//! The three classes of consensus algorithms (Table 1).

use std::fmt;
use std::sync::Arc;

use gencon_types::{quorum, Config, Value};

use crate::flv::{Class1Flv, Class2Flv, Class3Flv, Flv};
use crate::schedule::Flag;
use crate::state::StateProfile;

/// A row of Table 1: one of the paper's three classes.
///
/// Algorithms in the same class share `FLAG`, the bound on `TD`, the
/// resilience bound on `n` (from `n ≥ TD + b + f`), the transmitted state
/// and the number of rounds per phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ClassId {
    /// Class 1: `FLAG = *`, `TD > (n+3b+f)/2`, `n > 5b + 3f`, state `vote`,
    /// 2 rounds/phase. Examples: OneThirdRule (b = 0), FaB Paxos (f = 0).
    One,
    /// Class 2: `FLAG = φ`, `TD > 3b + f`, `n > 4b + 2f`, state
    /// `(vote, ts)`, 3 rounds/phase. Examples: Paxos, CT (b = 0) and the
    /// paper's new MQB algorithm (f = 0).
    Two,
    /// Class 3: `FLAG = φ`, `TD > 2b + f`, `n > 3b + 2f`, state
    /// `(vote, ts, history)`, 3 rounds/phase. Examples: Paxos/CT (b = 0,
    /// classes 2 and 3 coincide) and PBFT (f = 0).
    Three,
}

impl ClassId {
    /// All classes in Table 1 order.
    pub const ALL: [ClassId; 3] = [ClassId::One, ClassId::Two, ClassId::Three];

    /// The `FLAG` column.
    #[must_use]
    pub fn flag(self) -> Flag {
        match self {
            ClassId::One => Flag::Star,
            ClassId::Two | ClassId::Three => Flag::Phi,
        }
    }

    /// The minimal `TD` satisfying the class's strict bound for `cfg`.
    #[must_use]
    pub fn min_td(self, cfg: &Config) -> usize {
        match self {
            ClassId::One => quorum::class1_min_td(cfg.n(), cfg.f(), cfg.b()),
            ClassId::Two => quorum::class2_min_td(cfg.f(), cfg.b()),
            ClassId::Three => quorum::class3_min_td(cfg.f(), cfg.b()),
        }
    }

    /// The minimal `n` tolerating `f` crash and `b` Byzantine faults
    /// (the `n` column of Table 1).
    #[must_use]
    pub fn min_n(self, f: usize, b: usize) -> usize {
        match self {
            ClassId::One => quorum::class1_min_n(f, b),
            ClassId::Two => quorum::class2_min_n(f, b),
            ClassId::Three => quorum::class3_min_n(f, b),
        }
    }

    /// The "process state" column.
    #[must_use]
    pub fn state_profile(self) -> StateProfile {
        match self {
            ClassId::One => StateProfile::VoteOnly,
            ClassId::Two => StateProfile::VoteTs,
            ClassId::Three => StateProfile::Full,
        }
    }

    /// The "rounds per phase" column.
    #[must_use]
    pub fn rounds_per_phase(self) -> usize {
        self.flag().rounds_per_phase()
    }

    /// The generic FLV instantiation of this class (Algorithms 2, 3, 4).
    #[must_use]
    pub fn flv<V: Value>(self) -> Arc<dyn Flv<V>> {
        match self {
            ClassId::One => Arc::new(Class1Flv::new()),
            ClassId::Two => Arc::new(Class2Flv::new()),
            ClassId::Three => Arc::new(Class3Flv::new()),
        }
    }

    /// The "Examples" column of Table 1.
    #[must_use]
    pub fn examples(self) -> &'static [&'static str] {
        match self {
            ClassId::One => &["OneThirdRule (b=0)", "FaB Paxos (f=0)"],
            ClassId::Two => &["Paxos (b=0)", "CT (b=0)", "MQB (f=0, new)"],
            ClassId::Three => &["(Paxos, CT) (b=0)", "PBFT (f=0)"],
        }
    }

    /// The `TD` bound as a human-readable formula (for the Table 1 bench).
    #[must_use]
    pub fn td_bound(self) -> &'static str {
        match self {
            ClassId::One => "TD > (n+3b+f)/2",
            ClassId::Two => "TD > 3b+f",
            ClassId::Three => "TD > 2b+f",
        }
    }

    /// The `n` bound as a human-readable formula (for the Table 1 bench).
    #[must_use]
    pub fn n_bound(self) -> &'static str {
        match self {
            ClassId::One => "n > 5b+3f",
            ClassId::Two => "n > 4b+2f",
            ClassId::Three => "n > 3b+2f",
        }
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = match self {
            ClassId::One => 1,
            ClassId::Two => 2,
            ClassId::Three => 3,
        };
        write!(f, "class {i}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_class1() {
        let c = ClassId::One;
        assert_eq!(c.flag(), Flag::Star);
        assert_eq!(c.rounds_per_phase(), 2);
        assert_eq!(c.state_profile(), StateProfile::VoteOnly);
        assert_eq!(c.min_n(0, 1), 6, "FaB: n > 5b");
        assert_eq!(c.min_n(1, 0), 4, "OneThirdRule: n > 3f");
        let cfg = Config::byzantine(6, 1).unwrap();
        assert_eq!(c.min_td(&cfg), 5);
    }

    #[test]
    fn table1_row_class2() {
        let c = ClassId::Two;
        assert_eq!(c.flag(), Flag::Phi);
        assert_eq!(c.rounds_per_phase(), 3);
        assert_eq!(c.state_profile(), StateProfile::VoteTs);
        assert_eq!(c.min_n(0, 1), 5, "MQB: n > 4b");
        assert_eq!(c.min_n(1, 0), 3, "Paxos/CT: n > 2f");
        let cfg = Config::byzantine(5, 1).unwrap();
        assert_eq!(c.min_td(&cfg), 4, "TD > 3b+f");
    }

    #[test]
    fn table1_row_class3() {
        let c = ClassId::Three;
        assert_eq!(c.flag(), Flag::Phi);
        assert_eq!(c.state_profile(), StateProfile::Full);
        assert_eq!(c.min_n(0, 1), 4, "PBFT: n > 3b");
        let cfg = Config::byzantine(4, 1).unwrap();
        assert_eq!(c.min_td(&cfg), 3, "TD > 2b+f");
    }

    #[test]
    fn min_td_is_reachable_at_min_n() {
        // TD ≤ n − b − f must hold at the minimal n of each class.
        for class in ClassId::ALL {
            for f in 0..3 {
                for b in 0..3 {
                    if f + b == 0 {
                        continue;
                    }
                    let n = class.min_n(f, b);
                    let cfg = Config::new(n, f, b).unwrap();
                    let td = class.min_td(&cfg);
                    assert!(
                        cfg.validate_threshold(td).is_ok(),
                        "{class} f={f} b={b}: TD {td} unreachable at n {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn flv_instances_match_class() {
        assert_eq!(ClassId::One.flv::<u64>().name(), "class1");
        assert_eq!(ClassId::Two.flv::<u64>().name(), "class2");
        assert_eq!(ClassId::Three.flv::<u64>().name(), "class3");
    }

    #[test]
    fn display_and_docs() {
        assert_eq!(ClassId::One.to_string(), "class 1");
        assert!(ClassId::Two.examples().iter().any(|e| e.contains("MQB")));
        assert!(ClassId::Three.n_bound().contains("3b"));
        assert!(ClassId::One.td_bound().contains("n+3b+f"));
    }
}
