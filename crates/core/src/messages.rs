//! Message types of the generic algorithm (Algorithm 1).

use gencon_types::{Phase, ProcessSet, Value};

use crate::state::History;

/// Message of the selection round (line 7):
/// `⟨vote_p, ts_p, history_p, Selector(p, φ)⟩`.
///
/// Depending on the [`StateProfile`](crate::state::StateProfile) of the
/// instantiation, `ts` and `history` may be stripped (class 1 sends only the
/// vote; class 2 sends vote and timestamp; class 3 sends everything — see
/// Table 1's "process state" column).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct SelectionMsg<V> {
    /// The sender's current vote.
    pub vote: V,
    /// The phase in which the vote was last validated (`Phase::ZERO` if
    /// never, or if the profile strips timestamps).
    pub ts: Phase,
    /// Proof log of selections (empty unless the profile is `Full`).
    pub history: History<V>,
    /// The sender's proposal for the validator set, `Selector(p, φ)`.
    /// Empty when the constant-selector optimization (§3.1) applies.
    pub selector: ProcessSet,
}

/// Message of the validation round (line 19): `⟨select_p, validators_p⟩`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct ValidationMsg<V> {
    /// The value the validator selected (`None` when FLV returned *null*).
    pub select: Option<V>,
    /// The validator set the sender believes in.
    pub validators: ProcessSet,
}

/// Message of the decision round (line 29): `⟨vote_p, ts_p⟩`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct DecisionMsg<V> {
    /// The sender's current vote.
    pub vote: V,
    /// The phase in which it was last validated (ignored when `FLAG = *`).
    pub ts: Phase,
}

/// Any message of the generic algorithm.
///
/// Every message is tagged with the phase it belongs to; the round kind is
/// implied by the variant. Honest processes in the same round always agree
/// on the phase (lock-step rounds), so the tag is used only for sanity
/// checks and by adversaries.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum ConsensusMsg<V> {
    /// Selection-round payload.
    Selection(Phase, SelectionMsg<V>),
    /// Validation-round payload.
    Validation(Phase, ValidationMsg<V>),
    /// Decision-round payload.
    Decision(Phase, DecisionMsg<V>),
}

impl<V: Value> ConsensusMsg<V> {
    /// The phase this message belongs to.
    #[must_use]
    pub fn phase(&self) -> Phase {
        match self {
            ConsensusMsg::Selection(p, _)
            | ConsensusMsg::Validation(p, _)
            | ConsensusMsg::Decision(p, _) => *p,
        }
    }

    /// The selection payload, if this is a selection message.
    #[must_use]
    pub fn as_selection(&self) -> Option<&SelectionMsg<V>> {
        match self {
            ConsensusMsg::Selection(_, m) => Some(m),
            _ => None,
        }
    }

    /// The validation payload, if this is a validation message.
    #[must_use]
    pub fn as_validation(&self) -> Option<&ValidationMsg<V>> {
        match self {
            ConsensusMsg::Validation(_, m) => Some(m),
            _ => None,
        }
    }

    /// The decision payload, if this is a decision message.
    #[must_use]
    pub fn as_decision(&self) -> Option<&DecisionMsg<V>> {
        match self {
            ConsensusMsg::Decision(_, m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        let sel = ConsensusMsg::Selection(
            Phase::new(2),
            SelectionMsg {
                vote: 7u64,
                ts: Phase::ZERO,
                history: History::new(),
                selector: ProcessSet::new(),
            },
        );
        assert_eq!(sel.phase(), Phase::new(2));
        assert!(sel.as_selection().is_some());
        assert!(sel.as_validation().is_none());
        assert!(sel.as_decision().is_none());

        let val = ConsensusMsg::<u64>::Validation(
            Phase::new(3),
            ValidationMsg {
                select: Some(1),
                validators: ProcessSet::range(0, 2),
            },
        );
        assert!(val.as_validation().is_some());
        assert_eq!(val.phase(), Phase::new(3));

        let dec = ConsensusMsg::<u64>::Decision(
            Phase::new(4),
            DecisionMsg {
                vote: 1,
                ts: Phase::new(4),
            },
        );
        assert!(dec.as_decision().is_some());
        assert_eq!(dec.as_decision().unwrap().vote, 1);
    }
}
