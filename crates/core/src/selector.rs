//! The `Selector(p, φ)` parameter (§3.2, §4.2).
//!
//! `Selector` returns the set of processes `p` proposes as *validators* for
//! phase `φ`. §3.2 requires:
//!
//! * **Selector-validity** — a non-empty output has more than `b` members;
//! * **Selector-liveness** — in some good phase all correct processes agree
//!   on the set (SL1) and it contains enough correct processes (SL2/SL3);
//! * class 3 additionally needs **Selector-strongValidity** — non-empty
//!   outputs exceed `3b + 2f` members (§4.1.3).
//!
//! §4.2 lists the standard instantiations, all provided here:
//! the whole set Π ([`FullSelector`], used by all Byzantine algorithms), a
//! rotating `b + 1`-subset ([`RotatingSubset`]), and — benign model only —
//! the rotating coordinator of CT ([`RotatingCoordinator`]) and the stable
//! leader of Paxos ([`StableLeader`]).

use std::fmt::Debug;

use gencon_types::{Config, Phase, ProcessId, ProcessSet};

/// The validator-election parameter of the generic algorithm.
///
/// Implementations must be deterministic in `(p, φ)`; SL1 (all correct
/// processes proposing the same set in a good phase) is achieved by not
/// depending on `p` at all in every instantiation shipped here.
pub trait Selector: Send + Sync + Debug {
    /// The set `Selector(p, φ)`.
    fn select(&self, p: ProcessId, phase: Phase, cfg: &Config) -> ProcessSet;

    /// Whether the same set is returned for every `p` and every `φ`.
    ///
    /// When `true`, the §3.1 optimization applies: `validators_p` can be set
    /// directly (lines 15/21 skipped) and the selector set need not be sent.
    fn is_constant(&self) -> bool {
        false
    }

    /// Whether every non-empty output is guaranteed larger than `b`
    /// (Selector-validity) for this configuration.
    fn guarantees_validity(&self, cfg: &Config) -> bool;

    /// Whether every non-empty output is guaranteed larger than `3b + 2f`
    /// (Selector-strongValidity, required for class-3 liveness).
    fn guarantees_strong_validity(&self, cfg: &Config) -> bool;

    /// A short name for tables and traces.
    fn name(&self) -> &'static str;
}

/// `Selector(p, φ) = Π` — the trivial instantiation used by all Byzantine
/// algorithms in the literature (§4.2).
#[derive(Clone, Copy, Default, Debug)]
pub struct FullSelector;

impl FullSelector {
    /// Creates the Π selector.
    #[must_use]
    pub fn new() -> Self {
        FullSelector
    }
}

impl Selector for FullSelector {
    fn select(&self, _p: ProcessId, _phase: Phase, cfg: &Config) -> ProcessSet {
        cfg.all_processes()
    }

    fn is_constant(&self) -> bool {
        true
    }

    fn guarantees_validity(&self, cfg: &Config) -> bool {
        cfg.n() > cfg.b()
    }

    fn guarantees_strong_validity(&self, cfg: &Config) -> bool {
        cfg.n() > 3 * cfg.b() + 2 * cfg.f()
    }

    fn name(&self) -> &'static str {
        "full"
    }
}

/// The rotating-coordinator selector of CT \[5]: `{p_((φ−1) mod n)}`.
///
/// Benign model only: a singleton violates Selector-validity as soon as
/// `b ≥ 1`.
#[derive(Clone, Copy, Default, Debug)]
pub struct RotatingCoordinator;

impl RotatingCoordinator {
    /// Creates the rotating-coordinator selector.
    #[must_use]
    pub fn new() -> Self {
        RotatingCoordinator
    }

    /// The coordinator of phase `φ`.
    #[must_use]
    pub fn coordinator(phase: Phase, n: usize) -> ProcessId {
        ProcessId::new(((phase.number().max(1) - 1) as usize) % n)
    }
}

impl Selector for RotatingCoordinator {
    fn select(&self, _p: ProcessId, phase: Phase, cfg: &Config) -> ProcessSet {
        ProcessSet::singleton(Self::coordinator(phase, cfg.n()))
    }

    fn guarantees_validity(&self, cfg: &Config) -> bool {
        cfg.b() == 0
    }

    fn guarantees_strong_validity(&self, _cfg: &Config) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "rotating-coordinator"
    }
}

/// The stable-leader selector of Paxos \[11]: a fixed `{leader}`.
///
/// Models a leader-election oracle that has stabilized. For executions where
/// the leader may crash, compose with [`RotatingCoordinator`] instead (the
/// oracle abstraction of the original papers is itself eventual).
#[derive(Clone, Copy, Debug)]
pub struct StableLeader {
    leader: ProcessId,
}

impl StableLeader {
    /// Creates a selector pinned to `leader`.
    #[must_use]
    pub fn new(leader: ProcessId) -> Self {
        StableLeader { leader }
    }

    /// The pinned leader.
    #[must_use]
    pub fn leader(&self) -> ProcessId {
        self.leader
    }
}

impl Selector for StableLeader {
    fn select(&self, _p: ProcessId, _phase: Phase, _cfg: &Config) -> ProcessSet {
        ProcessSet::singleton(self.leader)
    }

    fn is_constant(&self) -> bool {
        true
    }

    fn guarantees_validity(&self, cfg: &Config) -> bool {
        cfg.b() == 0
    }

    fn guarantees_strong_validity(&self, _cfg: &Config) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "stable-leader"
    }
}

/// The rotating subset selector of §4.2 for the Byzantine model: the same
/// `size` consecutive processes (mod n) on every process, a different window
/// each phase.
///
/// With `size = b + 1` this is the alternative Byzantine instantiation the
/// paper mentions; class 3 requires `size > 3b + 2f`.
#[derive(Clone, Copy, Debug)]
pub struct RotatingSubset {
    size: usize,
}

impl RotatingSubset {
    /// Creates a rotating window of `size` validators.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "validator window must be non-empty");
        RotatingSubset { size }
    }

    /// Window size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Selector for RotatingSubset {
    fn select(&self, _p: ProcessId, phase: Phase, cfg: &Config) -> ProcessSet {
        let n = cfg.n();
        let size = self.size.min(n);
        let start = ((phase.number().max(1) - 1) as usize) % n;
        (0..size).map(|k| ProcessId::new((start + k) % n)).collect()
    }

    fn guarantees_validity(&self, cfg: &Config) -> bool {
        self.size.min(cfg.n()) > cfg.b()
    }

    fn guarantees_strong_validity(&self, cfg: &Config) -> bool {
        self.size.min(cfg.n()) > 3 * cfg.b() + 2 * cfg.f()
    }

    fn name(&self) -> &'static str {
        "rotating-subset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, f: usize, b: usize) -> Config {
        Config::new(n, f, b).unwrap()
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn full_selector_returns_pi() {
        let c = cfg(4, 0, 1);
        let s = FullSelector::new();
        assert_eq!(s.select(p(0), Phase::new(3), &c), c.all_processes());
        assert!(s.is_constant());
        assert!(s.guarantees_validity(&c));
        assert!(s.guarantees_strong_validity(&c), "n=4 > 3b+2f=3");
        assert!(!s.guarantees_strong_validity(&cfg(3, 0, 1)));
    }

    #[test]
    fn rotating_coordinator_cycles() {
        let c = cfg(3, 1, 0);
        let s = RotatingCoordinator::new();
        assert_eq!(
            s.select(p(0), Phase::new(1), &c),
            ProcessSet::singleton(p(0))
        );
        assert_eq!(
            s.select(p(2), Phase::new(2), &c),
            ProcessSet::singleton(p(1))
        );
        assert_eq!(
            s.select(p(1), Phase::new(4), &c),
            ProcessSet::singleton(p(0))
        );
        assert!(!s.is_constant());
        assert!(s.guarantees_validity(&c));
        assert!(
            !s.guarantees_validity(&cfg(4, 0, 1)),
            "singleton breaks validity with b=1"
        );
    }

    #[test]
    fn rotating_coordinator_same_for_all_processes() {
        // SL1: coordinator independent of p.
        let c = cfg(5, 2, 0);
        let s = RotatingCoordinator::new();
        for phi in 1..10u64 {
            let sets: Vec<_> = (0..5)
                .map(|i| s.select(p(i), Phase::new(phi), &c))
                .collect();
            assert!(sets.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn stable_leader_is_constant() {
        let c = cfg(3, 1, 0);
        let s = StableLeader::new(p(2));
        assert_eq!(s.leader(), p(2));
        assert_eq!(
            s.select(p(0), Phase::new(9), &c),
            ProcessSet::singleton(p(2))
        );
        assert!(s.is_constant());
        assert!(s.guarantees_validity(&c));
    }

    #[test]
    fn rotating_subset_windows_wrap() {
        let c = cfg(4, 0, 1);
        let s = RotatingSubset::new(2);
        assert_eq!(
            s.select(p(0), Phase::new(1), &c)
                .iter()
                .map(ProcessId::index)
                .collect::<Vec<_>>(),
            [0, 1]
        );
        assert_eq!(
            s.select(p(0), Phase::new(4), &c)
                .iter()
                .map(ProcessId::index)
                .collect::<Vec<_>>(),
            [0, 3]
        );
        assert!(s.guarantees_validity(&c), "size 2 > b 1");
        assert!(!RotatingSubset::new(1).guarantees_validity(&c));
        assert!(RotatingSubset::new(4).guarantees_strong_validity(&c));
    }

    #[test]
    fn rotating_subset_size_capped_at_n() {
        let c = cfg(3, 0, 0);
        let s = RotatingSubset::new(10);
        assert_eq!(s.select(p(0), Phase::new(1), &c).len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_rejected() {
        let _ = RotatingSubset::new(0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FullSelector::new().name(), "full");
        assert_eq!(RotatingCoordinator::new().name(), "rotating-coordinator");
        assert_eq!(StableLeader::new(p(0)).name(), "stable-leader");
        assert_eq!(RotatingSubset::new(2).name(), "rotating-subset");
    }
}
