//! Parameter bundles instantiating the generic algorithm.
//!
//! An instantiation of Algorithm 1 is a choice of the four parameters of
//! §3.2 — `FLAG`, `TD`, `FLV`, `Selector` — plus the §3.1 optimization
//! switches and the §6 randomization knobs. [`Params`] carries them;
//! [`Params::validate`] enforces every side condition the paper's theorems
//! need, so a successfully constructed engine is correct by construction
//! (Theorem 1's premises hold).

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use gencon_types::{quorum, Config, ConfigError, Value};

use crate::classes::ClassId;
use crate::flv::Flv;
use crate::schedule::{Flag, Schedule};
use crate::selector::{FullSelector, Selector};
use crate::state::StateProfile;

/// How line 11 of Algorithm 1 chooses when FLV answers `?`.
#[derive(Clone, Debug)]
pub enum ChoicePolicy<V> {
    /// Deterministic: the smallest received vote. (The paper only requires
    /// *some* deterministic choice; minimum is the conventional one.)
    DeterministicMin,
    /// §6 randomization: a uniform coin over a fixed domain, ignoring the
    /// received votes ("select_p := 1 or 0 with probability 0.5" for binary
    /// consensus). Each process derives an independent stream from `seed`.
    UniformCoin {
        /// The value domain to flip over (e.g. `vec![0, 1]`).
        domain: Vec<V>,
        /// Base seed; the engine mixes in the process id.
        seed: u64,
    },
}

/// Which liveness regime the instantiation runs under.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LivenessMode {
    /// Partially synchronous: selection rounds eventually get `Pcons`,
    /// other rounds `Pgood` (the default regime of Algorithm 1).
    #[default]
    PartialSynchrony,
    /// Randomized (§6): every round needs only `Prel` (at least `n − b − f`
    /// messages delivered); termination is probabilistic.
    ReliableChannels,
}

/// The full parameterization of one consensus instance.
#[derive(Clone)]
pub struct Params<V> {
    /// System model (n, f, b, unanimity).
    pub cfg: Config,
    /// The `FLAG` parameter.
    pub flag: Flag,
    /// The decision threshold `TD`.
    pub td: usize,
    /// The FLV function.
    pub flv: Arc<dyn Flv<V>>,
    /// The Selector function.
    pub selector: Arc<dyn Selector>,
    /// Which state variables are transmitted (Table 1's state column).
    pub profile: StateProfile,
    /// §3.1: validator sets derived locally instead of being exchanged
    /// (sound only when the selector is constant).
    pub constant_selector: bool,
    /// §3.1: skip the selection round of phase 1.
    pub skip_first_selection: bool,
    /// Line-11 choice rule.
    pub choice: ChoicePolicy<V>,
    /// Liveness regime.
    pub liveness: LivenessMode,
    /// Optional garbage collection of `history_p` (footnote 5: the paper's
    /// variable is unbounded; truly bounding it requires an extra round of
    /// communication \[3]). When enabled, entries older than the last
    /// validated timestamp are dropped after each validation — safe for
    /// class 1/2 profiles (history is not transmitted) and a pragmatic
    /// trade-off for class 3 (measured in ablation A1). Default: off.
    pub prune_history: bool,
}

impl<V: Value> Params<V> {
    /// Parameters for one of the paper's three classes with the generic FLV
    /// (Algorithms 2–4), `Selector = Π`, minimal `TD`, and the matching
    /// state profile.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `cfg` is below the class's resilience
    /// bound.
    pub fn for_class(class: ClassId, cfg: Config) -> Result<Self, ParamsError> {
        let params = Params {
            cfg,
            flag: class.flag(),
            td: class.min_td(&cfg),
            flv: class.flv(),
            selector: Arc::new(FullSelector::new()),
            profile: class.state_profile(),
            constant_selector: true,
            skip_first_selection: false,
            choice: ChoicePolicy::DeterministicMin,
            liveness: LivenessMode::PartialSynchrony,
            prune_history: false,
        };
        params.validate()?;
        Ok(params)
    }

    /// The schedule induced by `flag` and the optimization switches.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        Schedule::new(self.flag, self.skip_first_selection)
    }

    /// Checks every side condition required by Theorem 1 and the FLV
    /// theorems (2–4).
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validate(&self) -> Result<(), ParamsError> {
        // Termination needs TD ≤ n − b − f (§3.2).
        self.cfg.validate_threshold(self.td)?;

        // Agreement needs (iii-a) FLAG = φ ∧ TD > b, or (iii-b) FLAG = * ∧
        // TD > (n+b)/2 (Theorem 1).
        match self.flag {
            Flag::Phi => {
                if self.td <= self.cfg.b() {
                    return Err(ParamsError::ThresholdBelowAgreementBound {
                        td: self.td,
                        needed: self.cfg.b() + 1,
                        flag: self.flag,
                    });
                }
            }
            Flag::Star => {
                if !quorum::more_than_half(self.td, self.cfg.n() + self.cfg.b()) {
                    return Err(ParamsError::ThresholdBelowAgreementBound {
                        td: self.td,
                        needed: quorum::majority_threshold(self.cfg.n() + self.cfg.b()),
                        flag: self.flag,
                    });
                }
            }
        }

        // FLV-liveness needs its own lower bound on TD (Theorems 2–4).
        let flv_min = self.flv.min_live_td(&self.cfg);
        if self.td < flv_min {
            return Err(ParamsError::ThresholdBelowFlvBound {
                td: self.td,
                needed: flv_min,
                flv: self.flv.name(),
            });
        }

        // Selector-validity (Theorem 1 premise (ii)).
        if !self.selector.guarantees_validity(&self.cfg) {
            return Err(ParamsError::SelectorValidity {
                selector: self.selector.name(),
            });
        }

        // Selector-strongValidity for class-3 FLVs (§4.1.3).
        if self.flv.requires_strong_selector()
            && !self.selector.guarantees_strong_validity(&self.cfg)
        {
            return Err(ParamsError::SelectorStrongValidity {
                selector: self.selector.name(),
                flv: self.flv.name(),
            });
        }

        // Optimization side conditions (§3.1).
        if self.constant_selector && !self.selector.is_constant() {
            return Err(ParamsError::ConstantSelectorMismatch {
                selector: self.selector.name(),
            });
        }
        if self.skip_first_selection && !self.selector.is_constant() {
            return Err(ParamsError::SkipFirstSelectionNeedsConstantSelector);
        }

        // A coin needs a non-empty domain.
        if let ChoicePolicy::UniformCoin { domain, .. } = &self.choice {
            if domain.is_empty() {
                return Err(ParamsError::EmptyCoinDomain);
            }
        }
        Ok(())
    }
}

impl<V> fmt::Debug for Params<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Params")
            .field("cfg", &self.cfg)
            .field("flag", &self.flag)
            .field("td", &self.td)
            .field("flv", &self.flv.name())
            .field("selector", &self.selector.name())
            .field("profile", &self.profile)
            .field("constant_selector", &self.constant_selector)
            .field("skip_first_selection", &self.skip_first_selection)
            .field("liveness", &self.liveness)
            .finish()
    }
}

/// Error validating a [`Params`] bundle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParamsError {
    /// The underlying configuration rejected the threshold.
    Config(ConfigError),
    /// `TD` violates the agreement premise of Theorem 1 (iii-a / iii-b).
    ThresholdBelowAgreementBound {
        /// Given threshold.
        td: usize,
        /// Minimal admissible threshold.
        needed: usize,
        /// The flag whose bound failed.
        flag: Flag,
    },
    /// `TD` is below the FLV's liveness bound (Theorems 2–4).
    ThresholdBelowFlvBound {
        /// Given threshold.
        td: usize,
        /// Minimal admissible threshold.
        needed: usize,
        /// FLV name.
        flv: &'static str,
    },
    /// The selector cannot guarantee Selector-validity for this config.
    SelectorValidity {
        /// Selector name.
        selector: &'static str,
    },
    /// The FLV needs Selector-strongValidity but the selector cannot
    /// guarantee it.
    SelectorStrongValidity {
        /// Selector name.
        selector: &'static str,
        /// FLV name.
        flv: &'static str,
    },
    /// `constant_selector` was set for a non-constant selector.
    ConstantSelectorMismatch {
        /// Selector name.
        selector: &'static str,
    },
    /// `skip_first_selection` requires a constant selector (all processes
    /// must initialize the same validator set).
    SkipFirstSelectionNeedsConstantSelector,
    /// A coin choice policy was given an empty domain.
    EmptyCoinDomain,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::Config(e) => write!(f, "{e}"),
            ParamsError::ThresholdBelowAgreementBound { td, needed, flag } => write!(
                f,
                "TD = {td} violates the agreement bound for FLAG = {flag} (need at least {needed})"
            ),
            ParamsError::ThresholdBelowFlvBound { td, needed, flv } => write!(
                f,
                "TD = {td} is below the liveness bound of the {flv} FLV (need at least {needed})"
            ),
            ParamsError::SelectorValidity { selector } => write!(
                f,
                "selector '{selector}' cannot guarantee Selector-validity (|S| > b) for this configuration"
            ),
            ParamsError::SelectorStrongValidity { selector, flv } => write!(
                f,
                "FLV '{flv}' requires Selector-strongValidity (|S| > 3b+2f) but selector '{selector}' cannot guarantee it"
            ),
            ParamsError::ConstantSelectorMismatch { selector } => write!(
                f,
                "constant_selector optimization requires a constant selector, got '{selector}'"
            ),
            ParamsError::SkipFirstSelectionNeedsConstantSelector => write!(
                f,
                "skip_first_selection requires a constant selector so all processes agree on the initial validators"
            ),
            ParamsError::EmptyCoinDomain => write!(f, "coin choice policy needs a non-empty domain"),
        }
    }
}

impl Error for ParamsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParamsError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ParamsError {
    fn from(e: ConfigError) -> Self {
        ParamsError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::RotatingCoordinator;

    #[test]
    fn class_constructors_validate() {
        for class in ClassId::ALL {
            let cfg = Config::byzantine(class.min_n(0, 1), 1).unwrap();
            let p = Params::<u64>::for_class(class, cfg).unwrap();
            assert!(p.validate().is_ok());
            assert_eq!(p.td, class.min_td(&cfg));
        }
    }

    #[test]
    fn below_bound_config_rejected() {
        // Class 3 with n = 3, b = 1: TD must be > 2b = 2, but n−b−f = 2.
        let cfg = Config::byzantine(3, 1).unwrap();
        let err = Params::<u64>::for_class(ClassId::Three, cfg).unwrap_err();
        assert!(matches!(err, ParamsError::Config(_)));
    }

    #[test]
    fn star_flag_needs_byzantine_majority() {
        let cfg = Config::byzantine(6, 1).unwrap();
        let mut p = Params::<u64>::for_class(ClassId::One, cfg).unwrap();
        p.td = 3; // ≤ (n+b)/2 = 3.5 → needs ≥ 4
        assert!(matches!(
            p.validate(),
            Err(ParamsError::ThresholdBelowFlvBound { .. })
                | Err(ParamsError::ThresholdBelowAgreementBound { .. })
        ));
    }

    #[test]
    fn selector_validity_enforced() {
        let cfg = Config::byzantine(6, 1).unwrap();
        let mut p = Params::<u64>::for_class(ClassId::One, cfg).unwrap();
        p.selector = Arc::new(RotatingCoordinator::new()); // singleton, b = 1
        p.constant_selector = false;
        assert_eq!(
            p.validate(),
            Err(ParamsError::SelectorValidity {
                selector: "rotating-coordinator"
            })
        );
    }

    #[test]
    fn constant_selector_optimization_checked() {
        let cfg = Config::benign(3, 1).unwrap();
        let mut p = Params::<u64>::for_class(ClassId::Two, cfg).unwrap();
        p.selector = Arc::new(RotatingCoordinator::new());
        p.constant_selector = true; // rotating is not constant
        assert!(matches!(
            p.validate(),
            Err(ParamsError::ConstantSelectorMismatch { .. })
        ));
        p.constant_selector = false;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn skip_first_selection_needs_constant() {
        let cfg = Config::benign(3, 1).unwrap();
        let mut p = Params::<u64>::for_class(ClassId::Two, cfg).unwrap();
        p.selector = Arc::new(RotatingCoordinator::new());
        p.constant_selector = false;
        p.skip_first_selection = true;
        assert_eq!(
            p.validate(),
            Err(ParamsError::SkipFirstSelectionNeedsConstantSelector)
        );
    }

    #[test]
    fn empty_coin_domain_rejected() {
        let cfg = Config::benign(3, 1).unwrap();
        let mut p = Params::<u64>::for_class(ClassId::Two, cfg).unwrap();
        p.choice = ChoicePolicy::UniformCoin {
            domain: vec![],
            seed: 1,
        };
        assert_eq!(p.validate(), Err(ParamsError::EmptyCoinDomain));
    }

    #[test]
    fn schedule_follows_flag() {
        let cfg = Config::byzantine(6, 1).unwrap();
        let p1 = Params::<u64>::for_class(ClassId::One, cfg).unwrap();
        assert_eq!(p1.schedule().rounds_per_phase(), 2);
        let cfg3 = Config::byzantine(4, 1).unwrap();
        let p3 = Params::<u64>::for_class(ClassId::Three, cfg3).unwrap();
        assert_eq!(p3.schedule().rounds_per_phase(), 3);
    }

    #[test]
    fn errors_display() {
        let e = ParamsError::SkipFirstSelectionNeedsConstantSelector;
        assert!(e.to_string().contains("constant selector"));
        let e2 = ParamsError::ThresholdBelowFlvBound {
            td: 2,
            needed: 3,
            flv: "class2",
        };
        assert!(e2.to_string().contains("class2"));
    }
}
