//! Criterion benchmarks of the `Pcons` stacks: one full PBFT decision over
//! the coordinator-authenticated (2-round) and echo (3-round)
//! implementations, versus the model-level baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use gencon_algos::pbft;
use gencon_bench::run_synchronous;
use gencon_crypto::KeyStore;
use gencon_pcons::{PconsMode, PconsStack};
use gencon_sim::{AlwaysGood, Simulation};

fn decide_over_stack(mode: PconsMode) -> u64 {
    let spec = pbft::<u64>(4, 1).unwrap();
    let cfg = spec.params.cfg;
    let stores = KeyStore::dealer(4, 99);
    let engines = spec.spawn(&[1, 2, 3, 4]).unwrap();
    let mut builder = Simulation::builder(cfg);
    for (i, engine) in engines.into_iter().enumerate() {
        match mode {
            PconsMode::CoordinatedAuth => {
                builder =
                    builder.honest(PconsStack::coordinated_auth(engine, stores[i].clone(), 1));
            }
            PconsMode::EchoBroadcast => {
                builder = builder.honest(PconsStack::echo_broadcast(engine, 4, 1));
            }
        }
    }
    let mut sim = builder
        .network(AlwaysGood)
        .enforce_predicates(false)
        .build()
        .unwrap();
    let out = sim.run(30);
    assert!(out.all_correct_decided);
    out.rounds_executed
}

fn bench_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcons");
    group.bench_function("pbft_magic_baseline", |b| {
        b.iter(|| {
            let spec = pbft::<u64>(4, 1).unwrap();
            let out = run_synchronous(&spec, &[1, 2, 3, 4], 30);
            assert!(out.all_correct_decided);
            out.rounds_executed
        })
    });
    group.bench_function("pbft_coordinated_auth", |b| {
        b.iter(|| decide_over_stack(PconsMode::CoordinatedAuth))
    });
    group.bench_function("pbft_echo_broadcast", |b| {
        b.iter(|| decide_over_stack(PconsMode::EchoBroadcast))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(30);
    targets = bench_stacks
}
criterion_main!(benches);
