//! Criterion micro-benchmarks of the FLV functions (Algorithms 2, 3, 4 and
//! the specializations) over synthetic selection-round inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gencon_core::{
    Class1Flv, Class2Flv, Class3Flv, FabFlv, Flv, FlvContext, History, PaxosFlv, PbftFlv,
    SelectionMsg,
};
use gencon_types::{Config, Phase, ProcessSet};

/// Builds a worst-ish case input: half the votes locked on v1 with fresh
/// timestamps and full histories, the rest stale.
fn inputs(n: usize, phases: u64) -> Vec<SelectionMsg<u64>> {
    (0..n)
        .map(|i| {
            let vote = if i < n / 2 + 1 { 1 } else { 2 + (i as u64 % 3) };
            let ts = if i < n / 2 + 1 { phases } else { phases / 2 };
            let mut history = History::initial(vote);
            for p in 1..=ts.min(phases) {
                history.record(vote, Phase::new(p));
            }
            SelectionMsg {
                vote,
                ts: Phase::new(ts),
                history,
                selector: ProcessSet::new(),
            }
        })
        .collect()
}

fn bench_flv(c: &mut Criterion) {
    let mut group = c.benchmark_group("flv");
    for n in [7usize, 16, 64] {
        let cfg =
            Config::byzantine(n, (n - 1) / 6).unwrap_or_else(|_| Config::byzantine(n, 0).unwrap());
        let msgs = inputs(n, 8);
        let refs: Vec<&SelectionMsg<u64>> = msgs.iter().collect();
        let ctx = FlvContext {
            cfg,
            td: 2 * n / 3 + 1,
            phase: Phase::new(9),
        };
        group.bench_with_input(BenchmarkId::new("class1", n), &n, |b, _| {
            b.iter(|| Class1Flv::new().evaluate(&ctx, std::hint::black_box(&refs)))
        });
        group.bench_with_input(BenchmarkId::new("class2", n), &n, |b, _| {
            b.iter(|| Class2Flv::new().evaluate(&ctx, std::hint::black_box(&refs)))
        });
        group.bench_with_input(BenchmarkId::new("class3", n), &n, |b, _| {
            b.iter(|| Class3Flv::new().evaluate(&ctx, std::hint::black_box(&refs)))
        });
    }
    group.finish();
}

fn bench_specializations(c: &mut Criterion) {
    let mut group = c.benchmark_group("flv_special");
    // Paxos at n = 5 (benign)
    let cfg_paxos = Config::benign(5, 2).unwrap();
    let msgs = inputs(5, 4);
    let refs: Vec<&SelectionMsg<u64>> = msgs.iter().collect();
    let ctx = FlvContext {
        cfg: cfg_paxos,
        td: PaxosFlv::td(5),
        phase: Phase::new(5),
    };
    group.bench_function("paxos_n5", |b| {
        b.iter(|| PaxosFlv::new().evaluate(&ctx, std::hint::black_box(&refs)))
    });

    // PBFT at n = 4
    let cfg_pbft = Config::byzantine(4, 1).unwrap();
    let msgs4 = inputs(4, 4);
    let refs4: Vec<&SelectionMsg<u64>> = msgs4.iter().collect();
    let ctx4 = FlvContext {
        cfg: cfg_pbft,
        td: PbftFlv::td(1),
        phase: Phase::new(5),
    };
    group.bench_function("pbft_n4", |b| {
        b.iter(|| PbftFlv::new().evaluate(&ctx4, std::hint::black_box(&refs4)))
    });

    // FaB at n = 6
    let cfg_fab = Config::byzantine(6, 1).unwrap();
    let msgs6 = inputs(6, 4);
    let refs6: Vec<&SelectionMsg<u64>> = msgs6.iter().collect();
    let ctx6 = FlvContext {
        cfg: cfg_fab,
        td: FabFlv::td(6, 1),
        phase: Phase::new(5),
    };
    group.bench_function("fab_n6", |b| {
        b.iter(|| FabFlv::new().evaluate(&ctx6, std::hint::black_box(&refs6)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(30);
    targets = bench_flv, bench_specializations
}
criterion_main!(benches);
