//! Criterion end-to-end benchmarks: one full simulated consensus instance
//! per iteration, for every named algorithm of the catalog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gencon_algos::{chandra_toueg, fab_paxos, mqb, one_third_rule, paxos, pbft, AlgorithmSpec};
use gencon_bench::run_synchronous;
use gencon_types::ProcessId;

fn decide_once(spec: &AlgorithmSpec<u64>) -> u64 {
    let n = spec.params.cfg.n();
    let inits: Vec<u64> = (0..n as u64).collect();
    let out = run_synchronous(spec, &inits, 30);
    assert!(out.all_correct_decided);
    out.rounds_executed
}

fn bench_catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_e2e");
    let specs: Vec<(&str, AlgorithmSpec<u64>)> = vec![
        ("one_third_rule_n4", one_third_rule(4, 1).unwrap()),
        ("fab_paxos_n6", fab_paxos(6, 1).unwrap()),
        ("paxos_n3", paxos(3, 1, ProcessId::new(0)).unwrap()),
        ("ct_n3", chandra_toueg(3, 1).unwrap()),
        ("mqb_n5", mqb(5, 1).unwrap()),
        ("pbft_n4", pbft(4, 1).unwrap()),
    ];
    for (name, spec) in &specs {
        group.bench_function(*name, |b| {
            b.iter(|| decide_once(std::hint::black_box(spec)))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqb_scaling");
    for n in [5usize, 9, 17, 33] {
        let b_faults = (n - 1) / 4;
        let spec = mqb::<u64>(n, b_faults).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| decide_once(std::hint::black_box(&spec)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(30);
    targets = bench_catalog, bench_scaling
}
criterion_main!(benches);
