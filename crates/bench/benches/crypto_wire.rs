//! Criterion benchmarks of the crypto substrate (SHA-256, HMAC,
//! authenticators) and the wire codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use gencon_core::{History, SelectionMsg};
use gencon_crypto::{hmac_sha256, sha256, KeyStore};
use gencon_net::Wire;
use gencon_types::{Phase, ProcessId, ProcessSet};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let kib = vec![0xa5u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1kib", |b| {
        b.iter(|| sha256(std::hint::black_box(&kib)))
    });
    group.bench_function("hmac_sha256_1kib", |b| {
        b.iter(|| hmac_sha256(b"key", std::hint::black_box(&kib)))
    });
    group.finish();

    let mut auth_group = c.benchmark_group("authenticators");
    for n in [4usize, 16, 64] {
        let stores = KeyStore::dealer(n, 7);
        auth_group.bench_function(format!("authenticate_n{n}"), |b| {
            b.iter(|| {
                stores[0].authenticate(std::hint::black_box(b"digest-32-bytes-digest-32-bytes!"))
            })
        });
        let auth = stores[0].authenticate(b"digest-32-bytes-digest-32-bytes!");
        auth_group.bench_function(format!("verify_n{n}"), |b| {
            b.iter(|| {
                stores[1].verify(
                    ProcessId::new(0),
                    std::hint::black_box(b"digest-32-bytes-digest-32-bytes!"),
                    &auth,
                )
            })
        });
    }
    auth_group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let mut history = History::initial(7u64);
    for p in 1..=10u64 {
        history.record(7, Phase::new(p));
    }
    let msg = SelectionMsg {
        vote: 7u64,
        ts: Phase::new(10),
        history,
        selector: ProcessSet::range(0, 16),
    };
    group.bench_function("encode_selection_msg", |b| {
        b.iter(|| std::hint::black_box(&msg).to_bytes())
    });
    let bytes = msg.to_bytes();
    group.bench_function("decode_selection_msg", |b| {
        b.iter(|| {
            let mut buf = bytes.clone();
            SelectionMsg::<u64>::decode(&mut buf).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(30);
    targets = bench_crypto, bench_wire
}
criterion_main!(benches);
