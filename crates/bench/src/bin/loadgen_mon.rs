//! Experiment **E14** — cluster observability end to end
//! (`BENCH_mon.json`).
//!
//! Runs a 4-node durable PBFT cluster under closed-loop load with the
//! full monitoring stack attached: every node carries a metrics
//! registry, a history sampler, a state-hash cell and an admin
//! endpoint, and a live [`Monitor`](gencon_server::mon::Monitor) polls
//! them exactly as the `gencon-mon` binary would. Mid-run the driver
//! takes one node's admin endpoint down and brings it back, so the run
//! demonstrates the watchdog choreography the tentpole promises:
//!
//! 1. `unreachable` fires for the killed node,
//! 2. `straggler-recovered` fires once it is back,
//! 3. the final cluster report shows state-hash **agreement** at an
//!    applied count common to all four nodes (the anti-divergence
//!    audit), and no `divergence` alert ever fired.
//!
//! The run doubles as experiment **E15** — the cross-node slot autopsy:
//! after the cluster quiesces the driver estimates every node's
//! recorder-clock offset over the admin `clock` command, pulls each
//! node's `spans`, and stitches them into cluster slot spans. The run
//! asserts ≥ 90 % of committed slots stitched, and the output carries
//! decide-skew and quorum-wait percentiles plus every node's clock
//! offset ± uncertainty.
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen_mon`
//! Smoke (CI): `... --bin loadgen_mon -- --smoke`
//! Output path: `--out <path>` (default `BENCH_mon.json`) — one JSON
//! object `{"report":…,"autopsy":…}`: the final cluster report (alerts
//! included) and the E15 stitch summary.

use std::time::Duration;

use gencon_load::{run_mon_load, MonLoadProfile};
use gencon_server::mon::AlertKind;
use gencon_smr::Batch;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_mon.json".to_string());

    println!(
        "# E14/E15 — monitored durable cluster: kill/recovery choreography + \
         cross-node slot autopsy ({})\n",
        if smoke { "smoke run" } else { "full run" }
    );

    let spec = gencon_algos::pbft::<Batch<u64>>(4, 1).expect("pbft");
    let mut profile = MonLoadProfile::new(if smoke { 400 } else { 1_500 });
    profile.poll_interval = Duration::from_millis(if smoke { 50 } else { 100 });
    let report = run_mon_load(&spec.params, &profile);

    println!(
        "polls {} · alerts {} · final committed [{}..{}] · round skew {}",
        report.polls,
        report.alerts.len(),
        report.final_report.min_committed,
        report.final_report.max_committed,
        report.final_report.round_skew,
    );
    for alert in &report.alerts {
        println!("  {}", alert.to_json());
    }
    if let Some(agreement) = &report.final_report.agreement {
        println!(
            "hash agreement at applied {}: {}",
            agreement.applied,
            if agreement.agreed {
                "AGREED"
            } else {
                "DIVERGED"
            }
        );
    }

    assert!(
        report.all_reached_target,
        "a replica stalled before the ack target"
    );
    assert!(
        report.saw_kill_and_recovery(profile.kill_node),
        "watchdog missed the kill/recovery choreography: {:?}",
        report.alerts
    );
    assert!(
        report.hashes_agree,
        "final report lacks hash agreement across all nodes: {:?}",
        report.final_report.agreement
    );
    assert!(
        report
            .alerts
            .iter()
            .all(|a| a.kind != AlertKind::Divergence),
        "honest replicas reported divergence: {:?}",
        report.alerts
    );

    // E15: the autopsy must explain (nearly) the whole run.
    let (skew_p50, skew_p99) = report.decide_skew_pcts();
    let (wait_p50, wait_p99) = report.quorum_wait_pcts();
    println!(
        "autopsy: {} slots stitched ({:.1}% of committed) · decide skew p50/p99 {}/{} µs · \
         quorum wait p50/p99 {}/{} µs",
        report.trace.spans.len(),
        report.stitched_ratio * 100.0,
        opt(skew_p50),
        opt(skew_p99),
        opt(wait_p50),
        opt(wait_p99),
    );
    for node in &report.trace.nodes {
        if let Some(clock) = &node.clock {
            println!(
                "  node {} clock offset {} µs ± {} µs ({} samples)",
                node.node, clock.offset_us, clock.uncertainty_us, clock.samples
            );
        }
    }
    assert!(
        report.stitched_ratio >= 0.9,
        "autopsy stitched only {} of {} committed slots",
        report.trace.spans.len(),
        report.final_report.max_committed
    );
    assert!(
        skew_p50.is_some() && skew_p99.is_some(),
        "no decide-skew percentiles in the stitched spans"
    );

    let body = format!(
        "{{\"report\":{},\"autopsy\":{{\"stitched_slots\":{},\"stitched_ratio\":{:.4},\
         \"decide_skew_p50_us\":{},\"decide_skew_p99_us\":{},\"quorum_wait_p50_us\":{},\
         \"quorum_wait_p99_us\":{},\"summary\":{}}}}}\n",
        report.final_report.to_json(),
        report.trace.spans.len(),
        report.stitched_ratio,
        opt(skew_p50),
        opt(skew_p99),
        opt(wait_p50),
        opt(wait_p99),
        report.trace.summary_json(),
    );
    if let Err(e) = std::fs::write(&out_path, body) {
        eprintln!("loadgen_mon: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nfinal cluster report + autopsy written to {out_path}");
}

/// `Option<u64>` as a JSON value (`null` when absent).
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}
