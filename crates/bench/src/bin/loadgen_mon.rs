//! Experiment **E14** — cluster observability end to end
//! (`BENCH_mon.json`).
//!
//! Runs a 4-node durable PBFT cluster under closed-loop load with the
//! full monitoring stack attached: every node carries a metrics
//! registry, a history sampler, a state-hash cell and an admin
//! endpoint, and a live [`Monitor`](gencon_server::mon::Monitor) polls
//! them exactly as the `gencon-mon` binary would. Mid-run the driver
//! takes one node's admin endpoint down and brings it back, so the run
//! demonstrates the watchdog choreography the tentpole promises:
//!
//! 1. `unreachable` fires for the killed node,
//! 2. `straggler-recovered` fires once it is back,
//! 3. the final cluster report shows state-hash **agreement** at an
//!    applied count common to all four nodes (the anti-divergence
//!    audit), and no `divergence` alert ever fired.
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen_mon`
//! Smoke (CI): `... --bin loadgen_mon -- --smoke`
//! Output path: `--out <path>` (default `BENCH_mon.json`) — the final
//! cluster report JSON, alerts included.

use std::time::Duration;

use gencon_load::{run_mon_load, MonLoadProfile};
use gencon_server::mon::AlertKind;
use gencon_smr::Batch;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_mon.json".to_string());

    println!(
        "# E14 — monitored durable cluster with kill/recovery choreography ({})\n",
        if smoke { "smoke run" } else { "full run" }
    );

    let spec = gencon_algos::pbft::<Batch<u64>>(4, 1).expect("pbft");
    let mut profile = MonLoadProfile::new(if smoke { 400 } else { 1_500 });
    profile.poll_interval = Duration::from_millis(if smoke { 50 } else { 100 });
    let report = run_mon_load(&spec.params, &profile);

    println!(
        "polls {} · alerts {} · final committed [{}..{}] · round skew {}",
        report.polls,
        report.alerts.len(),
        report.final_report.min_committed,
        report.final_report.max_committed,
        report.final_report.round_skew,
    );
    for alert in &report.alerts {
        println!("  {}", alert.to_json());
    }
    if let Some(agreement) = &report.final_report.agreement {
        println!(
            "hash agreement at applied {}: {}",
            agreement.applied,
            if agreement.agreed {
                "AGREED"
            } else {
                "DIVERGED"
            }
        );
    }

    assert!(
        report.all_reached_target,
        "a replica stalled before the ack target"
    );
    assert!(
        report.saw_kill_and_recovery(profile.kill_node),
        "watchdog missed the kill/recovery choreography: {:?}",
        report.alerts
    );
    assert!(
        report.hashes_agree,
        "final report lacks hash agreement across all nodes: {:?}",
        report.final_report.agreement
    );
    assert!(
        report
            .alerts
            .iter()
            .all(|a| a.kind != AlertKind::Divergence),
        "honest replicas reported divergence: {:?}",
        report.alerts
    );

    if let Err(e) = std::fs::write(&out_path, format!("{}\n", report.final_report.to_json())) {
        eprintln!("loadgen_mon: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nfinal cluster report written to {out_path}");
}
