//! Experiment **E1** — tightness of the Table 1 resilience bounds.
//!
//! For each class (Byzantine point: f = 0, b = 1):
//!
//! 1. **At the bound** (`n = min_n`): agreement *and* termination hold
//!    under aggressive adversaries (equivocation, timestamp forgery,
//!    history forgery, split votes) across seeds.
//! 2. **One below the bound** (`n = min_n − 1`): no valid `TD` exists —
//!    every threshold violates either FLV-liveness (`TD` too small),
//!    termination (`TD > n − b − f`), or agreement. Forcing the two
//!    relaxations shows the corresponding property actually failing:
//!    * keep `TD` safe but unreachable → a silent Byzantine process blocks
//!      every decision (termination lost);
//!    * lower `TD` to `b` (`FLAG = φ`) → a split-voting Byzantine process
//!      makes two honest processes decide differently (agreement lost).
//!
//! Run: `cargo run -p gencon-bench --bin exp_resilience`

use gencon_adversary::{AdversaryCtx, Equivocator, FreshLiar, HistoryForger, Silent, SplitVoter};
use gencon_bench::{run_scenario, BoxedAdversary, Table};
use gencon_core::{ClassId, ConsensusMsg, Decision, GenericConsensus, Params};
use gencon_sim::{properties, AlwaysGood, CrashPlan, SimBuilder, Simulation};
use gencon_types::{Config, ProcessId};

fn adversaries_for(
    class: ClassId,
    params: &Params<u64>,
    byz: ProcessId,
) -> Vec<(&'static str, BoxedAdversary<u64>)> {
    let ctx = AdversaryCtx::new(params.cfg, params.schedule());
    vec![
        (
            "silent",
            Box::new(Silent::<u64>::new(byz)) as BoxedAdversary<u64>,
        ),
        (
            "equivocator",
            Box::new(Equivocator::new(byz, ctx.clone(), 100, 200)),
        ),
        (
            "fresh-liar",
            Box::new(FreshLiar::new(byz, ctx.clone(), 300)),
        ),
        (
            "history-forger",
            Box::new(HistoryForger::new(byz, ctx.clone(), 400, vec![1, 2, 3])),
        ),
        ("split-voter", {
            let _ = class;
            Box::new(SplitVoter::new(byz, ctx, 500, 600))
        }),
    ]
}

fn spec_for(class: ClassId, n: usize) -> gencon_algos::AlgorithmSpec<u64> {
    let cfg = Config::byzantine(n, 1).expect("config");
    let params = Params::<u64>::for_class(class, cfg).expect("params at the bound");
    gencon_algos::AlgorithmSpec {
        name: "generic",
        class,
        model: "Byzantine",
        bound: class.n_bound(),
        params,
    }
}

fn main() {
    println!("# E1 — Resilience bounds are tight (f = 0, b = 1)\n");

    // --- Part 1: at the bound, everything holds -------------------------
    println!("## At the bound: safety + liveness under adversaries\n");
    let mut t = Table::new(["class", "n", "adversary", "decided", "agreement", "rounds"]);
    for class in ClassId::ALL {
        let n = class.min_n(0, 1);
        let spec = spec_for(class, n);
        let byz = ProcessId::new(n - 1);
        for (name, adv) in adversaries_for(class, &spec.params, byz) {
            let inits: Vec<u64> = (0..n as u64).collect();
            let out = run_scenario(&spec, &inits, AlwaysGood, CrashPlan::none(), vec![adv], 60);
            let agreement = properties::agreement(&out, |d: &Decision<u64>| &d.value);
            assert!(
                agreement,
                "{class} vs {name}: agreement violated AT the bound"
            );
            assert!(
                out.all_correct_decided,
                "{class} vs {name}: no termination AT the bound"
            );
            t.row([
                class.to_string(),
                n.to_string(),
                name.to_string(),
                "yes".to_string(),
                "holds".to_string(),
                out.last_decision_round()
                    .map(|r| r.number().to_string())
                    .unwrap_or_default(),
            ]);
        }
    }
    t.print();

    // --- Part 2: below the bound, no valid TD exists ---------------------
    println!("\n## One below the bound: every TD is rejected\n");
    let mut t2 = Table::new(["class", "n-1", "valid TDs", "first rejection reason"]);
    for class in ClassId::ALL {
        let n = class.min_n(0, 1) - 1;
        let Ok(cfg) = Config::byzantine(n, 1) else {
            t2.row([
                class.to_string(),
                n.to_string(),
                "0".into(),
                "n too small".into(),
            ]);
            continue;
        };
        let mut valid = 0;
        let mut first_err = String::new();
        for td in 1..=n {
            let mut params = Params::<u64>::for_class(class, Config::byzantine(n + 1, 1).unwrap())
                .expect("reference params");
            params.cfg = cfg;
            params.td = td;
            match params.validate() {
                Ok(()) => valid += 1,
                Err(e) => {
                    if first_err.is_empty() {
                        first_err = e.to_string();
                    }
                }
            }
        }
        assert_eq!(valid, 0, "{class}: some TD validated below the bound");
        t2.row([
            class.to_string(),
            n.to_string(),
            valid.to_string(),
            first_err,
        ]);
    }
    t2.print();

    // --- Part 3: forcing it anyway — termination fails -------------------
    println!("\n## Below the bound, forced run #1: silent Byzantine ⇒ no termination\n");
    let mut t3 = Table::new(["class", "n-1", "TD (forced)", "rounds run", "decided"]);
    for class in ClassId::ALL {
        let n = class.min_n(0, 1) - 1;
        let cfg = Config::byzantine(n, 1).expect("n-1 still has a correct process");
        // Safe-but-unreachable TD: the class minimum (FLV-live), which
        // exceeds n − b here.
        let td = class.min_td(&cfg);
        let mut params =
            Params::<u64>::for_class(class, Config::byzantine(n + 1, 1).unwrap()).unwrap();
        params.cfg = cfg;
        params.td = td;
        let byz = ProcessId::new(n - 1);
        let mut builder: SimBuilder<ConsensusMsg<u64>, Decision<u64>> = Simulation::builder(cfg);
        for i in 0..n - 1 {
            builder = builder.honest(GenericConsensus::new_unchecked(
                ProcessId::new(i),
                params.clone(),
                i as u64,
            ));
        }
        let mut sim = builder
            .byzantine(Silent::<u64>::new(byz))
            .build()
            .expect("builds");
        let out = sim.run(120);
        assert!(
            !out.all_correct_decided,
            "{class}: decided below the bound with TD = {td}?!"
        );
        t3.row([
            class.to_string(),
            n.to_string(),
            td.to_string(),
            out.rounds_executed.to_string(),
            "NO (termination lost)".to_string(),
        ]);
    }
    t3.print();

    // --- Part 4: forcing it anyway — agreement fails ----------------------
    println!("\n## Below the bound, forced run #2: TD ≤ b ⇒ double decision\n");
    // Class 3 at n = 3, b = 1, TD = 1 (= b): a split-voting Byzantine
    // process alone reaches TD on both halves.
    let cfg = Config::byzantine(3, 1).unwrap();
    let mut params =
        Params::<u64>::for_class(ClassId::Three, Config::byzantine(4, 1).unwrap()).unwrap();
    params.cfg = cfg;
    params.td = 1;
    let ctx = AdversaryCtx::new(cfg, params.schedule());
    let byz = ProcessId::new(2);
    let mut builder: SimBuilder<ConsensusMsg<u64>, Decision<u64>> = Simulation::builder(cfg);
    for i in 0..2 {
        builder = builder.honest(GenericConsensus::new_unchecked(
            ProcessId::new(i),
            params.clone(),
            i as u64,
        ));
    }
    let mut sim = builder
        .byzantine(SplitVoter::new(byz, ctx, 111, 222))
        .build()
        .expect("builds");
    let out = sim.run(10);
    let agreement = properties::agreement(&out, |d: &Decision<u64>| &d.value);
    let decisions: Vec<_> = out.honest_decisions().map(|d| d.value).collect();
    println!("honest decisions: {decisions:?}");
    assert!(
        !agreement,
        "expected an agreement violation with TD = b below the bound"
    );
    println!("AGREEMENT VIOLATED (as predicted by Theorem 1's premise iii-a: TD > b)");

    println!("\nConclusion: at min_n all properties hold; at min_n − 1 either");
    println!("termination or agreement is necessarily sacrificed — the Table 1");
    println!("bounds are tight.");
}
