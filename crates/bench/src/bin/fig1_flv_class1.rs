//! Regenerates **Figure 1** of the paper: the quorum geometry of the
//! class-1 FLV (Algorithm 2) at n = 6, b = 1, f = 0, TD = 5.
//!
//! The figure shows: after a decision on v1, at least TD − b = 4 honest
//! processes vote v1 and at most n − TD + b = 2 messages can carry v2, so
//! any sample of more than 2(n − TD + b) = 4 messages contains v1 more than
//! n − TD + b = 2 times — FLV can only return v1.
//!
//! Run: `cargo run -p gencon-bench --bin fig1_flv_class1`

use gencon_bench::Table;
use gencon_core::flv::properties::{agreement_holds, validity_holds};
use gencon_core::{Class1Flv, Flv, FlvContext, FlvOutcome, History, SelectionMsg};
use gencon_types::{Config, Phase, ProcessSet};

fn msg(vote: u64) -> SelectionMsg<u64> {
    SelectionMsg {
        vote,
        ts: Phase::ZERO,
        history: History::new(),
        selector: ProcessSet::new(),
    }
}

fn main() {
    let cfg = Config::byzantine(6, 1).expect("n=6, b=1");
    let td = 5;
    let ctx = FlvContext {
        cfg,
        td,
        phase: Phase::new(2),
    };
    println!("# Figure 1 — FLV for class 1 (n = 6, b = 1, f = 0, TD = 5)\n");
    println!("pivot n − TD + b = {}", ctx.n_td_b());
    println!("sample bound 2(n − TD + b) = {}\n", 2 * ctx.n_td_b());

    // The figure's message population: 4 × v1 (TD − b honest), 2 × v2.
    let population = [msg(1), msg(1), msg(1), msg(1), msg(2), msg(2)];
    let flv = Class1Flv::new();

    let mut t = Table::new(["subset (votes)", "|µ|", "FLV outcome", "agreement ok"]);
    let mut violations = 0u32;
    // Exhaustive subsets of the figure's population.
    for mask in 1u32..(1 << population.len()) {
        let subset: Vec<&SelectionMsg<u64>> = population
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, m)| m)
            .collect();
        let out = flv.evaluate(&ctx, &subset);
        assert!(validity_holds(&out, &subset), "FLV-validity");
        let ok = agreement_holds(&out, &1);
        if !ok {
            violations += 1;
        }
        // Print the interesting boundary sizes only (4, 5, 6).
        if subset.len() >= 4 {
            let votes: Vec<String> = subset.iter().map(|m| m.vote.to_string()).collect();
            t.row([
                votes.join(","),
                subset.len().to_string(),
                format!("{out:?}"),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.print();

    println!(
        "\nFLV-agreement violations over all {} subsets: {}",
        (1u32 << population.len()) - 1,
        violations
    );
    assert_eq!(violations, 0, "Figure 1's geometry guarantees agreement");

    // The paper's headline case: every sample larger than 2(n−TD+b) = 4
    // recovers the locked value v1.
    let all: Vec<&SelectionMsg<u64>> = population.iter().collect();
    assert_eq!(flv.evaluate(&ctx, &all), FlvOutcome::Value(1));
    println!("full population of 6 messages → Value(1) — matches the figure");
}
