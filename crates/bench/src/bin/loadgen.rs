//! Experiment **E8** — end-to-end SMR throughput and latency under client
//! load (`BENCH_smr.json`).
//!
//! Sweeps catalog algorithms × network models × client counts × batch caps
//! × fault mixes, pushing closed-loop (and, in the full sweep, open-loop
//! Poisson) client traffic through the batched replicated log of
//! `gencon-smr` via the `gencon-load` harness, and writes one JSON row per
//! configuration: committed commands, rounds, commands per round, and
//! commit-latency percentiles (p50/p90/p99/p999, in rounds).
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen`
//! Smoke (CI): `cargo run -p gencon_bench --bin loadgen -- --smoke`
//! Output path: `--out <path>` (default `BENCH_smr.json`).
//!
//! Shape checks asserted on the synchronous Paxos configuration: batching
//! with cap ≥ 8 must commit ≥ 4× more commands per round than cap 1, and
//! honest logs must agree in every configuration.

use gencon_algos::AlgorithmSpec;
use gencon_bench::Table;
use gencon_load::{run_load, BenchRow, LoadProfile, ResultsWriter, WorkloadKind};
use gencon_sim::{AlwaysGood, CrashAt, CrashPlan, Gst, NetworkModel, RandomSubset};
use gencon_smr::Batch;
use gencon_types::{ProcessId, Round};

/// A network model factory (models hold seeded rngs, so each run gets a
/// fresh one) with its results label.
struct Net {
    label: &'static str,
    make: fn(n: usize) -> Box<dyn NetworkModel>,
}

/// A fault mix: crash plan + mute-Byzantine ids, with its label.
struct Faults {
    label: &'static str,
    crashes: fn() -> CrashPlan,
    byzantine: &'static [usize],
}

const NO_FAULTS: Faults = Faults {
    label: "none",
    crashes: CrashPlan::none,
    byzantine: &[],
};

fn algos() -> Vec<AlgorithmSpec<Batch<u64>>> {
    vec![
        // Benign class 2: the leader-based workhorse.
        gencon_algos::paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).expect("paxos"),
        // Byzantine class 3: the paper's PBFT core.
        gencon_algos::pbft::<Batch<u64>>(4, 1).expect("pbft"),
        // Byzantine class 2: the paper's new algorithm.
        gencon_algos::mqb::<Batch<u64>>(5, 1).expect("mqb"),
    ]
}

fn networks(smoke: bool) -> Vec<Net> {
    let mut nets = vec![
        Net {
            label: "AlwaysGood",
            make: |_n| Box::new(AlwaysGood),
        },
        Net {
            label: "Gst(8,0.5)",
            make: |_n| Box::new(Gst::new(8, 0.5, 17)),
        },
    ];
    if !smoke {
        nets.push(Net {
            label: "RandomSubset(n-1)",
            make: |n| Box::new(RandomSubset::new(n - 1, 23)),
        });
    }
    nets
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    writer: &mut ResultsWriter,
    table: &mut Table,
    spec: &AlgorithmSpec<Batch<u64>>,
    net: &Net,
    faults: &Faults,
    workload: WorkloadKind,
    clients_per_replica: u16,
    batch_cap: usize,
    commit_target: usize,
    max_rounds: u64,
) -> BenchRow {
    let n = spec.params.cfg.n();
    let byz: Vec<ProcessId> = faults
        .byzantine
        .iter()
        .map(|&i| ProcessId::new(i))
        .collect();
    let profile = LoadProfile {
        clients_per_replica,
        workload: workload.clone(),
        batch_cap,
        window: 1,
        commit_target,
        max_rounds,
        seed: 42,
    };
    let report = run_load(
        &spec.params,
        (net.make)(n),
        (faults.crashes)(),
        &byz,
        &profile,
    );
    assert!(
        report.logs_agree,
        "{} over {}: honest logs diverged",
        spec.name, net.label
    );
    assert!(
        report.all_decided,
        "{} over {} ({}, cap {}): stalled at {} of {} commands after {} rounds \
         — a stalled configuration must fail, not emit a depressed row",
        spec.name,
        net.label,
        faults.label,
        batch_cap,
        report.committed_cmds,
        commit_target,
        report.rounds
    );
    let row = BenchRow {
        algo: spec.name.to_string(),
        class: spec.class.to_string(),
        n,
        b: spec.params.cfg.b(),
        f: spec.params.cfg.f(),
        network: net.label.to_string(),
        faults: faults.label.to_string(),
        workload: workload.label(),
        clients: clients_per_replica as usize * (n - faults.byzantine.len()),
        batch_cap,
        committed_cmds: report.committed_cmds,
        rounds: report.rounds,
        cmds_per_round: report.cmds_per_round(),
        p50: report.hist.p50(),
        p90: report.hist.p90(),
        p99: report.hist.p99(),
        p999: report.hist.p999(),
    };
    table.row([
        row.algo.clone(),
        row.network.clone(),
        row.faults.clone(),
        row.workload.clone(),
        row.clients.to_string(),
        row.batch_cap.to_string(),
        row.committed_cmds.to_string(),
        row.rounds.to_string(),
        format!("{:.2}", row.cmds_per_round),
        row.p50.to_string(),
        row.p99.to_string(),
    ]);
    writer.push(row.clone());
    row
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_smr.json".to_string());

    println!(
        "# E8 — SMR throughput/latency under client load ({})\n",
        if smoke { "smoke sweep" } else { "full sweep" }
    );

    let mut writer = ResultsWriter::new();
    let mut table = Table::new([
        "algo",
        "network",
        "faults",
        "workload",
        "clients",
        "cap",
        "cmds",
        "rounds",
        "cmds/round",
        "p50",
        "p99",
    ]);

    let caps: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 16, 64] };
    let client_counts: &[u16] = if smoke { &[4] } else { &[2, 8, 32] };
    let (target, max_rounds) = if smoke { (48, 600) } else { (160, 2000) };

    // Paxos cap-1 vs cap-8 on the synchronous network, for the batching
    // shape check.
    let mut paxos_sync: Vec<(usize, f64)> = Vec::new();

    for spec in &algos() {
        for net in &networks(smoke) {
            for &clients in client_counts {
                for &cap in caps {
                    let row = run_one(
                        &mut writer,
                        &mut table,
                        spec,
                        net,
                        &NO_FAULTS,
                        WorkloadKind::Closed { outstanding: 4 },
                        clients,
                        cap,
                        target,
                        max_rounds,
                    );
                    if spec.name == "Paxos" && net.label == "AlwaysGood" {
                        paxos_sync.push((cap, row.cmds_per_round));
                    }
                }
            }
        }
    }

    // Fault mixes: a mid-broadcast crash for the benign entry, a mute
    // Byzantine for the Byzantine entries.
    let crash_mix = Faults {
        label: "crash p2@r10",
        crashes: || CrashPlan::none().with(ProcessId::new(2), CrashAt::mid_send(Round::new(10), 1)),
        byzantine: &[],
    };
    let byz_mix_pbft = Faults {
        label: "1 byz mute",
        crashes: CrashPlan::none,
        byzantine: &[3],
    };
    let byz_mix_mqb = Faults {
        label: "1 byz mute",
        crashes: CrashPlan::none,
        byzantine: &[4],
    };
    let all = algos();
    for (spec, faults) in [
        (&all[0], &crash_mix),
        (&all[1], &byz_mix_pbft),
        (&all[2], &byz_mix_mqb),
    ] {
        for net in &networks(smoke) {
            run_one(
                &mut writer,
                &mut table,
                spec,
                net,
                faults,
                WorkloadKind::Closed { outstanding: 4 },
                client_counts[0],
                8,
                target,
                max_rounds,
            );
        }
    }

    // Open-loop Poisson arrivals (full sweep only): rate below and near the
    // unbatched service capacity.
    if !smoke {
        for spec in &all {
            for &rate in &[1.0f64, 4.0] {
                run_one(
                    &mut writer,
                    &mut table,
                    spec,
                    &networks(false)[0],
                    &NO_FAULTS,
                    WorkloadKind::Poisson { rate },
                    8,
                    16,
                    target,
                    max_rounds,
                );
            }
        }
    }

    table.print();
    writer.write(&out_path).expect("write results");
    println!("\n{} rows → {}", writer.rows().len(), out_path);

    // Shape check: batching amortizes the per-slot round cost.
    let cap1 = paxos_sync
        .iter()
        .find(|(c, _)| *c == 1)
        .expect("cap-1 paxos row")
        .1;
    let best = paxos_sync
        .iter()
        .filter(|(c, _)| *c >= 8)
        .map(|(_, t)| *t)
        .fold(0.0f64, f64::max);
    assert!(
        best >= 4.0 * cap1,
        "batching (cap ≥ 8: {best:.2} cmds/round) must commit ≥ 4× more \
         commands per round than cap 1 ({cap1:.2}) on synchronous Paxos"
    );
    println!(
        "Shape check: synchronous Paxos, cap ≥ 8 commits {:.1}× more commands \
         per round than cap 1.",
        best / cap1
    );
}
