//! Experiment **E2** — decision latency in rounds (§3.1 / Table 1's
//! rounds-per-phase column, exercised end to end).
//!
//! Three series:
//!
//! 1. fault-free latency per class over a range of n — class 1 decides in
//!    2 rounds, classes 2–3 in 3 (one good phase);
//! 2. latency under a GST: the first good phase after stabilization
//!    decides, so latency ≈ GST + one phase (modulo phase alignment);
//! 3. latency with crash faults before GST (benign models).
//!
//! Run: `cargo run -p gencon-bench --bin exp_latency`

use gencon_algos::AlgorithmSpec;
use gencon_bench::{run_scenario, run_synchronous, Table};
use gencon_core::{ClassId, Params};
use gencon_load::LatencyHistogram;
use gencon_sim::{CrashAt, CrashPlan, Gst};
use gencon_types::{Config, ProcessId, Round};

fn spec(class: ClassId, n: usize, b: usize) -> AlgorithmSpec<u64> {
    let cfg = Config::byzantine(n, b).expect("config");
    AlgorithmSpec {
        name: "generic",
        class,
        model: "Byzantine",
        bound: class.n_bound(),
        params: Params::for_class(class, cfg).expect("params"),
    }
}

fn main() {
    println!("# E2 — Decision latency in rounds\n");

    println!("## Fault-free, synchronous from round 1 (b = 1)\n");
    let mut t = Table::new(["class", "n", "rounds to last decision", "phases"]);
    for class in ClassId::ALL {
        for extra in [0usize, 2, 6, 12] {
            let n = class.min_n(0, 1) + extra;
            let s = spec(class, n, 1);
            let inits: Vec<u64> = (0..n as u64).collect();
            let out = run_synchronous(&s, &inits, 30);
            assert!(out.all_correct_decided);
            let rounds = out.last_decision_round().unwrap().number();
            assert_eq!(
                rounds as usize,
                class.rounds_per_phase(),
                "one good phase suffices"
            );
            t.row([
                class.to_string(),
                n.to_string(),
                rounds.to_string(),
                "1".to_string(),
            ]);
        }
    }
    t.print();

    println!("\n## With a global stabilization time (class 3, n = 4, b = 1, loss 0.7)\n");
    println!("Latency beyond GST, percentiles over 24 seeds per GST (rounds):\n");
    let mut t2 = Table::new(["GST round", "p50", "p90", "p99", "max", "mean"]);
    let s3 = spec(ClassId::Three, 4, 1);
    for gst in [1u64, 4, 7, 13] {
        // Per-(GST, seed) latencies aggregate into one mergeable histogram
        // per GST — the same log-bucketed `gencon-load` histogram the SMR
        // load harness uses, replacing per-seed ad-hoc arithmetic.
        let mut hist = LatencyHistogram::new();
        for seed in 1u64..=24 {
            let out = run_scenario(
                &s3,
                &[1, 2, 3, 4],
                Gst::new(gst, 0.7, seed),
                CrashPlan::none(),
                Vec::new(),
                gst + 40,
            );
            assert!(out.all_correct_decided, "gst {gst} seed {seed}");
            let decided = out.last_decision_round().unwrap().number();
            // Rounds past stabilization until the last correct process
            // decided (pre-GST decisions count as 1: the lucky case).
            hist.record(decided.saturating_sub(gst).max(1));
        }
        assert!(
            hist.max() <= 5,
            "gst {gst}: worst decision {} rounds after GST should land in \
             the first whole phase after stabilization",
            hist.max()
        );
        t2.row([
            gst.to_string(),
            hist.p50().to_string(),
            hist.p90().to_string(),
            hist.p99().to_string(),
            hist.max().to_string(),
            format!("{:.1}", hist.mean()),
        ]);
    }
    t2.print();

    println!("\n## Benign classes with a crash fault (f = 1, mid-broadcast, round 2)\n");
    let mut t3 = Table::new(["class", "n", "crashed", "decided at round"]);
    for class in ClassId::ALL {
        let n = class.min_n(1, 0);
        let cfg = Config::benign(n, 1).expect("config");
        let s = AlgorithmSpec {
            name: "generic",
            class,
            model: "benign",
            bound: class.n_bound(),
            params: Params::for_class(class, cfg).expect("params"),
        };
        let inits: Vec<u64> = (0..n as u64).collect();
        let crash = CrashPlan::none().with(
            ProcessId::new(n - 1),
            CrashAt::mid_send(Round::new(2), n / 2),
        );
        let out = run_scenario(&s, &inits, gencon_sim::AlwaysGood, crash, Vec::new(), 40);
        assert!(out.all_correct_decided, "{class}: crash must not block");
        t3.row([
            class.to_string(),
            n.to_string(),
            format!("p{} @ r2", n - 1),
            out.last_decision_round().unwrap().number().to_string(),
        ]);
    }
    t3.print();

    println!("\nShape check vs the paper: class 1 = 2 rounds/phase, classes 2–3 = 3;");
    println!("a good phase decides immediately; crashes cost at most extra phases.");
}
