//! Experiment **A1** — ablation of the §3.1 optimizations.
//!
//! 1. **Constant-selector optimization**: when `Selector(p, φ)` is the same
//!    everywhere, the selector/validator sets need not be exchanged
//!    (lines 7/15/19/21 simplify). Measured: selection-message bytes with
//!    and without the optimization.
//! 2. **Skip-first-selection optimization**: phase 1 starts directly at its
//!    validation round with `select_p = init_p`. Measured: rounds to
//!    decision (one fewer).
//!
//! Run: `cargo run -p gencon-bench --bin exp_ablation`

use gencon_algos::{mqb, pbft};
use gencon_bench::{run_synchronous, Table};
use gencon_core::{History, SelectionMsg};
use gencon_net::Wire;
use gencon_types::{Phase, ProcessSet};

fn main() {
    println!("# A1 — Ablation of the §3.1 optimizations\n");

    println!("## Constant-selector: transmitted selection-message bytes (MQB, n = 5)\n");
    let mut t = Table::new(["variant", "selector set sent", "bytes/selection msg"]);
    for (label, constant) in [
        ("optimized (constant Π)", true),
        ("general (set exchanged)", false),
    ] {
        let msg = SelectionMsg {
            vote: 7u64,
            ts: Phase::new(1),
            history: History::new(),
            selector: if constant {
                ProcessSet::new()
            } else {
                ProcessSet::range(0, 5)
            },
        };
        t.row([
            label.to_string(),
            (!constant).to_string(),
            msg.encoded_len().to_string(),
        ]);
    }
    t.print();

    println!("\n## Constant-selector: end-to-end messages per decision (MQB, n = 5)\n");
    let mut t1 = Table::new(["variant", "decided @ round", "messages sent"]);
    for constant in [true, false] {
        let mut spec = mqb::<u64>(5, 1).unwrap();
        spec.params.constant_selector = constant;
        let out = run_synchronous(&spec, &[1, 2, 3, 4, 5], 20);
        assert!(out.all_correct_decided, "constant={constant}");
        t1.row([
            if constant { "optimized" } else { "general" }.to_string(),
            out.last_decision_round().unwrap().number().to_string(),
            out.messages_sent.to_string(),
        ]);
    }
    t1.print();
    println!("\n(message *count* matches; the savings are per-message bytes and the");
    println!("suppressed lines 15/21 bookkeeping)");

    println!("\n## Skip-first-selection: rounds to decision (PBFT, n = 4)\n");
    let mut t2 = Table::new(["variant", "rounds/phase-1", "decided @ round"]);
    for skip in [false, true] {
        let mut spec = pbft::<u64>(4, 1).unwrap();
        spec.params.skip_first_selection = skip;
        let out = run_synchronous(&spec, &[9, 9, 9, 9], 20);
        assert!(out.all_correct_decided, "skip={skip}");
        let decided = out.last_decision_round().unwrap().number();
        assert_eq!(decided, if skip { 2 } else { 3 });
        t2.row([
            if skip { "optimized (skip)" } else { "general" }.to_string(),
            if skip { "2" } else { "3" }.to_string(),
            decided.to_string(),
        ]);
    }
    t2.print();

    println!("\n## Skip-first-selection under divergent inputs (safety check)\n");
    // The optimization must stay safe when initial values differ: phase 1
    // usually fails to validate, and phase 2 runs a full selection.
    let mut t3 = Table::new(["variant", "inits", "decided @ round", "agreement"]);
    for skip in [false, true] {
        let mut spec = pbft::<u64>(4, 1).unwrap();
        spec.params.skip_first_selection = skip;
        let out = run_synchronous(&spec, &[1, 2, 3, 4], 20);
        assert!(out.all_correct_decided);
        let agreement =
            gencon_sim::properties::agreement(&out, |d: &gencon_core::Decision<u64>| &d.value);
        assert!(agreement);
        t3.row([
            if skip { "optimized (skip)" } else { "general" }.to_string(),
            "1,2,3,4".to_string(),
            out.last_decision_round().unwrap().number().to_string(),
            "holds".to_string(),
        ]);
    }
    t3.print();

    println!("\nShape check vs §3.1: both optimizations preserve correctness; the");
    println!("first-phase skip saves one round on unanimous inputs, the constant-");
    println!("selector variant shrinks every selection/validation message.");
}
