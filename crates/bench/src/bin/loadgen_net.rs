//! Experiment **E9** — SMR throughput/latency over real transports vs. the
//! lock-step simulator (`BENCH_net.json`).
//!
//! Runs the same algorithms, closed-loop clients, batching and latency
//! histogram as E8 (`loadgen`), but through the `gencon-server` event loop
//! over real transports: in-process channels (protocol cost without the
//! kernel) and a localhost TCP mesh (the full wire path). Each row reports
//! wall-clock commands/sec and submit→apply latency percentiles in
//! microseconds, **plus the same configuration's simulated commands/round**
//! — so the sim-vs-wire gap is visible in one file.
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen_net`
//! Smoke (CI): `cargo run --release -p gencon_bench --bin loadgen_net -- --smoke`
//! Output path: `--out <path>` (default `BENCH_net.json`).
//!
//! Asserted shape checks: every configuration commits its target with
//! agreeing logs, and each 4-node cluster (Paxos and PBFT × {Channel,
//! Tcp}) commits ≥ 1000 client commands — the repo's wire-level
//! acceptance bar.

use gencon_algos::AlgorithmSpec;
use gencon_bench::Table;
use gencon_load::{
    run_load, run_net_load, LoadProfile, NetLoadProfile, NetRow, NetTransportKind, ResultsWriter,
    WorkloadKind,
};
use gencon_sim::{AlwaysGood, CrashPlan};
use gencon_smr::Batch;
use gencon_types::ProcessId;

fn algos() -> Vec<AlgorithmSpec<Batch<u64>>> {
    vec![
        // Benign class 2 at n = 4 (tolerates one crash).
        gencon_algos::paxos::<Batch<u64>>(4, 1, ProcessId::new(0)).expect("paxos"),
        // Byzantine class 3 at its minimal system.
        gencon_algos::pbft::<Batch<u64>>(4, 1).expect("pbft"),
    ]
}

/// The same configuration through the lock-step simulator, for the
/// `sim_cmds_per_round` column.
fn sim_cmds_per_round(
    spec: &AlgorithmSpec<Batch<u64>>,
    clients: u16,
    cap: usize,
    target: usize,
) -> f64 {
    let profile = LoadProfile {
        clients_per_replica: clients,
        workload: WorkloadKind::Closed { outstanding: 4 },
        batch_cap: cap,
        window: 4,
        commit_target: target,
        max_rounds: 200_000,
        seed: 42,
    };
    let report = run_load(&spec.params, AlwaysGood, CrashPlan::none(), &[], &profile);
    assert!(
        report.all_decided && report.logs_agree,
        "{}: simulated reference run must converge",
        spec.name
    );
    report.cmds_per_round()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    println!(
        "# E9 — SMR over real transports vs. simulator ({})\n",
        if smoke { "smoke sweep" } else { "full sweep" }
    );

    let mut writer: ResultsWriter<NetRow> = ResultsWriter::new();
    let mut table = Table::new([
        "algo",
        "transport",
        "clients",
        "cap",
        "cmds",
        "wall ms",
        "cmds/sec",
        "p50 µs",
        "p99 µs",
        "sim cmds/round",
    ]);

    // ≥ 1000 committed client commands per cluster is the acceptance bar.
    let target = 1200usize;
    let clients: u16 = 4;
    let caps: &[usize] = if smoke { &[64] } else { &[8, 64] };
    let transports = [NetTransportKind::Channel, NetTransportKind::Tcp];

    for spec in &algos() {
        for &cap in caps {
            let sim_rate = sim_cmds_per_round(spec, clients, cap, target);
            for &transport in &transports {
                let profile = NetLoadProfile::localhost(
                    WorkloadKind::Closed { outstanding: 4 },
                    clients,
                    cap,
                    target,
                    transport,
                );
                let report = run_net_load(&spec.params, &profile);
                assert!(
                    report.logs_agree,
                    "{} over {}: applied logs diverged",
                    spec.name,
                    transport.label()
                );
                assert!(
                    report.all_reached_target,
                    "{} over {}: stalled at {} of {target} commands",
                    spec.name,
                    transport.label(),
                    report.committed_cmds
                );
                assert!(
                    report.committed_cmds >= 1000,
                    "{} over {}: {} < 1000 committed client commands",
                    spec.name,
                    transport.label(),
                    report.committed_cmds
                );
                let n = spec.params.cfg.n();
                let row = NetRow {
                    algo: spec.name.to_string(),
                    class: spec.class.to_string(),
                    n,
                    b: spec.params.cfg.b(),
                    f: spec.params.cfg.f(),
                    transport: transport.label().to_string(),
                    workload: profile.workload.label(),
                    clients: clients as usize * n,
                    batch_cap: cap,
                    committed_cmds: report.committed_cmds,
                    rounds: report.rounds,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    cmds_per_sec: report.cmds_per_sec(),
                    p50_us: report.hist.p50(),
                    p90_us: report.hist.p90(),
                    p99_us: report.hist.p99(),
                    p999_us: report.hist.p999(),
                    sim_cmds_per_round: sim_rate,
                };
                table.row([
                    row.algo.clone(),
                    row.transport.clone(),
                    row.clients.to_string(),
                    row.batch_cap.to_string(),
                    row.committed_cmds.to_string(),
                    format!("{:.1}", row.wall_ms),
                    format!("{:.0}", row.cmds_per_sec),
                    row.p50_us.to_string(),
                    row.p99_us.to_string(),
                    format!("{:.1}", row.sim_cmds_per_round),
                ]);
                writer.push(row);
            }
        }
    }

    table.print();
    writer.write(&out_path).expect("write results");
    println!("\n{} rows → {}", writer.rows().len(), out_path);
    println!(
        "Each cluster committed ≥ 1000 client commands with agreeing logs \
         over both Channel and Tcp meshes."
    );
}
