//! Experiment **E3** — the §5/§6 catalog: every named algorithm decides
//! with its published parameters, at its minimal system size and larger.
//!
//! Run: `cargo run -p gencon-bench --bin exp_catalog`

use gencon_adversary::{AdversaryCtx, Equivocator, Silent};
use gencon_algos::{
    ben_or_benign, ben_or_byzantine, chandra_toueg, fab_paxos, mqb, one_third_rule, paxos,
    paxos_rotating, pbft, AlgorithmSpec,
};
use gencon_bench::{run_scenario, BoxedAdversary, Table};
use gencon_core::Decision;
use gencon_sim::{properties, AlwaysGood, CrashAt, CrashPlan, RandomSubset};
use gencon_types::{ProcessId, Round, Value};

enum Fault {
    None,
    Crash(usize),
    ByzSilent(usize),
    ByzEquivocate(usize),
}

fn run_case<V: Value + From<u8>>(
    spec: &AlgorithmSpec<V>,
    fault: &Fault,
    t: &mut Table,
    randomized: bool,
) {
    let n = spec.params.cfg.n();
    let inits: Vec<V> = (0..n).map(|i| V::from((i % 2) as u8)).collect();
    let mut crashes = CrashPlan::none();
    let mut advs: Vec<BoxedAdversary<V>> = Vec::new();
    let fault_desc = match fault {
        Fault::None => "none".to_string(),
        Fault::Crash(i) => {
            crashes = crashes.with(ProcessId::new(*i), CrashAt::mid_send(Round::new(2), n / 2));
            format!("crash p{i}@r2")
        }
        Fault::ByzSilent(i) => {
            advs.push(Box::new(Silent::<V>::new(ProcessId::new(*i))));
            format!("byz-silent p{i}")
        }
        Fault::ByzEquivocate(i) => {
            let ctx = AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
            advs.push(Box::new(Equivocator::new(
                ProcessId::new(*i),
                ctx,
                V::from(0),
                V::from(1),
            )));
            format!("byz-equivocate p{i}")
        }
    };

    let out = if randomized {
        let keep = spec.params.cfg.correct_minimum();
        run_scenario(
            spec,
            &inits,
            RandomSubset::new(keep, 42),
            crashes,
            advs,
            600,
        )
    } else {
        run_scenario(spec, &inits, AlwaysGood, crashes, advs, 80)
    };
    let agreement = properties::agreement(&out, |d: &Decision<V>| &d.value);
    assert!(agreement, "{}: agreement", spec.name);
    assert!(out.all_correct_decided, "{}: termination", spec.name);
    t.row([
        spec.name.to_string(),
        spec.class.to_string(),
        spec.bound.to_string(),
        n.to_string(),
        fault_desc,
        out.last_decision_round().unwrap().number().to_string(),
    ]);
}

fn main() {
    println!("# E3 — The algorithm catalog, end to end\n");
    let mut t = Table::new([
        "algorithm",
        "class",
        "bound",
        "n",
        "fault",
        "decided @ round",
    ]);

    // Benign algorithms: fault-free + crash.
    for (s, big) in [
        (
            one_third_rule::<u64>(4, 1).unwrap(),
            one_third_rule::<u64>(10, 3).unwrap(),
        ),
        (
            paxos::<u64>(3, 1, ProcessId::new(0)).unwrap(),
            paxos::<u64>(9, 4, ProcessId::new(0)).unwrap(),
        ),
        (
            paxos_rotating::<u64>(3, 1).unwrap(),
            paxos_rotating::<u64>(7, 3).unwrap(),
        ),
        (
            chandra_toueg::<u64>(3, 1).unwrap(),
            chandra_toueg::<u64>(9, 4).unwrap(),
        ),
    ] {
        run_case(&s, &Fault::None, &mut t, false);
        let crash_victim = s.params.cfg.n() - 1;
        run_case(&s, &Fault::Crash(crash_victim), &mut t, false);
        run_case(&big, &Fault::None, &mut t, false);
    }

    // Byzantine algorithms: fault-free + silent + equivocating adversary.
    for (s, big) in [
        (
            fab_paxos::<u64>(6, 1).unwrap(),
            fab_paxos::<u64>(11, 2).unwrap(),
        ),
        (mqb::<u64>(5, 1).unwrap(), mqb::<u64>(9, 2).unwrap()),
        (pbft::<u64>(4, 1).unwrap(), pbft::<u64>(7, 2).unwrap()),
    ] {
        run_case(&s, &Fault::None, &mut t, false);
        let byz = s.params.cfg.n() - 1;
        run_case(&s, &Fault::ByzSilent(byz), &mut t, false);
        run_case(&s, &Fault::ByzEquivocate(byz), &mut t, false);
        run_case(
            &big,
            &Fault::ByzSilent(big.params.cfg.n() - 1),
            &mut t,
            false,
        );
    }

    // Randomized algorithms under Prel-only delivery.
    let bo = ben_or_benign::<u64>(3, 1, [0, 1], 7).unwrap();
    run_case(&bo, &Fault::None, &mut t, true);
    let bob = ben_or_byzantine::<u64>(5, 1, [0, 1], 7).unwrap();
    run_case(&bob, &Fault::ByzSilent(4), &mut t, true);

    t.print();
    println!("\nAll catalog algorithms decide with agreement under their published");
    println!("fault models — matching the §5/§6 claims.");
}
