//! Experiment **E5** — the cost of implementing `Pcons` out of `Pgood`
//! (§2.2): the authenticated coordinator implementation spends 2 rounds per
//! selection round, the signature-free echo implementation 3; the "magic"
//! (simulator-enforced) predicate spends 0 extra.
//!
//! We run PBFT (n = 4, b = 1) and MQB (n = 5, b = 1) over each stack and
//! report the outer rounds to decision.
//!
//! Run: `cargo run -p gencon-bench --bin exp_pcons`

use gencon_algos::{mqb, pbft, AlgorithmSpec};
use gencon_bench::{run_synchronous, Table};
use gencon_core::Decision;
use gencon_crypto::KeyStore;
use gencon_pcons::{PconsMode, PconsStack};
use gencon_sim::{properties, AlwaysGood, Simulation};
use gencon_types::Value;

/// Runs the spec with every process wrapped in a Pcons stack of `mode`.
fn run_stacked<V: Value + std::hash::Hash>(
    spec: &AlgorithmSpec<V>,
    inits: &[V],
    mode: PconsMode,
) -> (u64, bool) {
    let cfg = spec.params.cfg;
    let n = cfg.n();
    let stores = KeyStore::dealer(n, 99);
    let engines = spec.spawn(inits).expect("fleet");
    let mut builder = Simulation::builder(cfg);
    for (i, engine) in engines.into_iter().enumerate() {
        match mode {
            PconsMode::CoordinatedAuth => {
                builder = builder.honest(PconsStack::coordinated_auth(
                    engine,
                    stores[i].clone(),
                    cfg.b(),
                ));
            }
            PconsMode::EchoBroadcast => {
                builder = builder.honest(PconsStack::echo_broadcast(engine, n, cfg.b()));
            }
        }
    }
    let mut sim = builder
        .network(AlwaysGood)
        // The stack *implements* Pcons; the simulator must not also
        // enforce it magically.
        .enforce_predicates(false)
        .build()
        .expect("builds");
    let out = sim.run(60);
    assert!(
        properties::agreement(&out, |d: &Decision<V>| &d.value),
        "agreement over the {mode:?} stack"
    );
    (
        out.last_decision_round().map(|r| r.number()).unwrap_or(0),
        out.all_correct_decided,
    )
}

fn main() {
    println!("# E5 — Cost of Pcons implementations (§2.2)\n");
    let mut t = Table::new([
        "algorithm",
        "n",
        "Pcons implementation",
        "extra rounds / selection",
        "rounds to decide",
    ]);

    let pbft_spec = pbft::<u64>(4, 1).unwrap();
    let mqb_spec = mqb::<u64>(5, 1).unwrap();

    for (name, spec) in [("PBFT", &pbft_spec), ("MQB", &mqb_spec)] {
        let n = spec.params.cfg.n();
        let inits: Vec<u64> = (0..n as u64).collect();

        // Baseline: simulator-enforced ("magic") Pcons — 0 extra rounds.
        let base = run_synchronous(spec, &inits, 30);
        assert!(base.all_correct_decided);
        let base_rounds = base.last_decision_round().unwrap().number();
        t.row([
            name.to_string(),
            n.to_string(),
            "magic (model-level)".to_string(),
            "0".to_string(),
            base_rounds.to_string(),
        ]);

        for mode in [PconsMode::CoordinatedAuth, PconsMode::EchoBroadcast] {
            let (rounds, decided) = run_stacked(spec, &inits, mode);
            assert!(decided, "{name} over {mode:?} must decide");
            let label = match mode {
                PconsMode::CoordinatedAuth => "coordinator + authenticators [17]",
                PconsMode::EchoBroadcast => "leader-free echo, no signatures [2]",
            };
            t.row([
                name.to_string(),
                n.to_string(),
                label.to_string(),
                (mode.micro_rounds() - 1).to_string(),
                rounds.to_string(),
            ]);
            // The expansion affects selection rounds only: one selection
            // per phase, so the first-phase decision lands at
            // base + (micro_rounds − 1).
            assert_eq!(
                rounds,
                base_rounds + (mode.micro_rounds() as u64 - 1),
                "{name}/{mode:?}: expansion arithmetic"
            );
        }
    }
    t.print();

    println!("\nShape check vs §2.2: authenticated Byzantine model ⇒ 2-round Pcons;");
    println!("plain Byzantine model ⇒ 3-round Pcons; both preserve agreement and");
    println!("decide in the first phase of a good period.");
}
