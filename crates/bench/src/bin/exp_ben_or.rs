//! Experiment **E4** — randomized consensus (§6): Ben-Or terminates with
//! probability 1 under `Prel`-only delivery, with expected rounds growing
//! as agreement must emerge from independent coins.
//!
//! Series: benign Ben-Or at n ∈ {3, 5, 7, 9} and Byzantine Ben-Or at
//! n ∈ {5, 9, 13}, 40 seeds each, adversarial initial splits (half 0s,
//! half 1s — the hardest input for coin convergence).
//!
//! Run: `cargo run -p gencon-bench --bin exp_ben_or`

use gencon_algos::{ben_or_benign, ben_or_byzantine};
use gencon_bench::{run_scenario, Table};
use gencon_core::Decision;
use gencon_load::LatencyHistogram;
use gencon_sim::{properties, CrashPlan, RandomSubset};

const SEEDS: u64 = 40;
const MAX_ROUNDS: u64 = 3000;

fn series(t: &mut Table, label: &str, n: usize, f: usize, b: usize) {
    let mut rounds = LatencyHistogram::new();
    for seed in 0..SEEDS {
        let spec = if b > 0 {
            ben_or_byzantine::<u64>(n, b, [0, 1], seed).unwrap()
        } else {
            ben_or_benign::<u64>(n, f, [0, 1], seed).unwrap()
        };
        // Hardest split: half zeros, half ones.
        let inits: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        let keep = spec.params.cfg.correct_minimum();
        let out = run_scenario(
            &spec,
            &inits,
            RandomSubset::new(keep, 1000 + seed),
            CrashPlan::none(),
            Vec::new(),
            MAX_ROUNDS,
        );
        assert!(
            properties::agreement(&out, |d: &Decision<u64>| &d.value),
            "{label} n={n} seed={seed}: agreement"
        );
        assert!(
            out.all_correct_decided,
            "{label} n={n} seed={seed}: no termination within {MAX_ROUNDS} rounds"
        );
        rounds.record(out.last_decision_round().unwrap().number());
    }
    t.row([
        label.to_string(),
        n.to_string(),
        format!("{:.1}", rounds.mean()),
        rounds.p50().to_string(),
        rounds.p90().to_string(),
        rounds.max().to_string(),
        format!("{}/{}", rounds.count(), SEEDS),
    ]);
}

fn main() {
    println!("# E4 — Ben-Or randomized consensus under Prel (split inputs)\n");
    let mut t = Table::new([
        "variant",
        "n",
        "mean rounds",
        "p50",
        "p90",
        "max",
        "terminated",
    ]);
    for n in [3usize, 5, 7, 9] {
        series(&mut t, "benign (f = (n-1)/2)", n, (n - 1) / 2, 0);
    }
    for n in [5usize, 9, 13] {
        series(&mut t, "Byzantine (b = (n-1)/4)", n, 0, (n - 1) / 4);
    }
    t.print();

    println!("\nShape check vs §6: termination without any good period (probability-1");
    println!("coin convergence); unanimous inputs would decide in one phase — split");
    println!("inputs need the coin, and expected rounds grow with n.");
}
