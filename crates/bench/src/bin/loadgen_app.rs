//! Experiment **E11** — application-layer snapshot folding and chunked
//! state transfer (`BENCH_app.json`).
//!
//! Two measurements over the `gencon-app` kv state machine:
//!
//! * **growth** — a durable kv node ingests puts cycling a bounded
//!   keyspace while the snapshot policy folds periodically. PR 4
//!   snapshotted the full applied history, so snapshot bytes grew with
//!   the command count and state transfer hard-capped near 1M commands
//!   (`MAX_SNAPSHOT_CMDS`); with application-level folding the snapshot
//!   is the **live state**, so the bytes-per-snapshot curve stays flat —
//!   asserted within 2× first→last — while the full run drives the total
//!   applied count **past the old 1M ceiling**.
//! * **transfer** — a 4-node PBFT cluster loses a node with nothing on
//!   disk; survivors compact far past it; the node restarts empty and
//!   rebuilds purely via `b + 1`-vouched, CRC-chunked, SHA-verified
//!   state transfer. Asserted: the transfer used multiple chunks and all
//!   four kv state hashes agree at the shared command count.
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen_app`
//! Smoke (CI): `cargo run --release -p gencon_bench --bin loadgen_app -- --smoke`
//! Output path: `--out <path>` (default `BENCH_app.json`).

use gencon_bench::Table;
use gencon_load::{
    run_app_growth, run_app_transfer, AppGrowthProfile, AppRow, AppTransferProfile, ResultsWriter,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_app.json".to_string());

    println!(
        "# E11 — snapshot folding + chunked state transfer ({})\n",
        if smoke { "smoke" } else { "full" }
    );

    let mut writer: ResultsWriter<AppRow> = ResultsWriter::new();
    let mut table = Table::new([
        "mode",
        "commands",
        "live keys",
        "snap #1 B",
        "snap last B",
        "ratio",
        "chunks",
        "hashes",
        "cmds/sec",
    ]);

    // --- growth: snapshot bytes vs history length ---
    let growth_profile = if smoke {
        // CI-sized, still far past the point where full-history snapshots
        // would have grown ~60×.
        AppGrowthProfile {
            commands: 300_000,
            ..AppGrowthProfile::default()
        }
    } else {
        // Past the old MAX_SNAPSHOT_CMDS = 2^20 ceiling.
        AppGrowthProfile {
            commands: 1_200_000,
            ..AppGrowthProfile::default()
        }
    };
    let growth = run_app_growth(&growth_profile);
    let ratio = growth.growth_ratio();
    assert!(
        growth.samples.len() >= 4,
        "the snapshot policy must fire repeatedly ({} samples)",
        growth.samples.len()
    );
    assert!(
        ratio < 2.0,
        "snapshot bytes must stay O(live kv state) while history grows: \
         first {} B, last {} B (ratio {ratio:.2}) over {} commands",
        growth.samples.first().map_or(0, |s| s.1),
        growth.samples.last().map_or(0, |s| s.1),
        growth.commands,
    );
    if !smoke {
        assert!(
            growth.commands > 1 << 20,
            "the full run must cross the old 1M-command transfer ceiling"
        );
    }
    let row = AppRow {
        app: "kv".into(),
        mode: "growth".into(),
        commands: growth.commands,
        live_keys: growth.live_keys,
        first_snapshot_bytes: growth.samples.first().map_or(0, |s| s.1),
        last_snapshot_bytes: growth.samples.last().map_or(0, |s| s.1),
        growth_ratio: ratio,
        snapshots: growth.samples.len() as u64,
        chunks_fetched: 0,
        hashes_agree: true,
        cmds_per_sec: growth.cmds_per_sec(),
    };
    table.row([
        row.mode.clone(),
        row.commands.to_string(),
        row.live_keys.to_string(),
        row.first_snapshot_bytes.to_string(),
        row.last_snapshot_bytes.to_string(),
        format!("{:.2}", row.growth_ratio),
        "-".into(),
        "-".into(),
        format!("{:.0}", row.cmds_per_sec),
    ]);
    writer.push(row);

    // --- transfer: wiped node catches up via chunked transfer ---
    let transfer_profile = if smoke {
        AppTransferProfile {
            feed: 150,
            value_bytes: 192,
            snapshot_every: 16,
        }
    } else {
        AppTransferProfile::default()
    };
    let transfer = run_app_transfer(&transfer_profile);
    assert!(transfer.caught_up, "wiped node must reach the target");
    assert!(
        transfer.snapshots_installed >= 1 && transfer.chunks_fetched >= 2,
        "catch-up must run over multiple verified chunks \
         (installed {}, chunks {})",
        transfer.snapshots_installed,
        transfer.chunks_fetched
    );
    assert!(
        transfer.hashes_agree,
        "all four kv state hashes must agree after recovery"
    );
    let row = AppRow {
        app: "kv".into(),
        mode: "transfer".into(),
        commands: transfer.commands,
        live_keys: transfer.commands, // unique keys by construction
        first_snapshot_bytes: transfer.state_bytes,
        last_snapshot_bytes: transfer.state_bytes,
        growth_ratio: 1.0,
        snapshots: transfer.snapshots_installed,
        chunks_fetched: transfer.chunks_fetched,
        hashes_agree: transfer.hashes_agree,
        cmds_per_sec: 0.0,
    };
    table.row([
        row.mode.clone(),
        row.commands.to_string(),
        row.live_keys.to_string(),
        row.first_snapshot_bytes.to_string(),
        row.last_snapshot_bytes.to_string(),
        "-".into(),
        row.chunks_fetched.to_string(),
        row.hashes_agree.to_string(),
        "-".into(),
    ]);
    writer.push(row);

    table.print();
    writer.write(&out_path).expect("write results");
    println!("\n{} rows → {}", writer.rows().len(), out_path);
    println!(
        "Snapshot bytes stayed O(live kv state) (ratio {ratio:.2}) while history grew, and a \
         wiped node rebuilt via {} verified chunks.",
        transfer.chunks_fetched
    );
}
