//! Experiment **E7** — §5.1's improvement claim, checked exhaustively:
//!
//! > "whenever some value is selected by Algorithm 5 (original
//! > OneThirdRule), then some value is also selected by Algorithm 2; the
//! > opposite is not true."
//!
//! For n ∈ {4, 7} we enumerate all vote multisets over a 3-value domain and
//! all reception counts, and compare the original selection rule against
//! the instantiated FLV (Algorithm 2 at `TD = ⌈(2n+1)/3⌉`).
//!
//! Run: `cargo run -p gencon-bench --bin exp_otr`

use gencon_algos::reference::OriginalOneThirdRule;
use gencon_bench::Table;
use gencon_core::{Class1Flv, Flv, FlvContext, FlvOutcome, History, SelectionMsg};
use gencon_types::{Config, Phase, ProcessSet};

fn msg(vote: u64) -> SelectionMsg<u64> {
    SelectionMsg {
        vote,
        ts: Phase::ZERO,
        history: History::new(),
        selector: ProcessSet::new(),
    }
}

/// Enumerates all multisets of `len` votes over `domain` values.
fn multisets(len: usize, domain: u64) -> Vec<Vec<u64>> {
    fn rec(len: usize, min: u64, domain: u64, cur: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if len == 0 {
            out.push(cur.clone());
            return;
        }
        for v in min..domain {
            cur.push(v);
            rec(len - 1, v, domain, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(len, 0, domain, &mut Vec::new(), &mut out);
    out
}

fn main() {
    println!("# E7 — OneThirdRule: original (Algorithm 5) vs instantiation (Algorithm 2)\n");
    let mut t = Table::new([
        "n",
        "TD",
        "inputs checked",
        "both select",
        "only Alg2 selects",
        "only Alg5 selects",
    ]);

    for n in [4usize, 7] {
        let f = (n - 1) / 3;
        let cfg = Config::benign(n, f).expect("n > 3f");
        let td = (2 * n + 1).div_ceil(3);
        let ctx = FlvContext {
            cfg,
            td,
            phase: Phase::new(2),
        };
        let flv = Class1Flv::new();

        let (mut both, mut only2, mut only5, mut checked) = (0u64, 0u64, 0u64, 0u64);
        for len in 0..=n {
            for votes in multisets(len, 3) {
                checked += 1;
                let alg5 = OriginalOneThirdRule::selection_rule(n, &votes);
                let msgs: Vec<SelectionMsg<u64>> = votes.iter().map(|&v| msg(v)).collect();
                let refs: Vec<&SelectionMsg<u64>> = msgs.iter().collect();
                let alg2 = flv.evaluate(&ctx, &refs);
                let alg2_selects = !matches!(alg2, FlvOutcome::NoInfo);
                match (alg5.is_some(), alg2_selects) {
                    (true, true) => both += 1,
                    (false, true) => only2 += 1,
                    (true, false) => only5 += 1,
                    (false, false) => {}
                }
                assert_eq!(
                    only5, 0,
                    "claim violated at n={n}, votes {votes:?}: Alg5 selected {alg5:?} \
                     but Alg2 returned null"
                );
            }
        }
        assert!(only2 > 0, "the improvement must be strict");
        t.row([
            n.to_string(),
            td.to_string(),
            checked.to_string(),
            both.to_string(),
            only2.to_string(),
            only5.to_string(),
        ]);
    }
    t.print();

    println!("\nExample (n = 4): two identical votes ⟨5, 5⟩ —");
    let cfg = Config::benign(4, 1).unwrap();
    let ctx = FlvContext {
        cfg,
        td: 3,
        phase: Phase::new(2),
    };
    let msgs = [msg(5), msg(5)];
    let refs: Vec<&SelectionMsg<u64>> = msgs.iter().collect();
    println!(
        "  Algorithm 5: {:?} (needs > 2n/3 = 2.67 messages)",
        OriginalOneThirdRule::selection_rule(4, &[5u64, 5])
    );
    println!(
        "  Algorithm 2: {:?} (count 2 > n − TD = 1 suffices)",
        Class1Flv::new().evaluate(&ctx, &refs)
    );
    println!("\n§5.1 verified: the instantiation selects in strictly more situations,");
    println!("never fewer — the generic construction is a (small) improvement.");
}
