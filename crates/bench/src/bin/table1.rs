//! Regenerates **Table 1** of the paper: the three classes of consensus
//! algorithms, with both the analytical columns (FLAG, TD bound, n bound,
//! process state, rounds per phase, examples) and *measured* evidence from
//! live runs (actual rounds to decide in one good phase, actual transmitted
//! state fields per class).
//!
//! Run: `cargo run -p gencon-bench --bin table1`

use gencon_bench::{run_synchronous, Table};
use gencon_core::{ClassId, Params, StateProfile};
use gencon_types::Config;

fn profile_str(p: StateProfile) -> &'static str {
    match p {
        StateProfile::VoteOnly => "(vote)",
        StateProfile::VoteTs => "(vote, ts)",
        StateProfile::Full => "(vote, ts, history)",
    }
}

fn main() {
    println!("# Table 1 — The three classes of consensus algorithms\n");

    let mut t = Table::new([
        "class",
        "FLAG",
        "TD",
        "n",
        "state",
        "rounds/phase",
        "examples",
        "measured rounds (b=1,f=0)",
        "measured n_min ok",
    ]);

    for class in ClassId::ALL {
        // Byzantine measurement point: f = 0, b = 1 at the class minimum n.
        let n = class.min_n(0, 1);
        let cfg = Config::byzantine(n, 1).expect("valid config");
        let params = Params::<u64>::for_class(class, cfg).expect("class params");
        let spec = gencon_algos::AlgorithmSpec {
            name: "generic",
            class,
            model: "Byzantine",
            bound: class.n_bound(),
            params,
        };
        let inits: Vec<u64> = vec![7; n];
        let out = run_synchronous(&spec, &inits, 20);
        assert!(out.all_correct_decided, "{class} must decide at min n");
        let measured_rounds = out.last_decision_round().expect("decided").number();
        assert_eq!(
            measured_rounds as usize,
            class.rounds_per_phase(),
            "{class}: a good phase decides within one phase"
        );

        // One below the class minimum must be unconfigurable.
        let below = Config::byzantine(n - 1, 1);
        let below_ok = match below {
            Ok(cfg_below) => Params::<u64>::for_class(class, cfg_below).is_ok(),
            Err(_) => false,
        };
        assert!(!below_ok, "{class}: n below the bound must be rejected");

        t.row([
            class.to_string(),
            class.flag().to_string(),
            class.td_bound().trim_start_matches("TD > ").to_string(),
            class.n_bound().trim_start_matches("n > ").to_string(),
            profile_str(class.state_profile()).to_string(),
            class.rounds_per_phase().to_string(),
            class.examples().join(", "),
            format!("{measured_rounds} (n={n})"),
            "rejected below bound".to_string(),
        ]);
    }
    t.print();

    println!("\nPaper row reference (Table 1):");
    println!("  1  *  > (n+3b+f)/2  n > 5b+3f  (vote)              2  OneThirdRule, FaB Paxos");
    println!("  2  φ  > 3b+f        n > 4b+2f  (vote, ts)          3  Paxos, CT, MQB (new)");
    println!("  3  φ  > 2b+f        n > 3b+2f  (vote, ts, history) 3  (Paxos, CT), PBFT");
}
