//! Experiment **E10** — durable vs. in-memory SMR ack throughput/latency
//! (`BENCH_store.json`).
//!
//! Runs the same closed-loop clients and batching replicas as E9, but
//! with `gencon-store` in the loop: each durable node writes every
//! committed batch to a CRC-framed file WAL (group-commit fsync),
//! snapshots + compacts periodically, and acks a command only once its
//! slot is durable. Three modes per algorithm:
//!
//! * `memory` — the PR-3 baseline (ack at apply);
//! * `durable(fast-ack)` — WAL + snapshots running, acks at apply
//!   (persistence cost without the ack-latency cost);
//! * `durable(durable-ack)` — acks wait for the durable watermark (what
//!   a client of a real durable cluster observes).
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen_store`
//! Smoke (CI): `cargo run --release -p gencon_bench --bin loadgen_store -- --smoke`
//! Output path: `--out <path>` (default `BENCH_store.json`).
//!
//! **E12 — per-stage breakdown.** Every configuration attaches a
//! per-stage metrics registry to the measurement replica (node 0), so
//! each row also carries ingest frames, the order-stage round-latency
//! median and the persist-stage fsync-latency median plus stall count —
//! the decomposition of where a durable ack spends its time now that the
//! fsync runs on a dedicated persist thread off the ordering path.
//! `--metrics-file <path>` additionally dumps the raw registry JSON of
//! the last durable-ack configuration.
//!
//! **E13 — per-slot spans.** Every configuration also attaches a flight
//! recorder to node 0 and assembles its events into per-slot latency
//! breakdowns: `span_order_*` (proposed→decided, consensus),
//! `span_persist_wait_*` (decided→persist-enqueue, queue wait) and
//! `span_persist_svc_*` (the group commit that covered the slot) — the
//! stage-by-stage decomposition of where durable-ack's remaining gap to
//! the in-memory baseline lives, per slot rather than per stage
//! aggregate. `--trace-file <path>` additionally writes the last
//! durable-ack configuration's spans as JSON lines.
//!
//! Asserted shape checks: every configuration acks its target with
//! agreeing logs, per-stage counters are non-zero (the pipeline actually
//! ran), and durable-ack throughput stays within 4× of the in-memory
//! baseline — group commit plus the async persist stage is what makes
//! that hold (one fsync covers a whole window of slots and no longer
//! blocks ordering; compare `wal_syncs` to slots).

use std::time::Duration;

use gencon_algos::AlgorithmSpec;
use gencon_bench::Table;
use gencon_load::{run_store_load, ResultsWriter, StoreLoadProfile, StoreMode, StoreRow};
use gencon_metrics::Registry;
use gencon_smr::Batch;
use gencon_types::ProcessId;

fn algos() -> Vec<AlgorithmSpec<Batch<u64>>> {
    vec![
        gencon_algos::paxos::<Batch<u64>>(4, 1, ProcessId::new(0)).expect("paxos"),
        gencon_algos::pbft::<Batch<u64>>(4, 1).expect("pbft"),
    ]
}

fn modes(smoke: bool) -> Vec<StoreMode> {
    let mut m = vec![
        StoreMode::Memory,
        StoreMode::Durable {
            fsync_interval: Duration::from_millis(5),
            fast_ack: false,
        },
    ];
    if !smoke {
        m.push(StoreMode::Durable {
            fsync_interval: Duration::from_millis(5),
            fast_ack: true,
        });
        m.push(StoreMode::Durable {
            fsync_interval: Duration::ZERO,
            fast_ack: false,
        });
    }
    m
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_store.json".to_string());
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics-file")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace-file")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "# E10 — durable vs. in-memory ack throughput ({})\n",
        if smoke { "smoke sweep" } else { "full sweep" }
    );

    let mut writer: ResultsWriter<StoreRow> = ResultsWriter::new();
    let mut table = Table::new([
        "algo", "mode", "cap", "acked", "wall ms", "cmds/sec", "p50 µs", "p99 µs", "ord µs",
        "fs µs", "stalls", "fsyncs", "snaps", "vs mem", "spans", "o-p99", "pw-p99", "ps-p99",
    ]);
    let mut last_durable_registry: Option<Registry> = None;
    let mut last_durable_spans: Vec<gencon_trace::SlotSpan> = Vec::new();

    let target = if smoke { 800usize } else { 1_500 };
    let clients: u16 = 4;
    let caps: &[usize] = if smoke { &[64] } else { &[16, 64] };

    for spec in &algos() {
        for &cap in caps {
            let mut memory_rate: Option<f64> = None;
            for mode in modes(smoke) {
                let reg = Registry::new();
                let rec = gencon_trace::FlightRecorder::new(1 << 16);
                let mut profile = StoreLoadProfile::new(mode, clients, cap, target)
                    .with_metrics(reg.clone())
                    .with_trace(rec.clone());
                profile.snapshot_every = 32;
                let report = run_store_load(&spec.params, &profile);
                let seg = report.segment_stats();
                assert!(
                    report.logs_agree,
                    "{} {}: applied logs diverged",
                    spec.name,
                    mode.label()
                );
                assert!(
                    report.all_reached_target,
                    "{} {}: stalled at {} of {target} acked commands",
                    spec.name,
                    mode.label(),
                    report.acked_cmds
                );
                let rate = report.cmds_per_sec();
                let vs_memory = match (mode, memory_rate) {
                    (StoreMode::Memory, _) => {
                        memory_rate = Some(rate);
                        1.0
                    }
                    (_, Some(base)) if base > 0.0 => rate / base,
                    _ => 1.0,
                };
                // The pipeline actually ran: the order stage counted its
                // rounds, and durable modes appended + fsynced.
                assert!(
                    reg.counter_value("order.rounds").unwrap_or(0) > 0,
                    "{} {}: order stage recorded no rounds",
                    spec.name,
                    mode.label()
                );
                if let StoreMode::Durable { .. } = mode {
                    assert!(
                        reg.counter_value("persist.appended").unwrap_or(0) > 0
                            && reg.counter_value("persist.fsyncs").unwrap_or(0) > 0,
                        "{} {}: persist stage recorded no work",
                        spec.name,
                        mode.label()
                    );
                }
                // E13: the flight recorder produced joinable slot spans,
                // and durable modes decomposed the persistence path.
                assert!(
                    seg.spans > 0,
                    "{} {}: no slot spans assembled from the flight recorder",
                    spec.name,
                    mode.label()
                );
                if let StoreMode::Durable { .. } = mode {
                    assert!(
                        report.spans.iter().any(|s| s.persist_svc_us.is_some()),
                        "{} {}: no span carries a group-commit segment",
                        spec.name,
                        mode.label()
                    );
                }
                if let StoreMode::Durable {
                    fast_ack: false, ..
                } = mode
                {
                    last_durable_registry = Some(reg.clone());
                    last_durable_spans = report.spans.clone();
                    // The acceptance bar: group commit plus the async
                    // persist stage keeps durable acks within 4× of
                    // memory throughput.
                    assert!(
                        vs_memory >= 0.25,
                        "{} cap {cap}: durable-ack at {:.0} cmds/sec is more than 4× \
                         slower than memory ({:.0})",
                        spec.name,
                        rate,
                        memory_rate.unwrap_or(0.0),
                    );
                }
                let n = spec.params.cfg.n();
                let row = StoreRow {
                    algo: spec.name.to_string(),
                    class: spec.class.to_string(),
                    n,
                    b: spec.params.cfg.b(),
                    f: spec.params.cfg.f(),
                    mode: mode.label(),
                    workload: profile.workload.label(),
                    clients: clients as usize * n,
                    batch_cap: cap,
                    committed_cmds: report.committed_cmds,
                    acked_cmds: report.acked_cmds,
                    rounds: report.rounds,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    cmds_per_sec: rate,
                    p50_us: report.hist.p50(),
                    p90_us: report.hist.p90(),
                    p99_us: report.hist.p99(),
                    p999_us: report.hist.p999(),
                    wal_bytes: report.wal_bytes,
                    wal_syncs: report.wal_syncs,
                    snapshots: report.snapshots,
                    vs_memory,
                    ingest_frames: reg.counter_value("ingest.frames").unwrap_or(0),
                    order_us_p50: reg.histogram("order.round_us").p50(),
                    fsync_us_p50: reg.histogram("persist.fsync_us").p50(),
                    persist_stalls: reg.counter_value("persist.stalls").unwrap_or(0),
                    spans: seg.spans,
                    span_order_p50_us: seg.order_p50_us,
                    span_order_p99_us: seg.order_p99_us,
                    span_persist_wait_p50_us: seg.persist_wait_p50_us,
                    span_persist_wait_p99_us: seg.persist_wait_p99_us,
                    span_persist_svc_p50_us: seg.persist_svc_p50_us,
                    span_persist_svc_p99_us: seg.persist_svc_p99_us,
                };
                table.row([
                    row.algo.clone(),
                    row.mode.clone(),
                    row.batch_cap.to_string(),
                    row.acked_cmds.to_string(),
                    format!("{:.1}", row.wall_ms),
                    format!("{:.0}", row.cmds_per_sec),
                    row.p50_us.to_string(),
                    row.p99_us.to_string(),
                    row.order_us_p50.to_string(),
                    row.fsync_us_p50.to_string(),
                    row.persist_stalls.to_string(),
                    row.wal_syncs.to_string(),
                    row.snapshots.to_string(),
                    format!("{:.2}", row.vs_memory),
                    row.spans.to_string(),
                    row.span_order_p99_us.to_string(),
                    row.span_persist_wait_p99_us.to_string(),
                    row.span_persist_svc_p99_us.to_string(),
                ]);
                writer.push(row);
            }
        }
    }

    table.print();
    writer.write(&out_path).expect("write results");
    println!("\n{} rows → {}", writer.rows().len(), out_path);
    if let Some(path) = metrics_path {
        let reg = last_durable_registry.expect("at least one durable-ack configuration ran");
        reg.dump_to_file(&path).expect("write metrics dump");
        println!("per-stage metrics of the last durable-ack run → {path}");
    }
    if let Some(path) = trace_path {
        let mut lines = String::new();
        for span in &last_durable_spans {
            lines.push_str(&span.to_json());
            lines.push('\n');
        }
        std::fs::write(&path, lines).expect("write trace spans");
        println!(
            "{} slot spans of the last durable-ack run → {path}",
            last_durable_spans.len()
        );
    }
    println!(
        "Durable-ack stayed within 4× of in-memory throughput in every \
         configuration (group commit + async persist stage: one fsync \
         covers a window of slots and never blocks ordering)."
    );
}
