//! Experiment **E16** — the relay-path latency penalty, measured
//! (`BENCH_cmd.json`).
//!
//! Runs the two-population command-tracing cluster of
//! [`run_cmd_load`]: a 4-node PBFT mesh whose gateways serve real TCP
//! clients, with the **coordinator population** submitting at node 0
//! and the **relay population** at node 3 (a follower most rounds, so
//! its commands take the relay path into someone else's batch). Every
//! command is traced from `Submitted` to `CmdAcked`; the run reports
//! per-segment p50/p99 for both populations side by side — queue wait,
//! batch wait, order, ack, e2e — which quantifies what relaying
//! actually costs at the tail, a number the paper's round counts
//! cannot produce.
//!
//! The same configuration runs **untraced first**, so the file also
//! carries the tracing overhead itself (`traced_vs_untraced`
//! throughput ratio — the stamps are a handful of atomic ring writes,
//! so this should hover near 1.0).
//!
//! Run: `cargo run --release -p gencon_bench --bin loadgen_cmd`
//! Smoke (CI): `... --bin loadgen_cmd -- --smoke`
//! Output path: `--out <path>` (default `BENCH_cmd.json`) — one JSON
//! object: both populations' segment percentiles, the cluster-stitched
//! pull summary (relay hops with clock uncertainty carried), and the
//! overhead ratio.

use gencon_load::{run_cmd_load, CmdLoadProfile};
use gencon_smr::Batch;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cmd.json".to_string());

    println!(
        "# E16 — command-path tracing: relay-path vs coordinator-path latency ({})\n",
        if smoke { "smoke run" } else { "full run" }
    );

    let spec = gencon_algos::pbft::<Batch<u64>>(4, 1).expect("pbft");
    let count = if smoke { 400 } else { 2_000 };

    let mut untraced_profile = CmdLoadProfile::new(count);
    untraced_profile.traced = false;
    let untraced = run_cmd_load(&spec.params, &untraced_profile);

    let mut profile = CmdLoadProfile::new(count);
    profile.slo_p99_us = 50_000;
    let report = run_cmd_load(&spec.params, &profile);

    let ratio = if untraced.cmds_per_sec() > 0.0 {
        report.cmds_per_sec() / untraced.cmds_per_sec()
    } else {
        0.0
    };
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
    println!(
        "coordinator: {} spans · e2e p50/p99 {}/{} µs · queue wait p50 {} µs",
        report.coordinator.spans,
        opt(report.coordinator.e2e.p50_us),
        opt(report.coordinator.e2e.p99_us),
        opt(report.coordinator.queue_wait.p50_us),
    );
    println!(
        "relay:       {} spans ({} relayed) · e2e p50/p99 {}/{} µs",
        report.relay.spans,
        report.relay.relayed_spans,
        opt(report.relay.e2e.p50_us),
        opt(report.relay.e2e.p99_us),
    );
    if let (Some(c99), Some(r99)) = (report.coordinator.e2e.p99_us, report.relay.e2e.p99_us) {
        println!(
            "relay-path p99 penalty: {:+.1}% ({} µs vs {} µs)",
            (r99 as f64 / c99 as f64 - 1.0) * 100.0,
            r99,
            c99,
        );
    }
    let hops: usize = report.pull.spans.iter().map(|s| s.hops.len()).sum();
    println!(
        "cluster stitch: {} cmds · {} relay hops mapped · traced/untraced throughput {:.3}",
        report.pull.spans.len(),
        hops,
        ratio,
    );

    assert_eq!(
        report.acked,
        count * 2,
        "a population fell short of its ack target"
    );
    assert!(
        report.coordinator.e2e.p50_us.is_some() && report.relay.e2e.p50_us.is_some(),
        "a population produced no e2e spans"
    );
    assert!(
        report.relay.relayed_spans > 0,
        "the follower population never took the relay path"
    );
    assert!(hops > 0, "no relay hop stitched across nodes");
    assert!(
        ratio > 0.5,
        "tracing cost more than half the throughput: {ratio:.3}"
    );

    let body = format!(
        "{{\"coordinator\":{},\"relay\":{},\"stitched\":{},\
         \"traced_cmds_per_sec\":{:.1},\"untraced_cmds_per_sec\":{:.1},\
         \"traced_vs_untraced\":{:.4}}}\n",
        report.coordinator.to_json(),
        report.relay.to_json(),
        report.pull.summary_json(),
        report.cmds_per_sec(),
        untraced.cmds_per_sec(),
        ratio,
    );
    if let Err(e) = std::fs::write(&out_path, body) {
        eprintln!("loadgen_cmd: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nE16 report written to {out_path}");
}
