//! Regenerates **Figure 3** of the paper: the class-3 FLV (Algorithm 4)
//! with history proofs at n = 4, b = 1, f = 0, TD = 3.
//!
//! With TD as low as 2b + 1, votes and timestamps alone cannot expose a
//! Byzantine freshness forgery — the history log supplies the missing
//! proof: a (v, ts) pair counts only when more than b received histories
//! attest it.
//!
//! Run: `cargo run -p gencon-bench --bin fig3_flv_class3`

use gencon_bench::Table;
use gencon_core::flv::properties::{agreement_holds, validity_holds};
use gencon_core::{Class3Flv, Flv, FlvContext, FlvOutcome, History, SelectionMsg};
use gencon_types::{Config, Phase, ProcessSet};

fn msg(vote: u64, ts: u64, history: &[(u64, u64)]) -> SelectionMsg<u64> {
    SelectionMsg {
        vote,
        ts: Phase::new(ts),
        history: history
            .iter()
            .map(|&(v, p)| (v, Phase::new(p)))
            .collect::<History<u64>>(),
        selector: ProcessSet::new(),
    }
}

fn main() {
    let cfg = Config::byzantine(4, 1).expect("n=4, b=1");
    let td = 3;
    let phi1 = 2u64;
    let ctx = FlvContext {
        cfg,
        td,
        phase: Phase::new(phi1 + 1),
    };
    println!("# Figure 3 — FLV for class 3 (n = 4, b = 1, f = 0, TD = 3)\n");
    println!("pivot n − TD + b = {}", ctx.n_td_b());
    println!("history attestation threshold: > b = {}\n", cfg.b());

    // The figure's population: TD − b = 2 × (v1, φ1) with truthful
    // histories, 1 honest stale (v2, φ2' < φ1), 1 Byzantine (v2, φ2 > φ1)
    // with a forged history.
    let population = [
        msg(1, phi1, &[(1, 0), (1, phi1)]),
        msg(1, phi1, &[(1, 0), (1, phi1)]),
        msg(2, phi1 - 1, &[(2, 0), (2, phi1 - 1)]),
        msg(2, phi1 + 7, &[(2, phi1 + 7)]), // Byzantine forgery
    ];
    let flv = Class3Flv::new();

    let mut t = Table::new(["subset (vote@ts)", "|µ|", "FLV outcome", "agreement ok"]);
    let mut violations = 0u32;
    for mask in 1u32..(1 << population.len()) {
        let subset: Vec<&SelectionMsg<u64>> = population
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, m)| m)
            .collect();
        let out = flv.evaluate(&ctx, &subset);
        assert!(validity_holds(&out, &subset), "FLV-validity");
        let ok = agreement_holds(&out, &1);
        if !ok {
            violations += 1;
        }
        if subset.len() >= 3 {
            let votes: Vec<String> = subset
                .iter()
                .map(|m| format!("{}@{}", m.vote, m.ts.number()))
                .collect();
            t.row([
                votes.join(","),
                subset.len().to_string(),
                format!("{out:?}"),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.print();

    println!(
        "\nFLV-agreement violations over all {} subsets: {}",
        (1u32 << population.len()) - 1,
        violations
    );
    assert_eq!(violations, 0, "Figure 3's geometry guarantees agreement");

    let all: Vec<&SelectionMsg<u64>> = population.iter().collect();
    assert_eq!(flv.evaluate(&ctx, &all), FlvOutcome::Value(1));
    println!("full population of 4 messages → Value(1) — matches the figure");

    // Show the forgery *would* succeed without the history check: the
    // Byzantine (v2, φ2 > φ1) message has the largest support at line 1.
    println!(
        "\nnote: the Byzantine ⟨v2, φ2 = {}⟩ dominates the timestamp order (support 4),\n\
         but only 1 history attests (v2, {}) — below the > b = 1 threshold;\n\
         without histories (class-2 rule at this TD) the forgery would poison FLV.",
        phi1 + 7,
        phi1 + 7,
    );
}
