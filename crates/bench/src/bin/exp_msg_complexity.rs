//! Experiment **E6** — message and state complexity per class (Table 1's
//! "process state" column made concrete).
//!
//! Two measurements:
//!
//! 1. wire-encoded bytes of a selection message per class, as the history
//!    grows — class 1 is constant (vote only), class 2 constant
//!    (vote + ts), class 3 grows linearly with executed phases;
//! 2. total point-to-point messages per decision, per class and n
//!    (all classes are O(n²) per round; class 1 saves the validation
//!    round).
//!
//! Run: `cargo run -p gencon-bench --bin exp_msg_complexity`

use gencon_algos::AlgorithmSpec;
use gencon_bench::{run_synchronous, Table};
use gencon_core::{ClassId, History, Params, SelectionMsg, StateProfile};
use gencon_net::Wire;
use gencon_types::{Config, Phase, ProcessSet};

fn selection_msg(profile: StateProfile, phases_executed: u64) -> SelectionMsg<u64> {
    let mut history = History::new();
    let mut ts = Phase::ZERO;
    if profile.sends_history() {
        history = History::initial(7);
        for p in 1..=phases_executed {
            history.record(7, Phase::new(p));
        }
    }
    if profile.sends_ts() {
        ts = Phase::new(phases_executed);
    }
    SelectionMsg {
        vote: 7u64,
        ts,
        history,
        selector: ProcessSet::new(), // constant-selector optimization
    }
}

fn main() {
    println!("# E6 — Message and state complexity per class\n");

    println!("## Wire-encoded selection message size (bytes) vs phases executed\n");
    let mut t = Table::new([
        "phases",
        "class 1 (vote)",
        "class 2 (vote,ts)",
        "class 3 (+history)",
    ]);
    for phases in [0u64, 1, 2, 5, 10, 50] {
        let sizes: Vec<String> = ClassId::ALL
            .iter()
            .map(|c| {
                selection_msg(c.state_profile(), phases)
                    .encoded_len()
                    .to_string()
            })
            .collect();
        t.row([
            phases.to_string(),
            sizes[0].clone(),
            sizes[1].clone(),
            sizes[2].clone(),
        ]);
    }
    t.print();
    println!("\nclass 1 and 2 are O(1); class 3's history grows with phases —");
    println!("footnote 5 of the paper (unbounded history), and MQB's raison d'être.");

    println!("\n## Point-to-point messages per decision (fault-free good phase)\n");
    let mut t2 = Table::new(["class", "n", "rounds", "messages sent", "msgs/round"]);
    for class in ClassId::ALL {
        for extra in [0usize, 4, 12] {
            let n = class.min_n(0, 1) + extra;
            let cfg = Config::byzantine(n, 1).expect("config");
            let spec = AlgorithmSpec {
                name: "generic",
                class,
                model: "Byzantine",
                bound: class.n_bound(),
                params: Params::<u64>::for_class(class, cfg).expect("params"),
            };
            let inits: Vec<u64> = vec![1; n];
            let out = run_synchronous(&spec, &inits, 20);
            assert!(out.all_correct_decided);
            let rounds = out.rounds_executed;
            t2.row([
                class.to_string(),
                n.to_string(),
                rounds.to_string(),
                out.messages_sent.to_string(),
                format!("{:.0}", out.messages_sent as f64 / rounds as f64),
            ]);
        }
    }
    t2.print();

    println!("\nShape check: every round is all-to-all (n² messages with Selector = Π);");
    println!("class 1 decides with 2n², classes 2–3 with 3n² in one good phase.");
}
