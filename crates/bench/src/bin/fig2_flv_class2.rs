//! Regenerates **Figure 2** of the paper: the class-2 FLV (Algorithm 3)
//! with timestamps at n = 5, b = 1, f = 0, TD = 4.
//!
//! After a decision on (v1, φ1), TD − b = 3 honest processes hold
//! ⟨v1, φ1⟩; one honest process may hold an older ⟨v2, φ2' < φ1⟩ and the
//! Byzantine process claims a fresher ⟨v2, φ2 > φ1⟩. The multiset filter of
//! line 1 plus the `> b` multiplicity rule of line 2 recover v1 from every
//! sufficiently large sample.
//!
//! Run: `cargo run -p gencon-bench --bin fig2_flv_class2`

use gencon_bench::Table;
use gencon_core::flv::properties::{agreement_holds, validity_holds};
use gencon_core::{Class2Flv, Flv, FlvContext, FlvOutcome, History, SelectionMsg};
use gencon_types::{Config, Phase, ProcessSet};

fn msg(vote: u64, ts: u64) -> SelectionMsg<u64> {
    SelectionMsg {
        vote,
        ts: Phase::new(ts),
        history: History::new(),
        selector: ProcessSet::new(),
    }
}

fn main() {
    let cfg = Config::byzantine(5, 1).expect("n=5, b=1");
    let td = 4;
    let phi1 = 2u64;
    let ctx = FlvContext {
        cfg,
        td,
        phase: Phase::new(phi1 + 1),
    };
    println!("# Figure 2 — FLV for class 2 (n = 5, b = 1, f = 0, TD = 4)\n");
    println!("pivot n − TD + b = {}", ctx.n_td_b());
    println!("sample bound n − TD + 2b = {}\n", ctx.n_td_b() + cfg.b());

    // The figure's population: 3 × (v1, φ1), 1 × (v2, φ2' < φ1),
    // 1 Byzantine × (v2, φ2 > φ1).
    let population = [
        msg(1, phi1),
        msg(1, phi1),
        msg(1, phi1),
        msg(2, phi1 - 1),
        msg(2, phi1 + 3), // Byzantine freshness forgery
    ];
    let flv = Class2Flv::new();

    let mut t = Table::new(["subset (vote@ts)", "|µ|", "FLV outcome", "agreement ok"]);
    let mut violations = 0u32;
    for mask in 1u32..(1 << population.len()) {
        let subset: Vec<&SelectionMsg<u64>> = population
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, m)| m)
            .collect();
        let out = flv.evaluate(&ctx, &subset);
        assert!(validity_holds(&out, &subset), "FLV-validity");
        let ok = agreement_holds(&out, &1);
        if !ok {
            violations += 1;
        }
        if subset.len() >= 4 {
            let votes: Vec<String> = subset
                .iter()
                .map(|m| format!("{}@{}", m.vote, m.ts.number()))
                .collect();
            t.row([
                votes.join(","),
                subset.len().to_string(),
                format!("{out:?}"),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.print();

    println!(
        "\nFLV-agreement violations over all {} subsets: {}",
        (1u32 << population.len()) - 1,
        violations
    );
    assert_eq!(violations, 0, "Figure 2's geometry guarantees agreement");

    let all: Vec<&SelectionMsg<u64>> = population.iter().collect();
    assert_eq!(flv.evaluate(&ctx, &all), FlvOutcome::Value(1));
    println!("full population of 5 messages → Value(1) — matches the figure");

    // Contrast: without timestamps (class-1 reasoning) this TD could NOT
    // protect the locked value — the paper's point for needing ts when
    // TD ≤ (n+3b+f)/2.
    println!(
        "\nnote: TD = 4 ≤ (n+3b+f)/2 = 4 — class-1's vote counting alone would be\n\
         insufficient here; the timestamp mechanism is what makes class 2 sound."
    );
}
