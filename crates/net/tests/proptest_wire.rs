//! Property tests for the SMR-layer wire codec: random `Batch`/`SmrMsg`
//! bundles round-trip exactly, every strict truncation is rejected, and
//! arbitrary corruption never panics the decoder — the guarantees a server
//! needs before feeding network bytes from untrusted peers into the log.

use bytes::{Buf, Bytes};
use proptest::prelude::*;

use gencon_core::{ConsensusMsg, DecisionMsg, History, SelectionMsg, ValidationMsg};
use gencon_net::{decode_state, encode_state, Envelope, SnapshotManifest, SyncFrame, Wire};
use gencon_smr::SmrMsg;
use gencon_types::{Batch, Phase, ProcessId, ProcessSet, Round};

fn batches() -> impl Strategy<Value = Batch<u64>> {
    proptest::collection::vec(any::<u64>(), 0..12).prop_map(Batch::new)
}

fn phases() -> impl Strategy<Value = Phase> {
    (0u64..1_000).prop_map(Phase::new)
}

fn histories() -> impl Strategy<Value = History<Batch<u64>>> {
    proptest::collection::vec((batches(), phases()), 0..4).prop_map(|entries| {
        let mut h = History::new();
        for (v, p) in entries {
            h.record(v, p);
        }
        h
    })
}

fn psets() -> impl Strategy<Value = ProcessSet> {
    proptest::collection::vec(0usize..64, 0..8)
        .prop_map(|ids| ids.into_iter().map(ProcessId::new).collect())
}

fn consensus_msgs() -> impl Strategy<Value = ConsensusMsg<Batch<u64>>> {
    (0u8..3, 0u8..2, phases(), batches(), phases(), histories()).prop_flat_map(
        |(variant, some, phase, vote, ts, history)| {
            psets().prop_map(move |selector| match variant {
                0 => ConsensusMsg::Selection(
                    phase,
                    SelectionMsg {
                        vote: vote.clone(),
                        ts,
                        history: history.clone(),
                        selector,
                    },
                ),
                1 => ConsensusMsg::Validation(
                    phase,
                    ValidationMsg {
                        select: (some == 1).then(|| vote.clone()),
                        validators: selector,
                    },
                ),
                _ => ConsensusMsg::Decision(
                    phase,
                    DecisionMsg {
                        vote: vote.clone(),
                        ts,
                    },
                ),
            })
        },
    )
}

fn bundles() -> impl Strategy<Value = SmrMsg<Batch<u64>>> {
    (
        proptest::collection::vec((0u64..64, consensus_msgs()), 0..5),
        proptest::collection::vec((0u64..64, batches()), 0..4),
        proptest::collection::vec(batches(), 0..3),
    )
        .prop_map(|(slots, claims, relays)| {
            let mut m = SmrMsg::new();
            for (slot, msg) in slots {
                m.push(slot, msg);
            }
            for (slot, v) in claims {
                m.push_claim(slot, v);
            }
            for v in relays {
                m.push_relay(v);
            }
            m
        })
}

fn sync_frames() -> impl Strategy<Value = SyncFrame<SmrMsg<Batch<u64>>>> {
    (
        0u8..5,
        bundles(),
        0usize..gencon_types::MAX_PROCESSES,
        1u64..1_000_000,
        proptest::collection::vec(any::<u8>(), 0..96),
    )
        .prop_map(|(variant, bundle, sender, number, state)| {
            let sender = ProcessId::new(sender);
            match variant {
                0 => SyncFrame::Round(Envelope {
                    sender,
                    round: Round::new(number),
                    msg: bundle,
                }),
                1 => SyncFrame::SnapshotRequest {
                    sender,
                    have_slot: number,
                },
                2 => SyncFrame::Manifest {
                    sender,
                    manifest: SnapshotManifest::describe(number, number / 2, &state),
                },
                3 => SyncFrame::ChunkRequest {
                    sender,
                    upto_slot: number,
                    index: (number % 7) as u32,
                },
                _ => SyncFrame::Chunk {
                    sender,
                    upto_slot: number,
                    index: (number % 7) as u32,
                    crc: gencon_crypto::crc32::crc32(&state),
                    bytes: state,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batch_roundtrips(b in batches()) {
        let bytes = b.to_bytes();
        prop_assert_eq!(bytes.len(), b.encoded_len());
        let mut buf = bytes;
        prop_assert_eq!(Batch::<u64>::decode(&mut buf).unwrap(), b);
        prop_assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn smr_bundle_roundtrips(m in bundles()) {
        let bytes = m.to_bytes();
        let mut buf = bytes;
        prop_assert_eq!(SmrMsg::<Batch<u64>>::decode(&mut buf).unwrap(), m);
        prop_assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn smr_envelope_roundtrips(
        m in bundles(),
        sender in 0usize..gencon_types::MAX_PROCESSES,
        round in 1u64..1_000_000,
    ) {
        let env = Envelope {
            sender: ProcessId::new(sender),
            round: Round::new(round),
            msg: m,
        };
        let bytes = env.to_bytes();
        let mut buf = bytes;
        prop_assert_eq!(
            Envelope::<SmrMsg<Batch<u64>>>::decode(&mut buf).unwrap(),
            env
        );
        prop_assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn every_truncation_is_rejected(m in bundles(), cut in 0usize..4_096) {
        let bytes = m.to_bytes();
        // Cuts are strict prefixes (an empty bundle still encodes its
        // three zero length prefixes, so the modulus is never zero).
        let cut = cut % bytes.len().max(1);
        let mut short = bytes.slice(0..cut);
        prop_assert!(
            SmrMsg::<Batch<u64>>::decode(&mut short).is_err(),
            "prefix of length {} of {} decoded",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn corruption_never_panics(
        m in bundles(),
        pos in 0usize..4_096,
        flip in 1u8..=255,
    ) {
        let bytes = m.to_bytes();
        let mut raw = bytes.to_vec();
        if raw.is_empty() {
            return Ok(());
        }
        let pos = pos % raw.len();
        raw[pos] ^= flip;
        let mut buf = Bytes::from(raw);
        // Must not panic or over-allocate; failure and success are both
        // acceptable outcomes for a corrupted frame.
        let _ = SmrMsg::<Batch<u64>>::decode(&mut buf);
    }

    #[test]
    fn random_garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = Bytes::from(raw);
        let _ = SmrMsg::<Batch<u64>>::decode(&mut buf);
        let mut buf2 = Bytes::from(vec![0xffu8; 64]);
        let _ = Envelope::<SmrMsg<Batch<u64>>>::decode(&mut buf2);
    }

    #[test]
    fn sync_frames_roundtrip(
        frame in sync_frames(),
    ) {
        let bytes = frame.to_bytes();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let mut buf = bytes;
        prop_assert_eq!(SyncFrame::<SmrMsg<Batch<u64>>>::decode(&mut buf).unwrap(), frame);
        prop_assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn sync_frame_truncations_are_rejected(frame in sync_frames(), cut in 0usize..4_096) {
        let bytes = frame.to_bytes();
        let cut = cut % bytes.len().max(1);
        let mut short = bytes.slice(0..cut);
        prop_assert!(
            SyncFrame::<SmrMsg<Batch<u64>>>::decode(&mut short).is_err(),
            "prefix of length {} of {} decoded",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn sync_frame_corruption_never_panics(
        frame in sync_frames(),
        pos in 0usize..4_096,
        flip in 1u8..=255,
        raw in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = frame.to_bytes();
        let mut corrupted = bytes.to_vec();
        let pos = pos % corrupted.len().max(1);
        if !corrupted.is_empty() {
            corrupted[pos] ^= flip;
        }
        let mut buf = Bytes::from(corrupted);
        let _ = SyncFrame::<SmrMsg<Batch<u64>>>::decode(&mut buf);
        let mut garbage = Bytes::from(raw);
        let _ = SyncFrame::<SmrMsg<Batch<u64>>>::decode(&mut garbage);
    }

    #[test]
    fn snapshot_state_roundtrips_and_rejects_truncation(
        pairs in proptest::collection::vec((any::<u64>(), 0u64..100_000), 0..64),
        cut_frac in 0u64..10_000,
    ) {
        let state = encode_state(&pairs);
        prop_assert_eq!(decode_state::<u64>(&state).unwrap(), pairs);
        let cut = (cut_frac as usize * state.len()) / 10_000;
        if cut < state.len() {
            prop_assert!(decode_state::<u64>(&state[..cut]).is_err());
        }
    }
}
