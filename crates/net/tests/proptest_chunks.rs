//! Property tests for the chunked state-transfer layer: arbitrary chunk
//! streams — truncated, corrupted, reordered, duplicated, misindexed —
//! are rejected without panicking and can **never** make a
//! [`ChunkAssembly`] produce bytes that differ from the manifested
//! state; the honest chunks always assemble afterwards. The
//! [`FoldedState`] payload codec gets the same truncation/corruption
//! treatment as every other decoder in this crate.

use bytes::Bytes;
use proptest::prelude::*;

use gencon_crypto::crc32::crc32;
use gencon_net::{
    AssemblyOutcome, ChunkAssembly, FoldedState, SnapshotManifest, Wire, CHUNK_BYTES,
};

/// States sized to span 1–3 chunks without making cases slow: the chunk
/// geometry logic only cares about crossing boundaries.
fn states() -> impl Strategy<Value = Vec<u8>> {
    (0u8..3, any::<u8>(), 0usize..128).prop_map(|(shape, b, pad)| match shape {
        0 => vec![b; pad.min(64)],
        // Around one chunk boundary (CHUNK_BYTES ± small).
        1 => vec![b; CHUNK_BYTES - 64 + pad],
        // A bit past two chunks.
        _ => vec![b; 2 * CHUNK_BYTES + pad],
    })
}

/// An adversarial mutation of one honest chunk delivery.
#[derive(Clone, Debug)]
enum Tamper {
    Honest,
    FlipByte(usize, u8),
    Truncate(usize),
    WrongIndex(u32),
    WrongCrc(u32),
}

fn tampers() -> impl Strategy<Value = Tamper> {
    // Selector-weighted: about half the deliveries are honest.
    (0u8..8, 0usize..4_096, 1u8..=255, any::<u32>()).prop_map(|(v, p, f, x)| match v {
        0 => Tamper::FlipByte(p, f),
        1 => Tamper::Truncate(p),
        2 => Tamper::WrongIndex(x % 8),
        3 => Tamper::WrongCrc(x),
        _ => Tamper::Honest,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever mix of honest and tampered chunk deliveries arrives, in
    /// whatever order: the assembly never panics, never completes with
    /// wrong bytes, and once every honest chunk has been offered it
    /// yields exactly the original state.
    #[test]
    fn assemblies_survive_arbitrary_chunk_streams(
        state in states(),
        deliveries in proptest::collection::vec((0u32..4, tampers()), 0..24),
    ) {
        let manifest = SnapshotManifest::describe(64, 9, &state);
        prop_assert!(manifest.consistent());
        let mut asm = ChunkAssembly::new(manifest).expect("consistent manifest");

        for (index, tamper) in deliveries {
            let Some(chunk) = manifest.chunk_of(&state, index % manifest.chunks.max(1)) else {
                continue; // empty state: nothing to deliver
            };
            let index = index % manifest.chunks.max(1);
            let (idx, crc, bytes) = match tamper {
                Tamper::Honest => (index, crc32(chunk), chunk.to_vec()),
                Tamper::FlipByte(p, f) => {
                    let mut b = chunk.to_vec();
                    if !b.is_empty() {
                        let p = p % b.len();
                        b[p] ^= f;
                    }
                    // A liar recomputes the CRC over its lie — only the
                    // manifest SHA can catch this.
                    let crc = crc32(&b);
                    (index, crc, b)
                }
                Tamper::Truncate(cut) => {
                    let cut = cut % (chunk.len() + 1);
                    (index, crc32(&chunk[..cut]), chunk[..cut].to_vec())
                }
                Tamper::WrongIndex(wi) => (wi, crc32(chunk), chunk.to_vec()),
                Tamper::WrongCrc(crc) => (index, crc, chunk.to_vec()),
            };
            asm.accept(idx, crc, bytes); // must never panic
            match asm.finish() {
                // A completed assembly is always the manifested state.
                AssemblyOutcome::Done(bytes) => prop_assert_eq!(&bytes, &state),
                AssemblyOutcome::Incomplete | AssemblyOutcome::Corrupt => {}
            }
        }

        // The honest chunks always finish the job, whatever happened.
        for i in 0..manifest.chunks {
            let chunk = manifest.chunk_of(&state, i).unwrap();
            asm.accept(i, crc32(chunk), chunk.to_vec());
        }
        // One retry covers the case where lying chunks had filled slots:
        // the SHA gate clears them, then the honest set assembles.
        for _ in 0..2 {
            match asm.finish() {
                AssemblyOutcome::Done(bytes) => {
                    prop_assert_eq!(bytes, state);
                    return Ok(());
                }
                AssemblyOutcome::Corrupt => {
                    for i in 0..manifest.chunks {
                        let chunk = manifest.chunk_of(&state, i).unwrap();
                        asm.accept(i, crc32(chunk), chunk.to_vec());
                    }
                }
                AssemblyOutcome::Incomplete => prop_assert!(false, "honest chunks must complete"),
            }
        }
        prop_assert!(false, "honest chunks must assemble within one SHA retry");
    }

    /// The folded-state payload codec: roundtrip, every strict truncation
    /// rejected, corruption and garbage never panic.
    #[test]
    fn folded_states_roundtrip_and_reject_garbage(
        applied_len in any::<u64>(),
        dedup in proptest::collection::vec((any::<u64>(), 0u64..100_000), 0..32),
        app in proptest::collection::vec(any::<u8>(), 0..160),
        cut in 0usize..4_096,
        pos in 0usize..4_096,
        flip in 1u8..=255,
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let fs = FoldedState { applied_len, dedup, app };
        let bytes = fs.to_bytes();
        let mut buf = bytes.clone();
        prop_assert_eq!(FoldedState::<u64>::decode(&mut buf).unwrap(), fs);

        let cut = cut % bytes.len().max(1);
        let mut short = bytes.slice(0..cut);
        prop_assert!(FoldedState::<u64>::decode(&mut short).is_err());

        let mut corrupted = bytes.to_vec();
        let pos = pos % corrupted.len();
        corrupted[pos] ^= flip;
        let _ = FoldedState::<u64>::decode(&mut Bytes::from(corrupted)); // no panic

        let _ = FoldedState::<u64>::decode(&mut Bytes::from(garbage)); // no panic
    }
}
