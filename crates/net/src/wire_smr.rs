//! Wire encodings for the replicated-log layer: [`Batch`] values and
//! [`SmrMsg`] round bundles.
//!
//! These are the frames a real SMR deployment actually puts on the wire
//! (one [`SmrMsg`] bundle per replica per round, see `gencon-server`), so
//! the same decoder caps apply as for single-instance consensus messages:
//! every length field is validated against [`MAX_COLLECTION`] /
//! [`MAX_BYTES`] before any allocation, bounding what a Byzantine peer can
//! force.

use bytes::{Bytes, BytesMut};

use gencon_core::ConsensusMsg;
use gencon_smr::{Slot, SmrMsg};
use gencon_types::{Batch, Value};

#[allow(unused_imports)] // referenced by the module docs
use crate::wire::MAX_BYTES;
use crate::wire::{Wire, WireError, MAX_COLLECTION};

impl<V: Value + Wire> Wire for Batch<V> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for cmd in self.iter() {
            cmd.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_COLLECTION {
            return Err(WireError::TooLong(len));
        }
        let mut commands = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            commands.push(V::decode(buf)?);
        }
        Ok(Batch::new(commands))
    }
}

impl<V: Value + Wire> Wire for SmrMsg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.slot_count() as u32).encode(buf);
        for (slot, msg) in self.iter() {
            slot.encode(buf);
            msg.encode(buf);
        }
        (self.claims().len() as u32).encode(buf);
        for (slot, value) in self.claims() {
            slot.encode(buf);
            value.encode(buf);
        }
        (self.relays().len() as u32).encode(buf);
        for value in self.relays() {
            value.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let mut bundle = SmrMsg::new();
        let slots = u32::decode(buf)? as usize;
        if slots > MAX_COLLECTION {
            return Err(WireError::TooLong(slots));
        }
        for _ in 0..slots {
            let slot = Slot::decode(buf)?;
            bundle.push(slot, ConsensusMsg::decode(buf)?);
        }
        let claims = u32::decode(buf)? as usize;
        if claims > MAX_COLLECTION {
            return Err(WireError::TooLong(claims));
        }
        for _ in 0..claims {
            let slot = Slot::decode(buf)?;
            bundle.push_claim(slot, V::decode(buf)?);
        }
        let relays = u32::decode(buf)? as usize;
        if relays > MAX_COLLECTION {
            return Err(WireError::TooLong(relays));
        }
        for _ in 0..relays {
            bundle.push_relay(V::decode(buf)?);
        }
        Ok(bundle)
    }
}

// Trailing-byte note: `SmrMsg` is always the *last* field of its envelope,
// and decoders are sequential, so the two length prefixes fully delimit the
// bundle — no framing ambiguity against the outer length prefix.

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_core::{DecisionMsg, SelectionMsg};
    use gencon_types::{Phase, ProcessSet};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len());
        let mut buf = bytes.clone();
        let back = T::decode(&mut buf).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(bytes::Buf::remaining(&buf), 0, "no trailing bytes");
    }

    fn sample_bundle() -> SmrMsg<Batch<u64>> {
        let mut m = SmrMsg::new();
        m.push(
            0,
            ConsensusMsg::Selection(
                Phase::new(1),
                SelectionMsg {
                    vote: Batch::new(vec![10, 20]),
                    ts: Phase::ZERO,
                    history: gencon_core::History::new(),
                    selector: ProcessSet::new(),
                },
            ),
        );
        m.push(
            3,
            ConsensusMsg::Decision(
                Phase::new(2),
                DecisionMsg {
                    vote: Batch::empty(),
                    ts: Phase::new(2),
                },
            ),
        );
        m.push_claim(1, Batch::new(vec![7]));
        m.push_relay(Batch::new(vec![30, 40, 50]));
        m
    }

    #[test]
    fn batch_roundtrips() {
        roundtrip(Batch::<u64>::empty());
        roundtrip(Batch::new(vec![1u64, 2, 3]));
        roundtrip(Batch::new(vec![u64::MAX]));
        roundtrip(Batch::new((0..100u64).collect()));
    }

    #[test]
    fn smr_bundle_roundtrips() {
        roundtrip(SmrMsg::<Batch<u64>>::new());
        roundtrip(sample_bundle());
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let mut buf = BytesMut::new();
        ((MAX_COLLECTION + 1) as u32).encode(&mut buf);
        let mut b = buf.freeze();
        assert!(matches!(
            Batch::<u64>::decode(&mut b),
            Err(WireError::TooLong(_))
        ));
    }

    #[test]
    fn oversized_slot_and_claim_counts_are_rejected() {
        // Slot count over the cap.
        let mut buf = BytesMut::new();
        ((MAX_COLLECTION + 1) as u32).encode(&mut buf);
        let mut b = buf.freeze();
        assert!(matches!(
            SmrMsg::<Batch<u64>>::decode(&mut b),
            Err(WireError::TooLong(_))
        ));
        // Valid empty slot list, claim count over the cap.
        let mut buf2 = BytesMut::new();
        0u32.encode(&mut buf2);
        ((MAX_COLLECTION + 1) as u32).encode(&mut buf2);
        let mut b2 = buf2.freeze();
        assert!(matches!(
            SmrMsg::<Batch<u64>>::decode(&mut b2),
            Err(WireError::TooLong(_))
        ));
        // Valid empty slots and claims, relay count over the cap.
        let mut buf3 = BytesMut::new();
        0u32.encode(&mut buf3);
        0u32.encode(&mut buf3);
        ((MAX_COLLECTION + 1) as u32).encode(&mut buf3);
        let mut b3 = buf3.freeze();
        assert!(matches!(
            SmrMsg::<Batch<u64>>::decode(&mut b3),
            Err(WireError::TooLong(_))
        ));
    }

    #[test]
    fn truncated_bundle_is_rejected() {
        let bytes = sample_bundle().to_bytes();
        for cut in 0..bytes.len() {
            let mut short = bytes.slice(0..cut);
            assert!(
                SmrMsg::<Batch<u64>>::decode(&mut short).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}
