//! Wire codec and threaded runtime for deploying `gencon` consensus over a
//! real network.
//!
//! Three layers:
//!
//! * [`wire`] — a hand-rolled, length-validated binary codec ([`Wire`])
//!   for every consensus message type (and anything else you implement it
//!   for);
//! * [`transport`] — sender-authenticated frame transports:
//!   [`ChannelTransport`] (in-process, crossbeam) and [`TcpTransport`]
//!   (localhost/LAN mesh with identity-pinned connections);
//! * [`runtime`] — [`run_node`]: real-time closed rounds with wall-clock
//!   deadlines, realizing the paper's partially synchronous model over an
//!   actual network (timely rounds are good periods, overloaded rounds are
//!   bad ones).
//!
//! # Example: a PBFT cluster on in-process channels
//!
//! ```
//! use gencon_algos::pbft;
//! use gencon_net::{run_node, ChannelTransport, NodeConfig};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = pbft::<u64>(4, 1)?;
//! let fleet = spec.spawn(&[5, 5, 5, 5])?;
//! let cfg = NodeConfig {
//!     round_timeout: Duration::from_millis(100),
//!     max_rounds: 20,
//!     linger_rounds: 2,
//! };
//! let handles: Vec<_> = fleet
//!     .into_iter()
//!     .zip(ChannelTransport::mesh(4))
//!     .map(|(p, t)| std::thread::spawn(move || run_node(p, t, cfg)))
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap().unwrap().value, 5);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runtime;
pub mod transport;
pub mod wire;
mod wire_smr;
pub mod wire_sync;

pub use runtime::{run_node, NodeConfig};
pub use transport::{
    probe_free_addrs, ChannelTransport, DialPolicy, FlakyTransport, RecvHalf, TcpTransport,
    Transport,
};
pub use wire::{Envelope, Wire, WireError};
pub use wire_sync::{
    decode_state, encode_state, AssemblyOutcome, ChunkAssembly, FoldedState, SnapshotManifest,
    SyncFrame, CHUNK_BYTES, MAX_CHUNKS,
};
