//! The threaded round runtime: real-time partial synchrony.
//!
//! [`run_node`] drives one [`RoundProcess`] over a [`Transport`] with
//! wall-clock round deadlines. This realizes the paper's system model over
//! a real network:
//!
//! * rounds are closed by construction — a frame tagged with an old round
//!   is discarded, one tagged with a future round is buffered until that
//!   round opens;
//! * during overload/partitions, deadlines expire before all messages
//!   arrive: those rounds are "bad" (messages effectively lost);
//! * when the network is timely, every round collects all live senders
//!   before its deadline: `Pgood` holds — a good period.
//!
//! A node keeps participating for a grace period after deciding (its votes
//! help laggards reach `TD`), then returns its decision.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use bytes::Bytes;

use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
use gencon_types::{ProcessId, Round};

use crate::transport::Transport;
use crate::wire::{Envelope, Wire};

/// Runtime knobs.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// Wall-clock budget for each round.
    pub round_timeout: Duration,
    /// Hard cap on rounds before giving up.
    pub max_rounds: u64,
    /// Extra rounds to keep helping after deciding.
    pub linger_rounds: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            round_timeout: Duration::from_millis(200),
            max_rounds: 1000,
            linger_rounds: 2,
        }
    }
}

/// Drives `process` over `transport` until it decides (plus the linger
/// grace) or `max_rounds` elapse. Returns the process's final output.
///
/// The process's own message is looped back locally (a process hears
/// itself in every round it speaks, as the round model prescribes).
pub fn run_node<P, T>(mut process: P, mut transport: T, cfg: NodeConfig) -> Option<P::Output>
where
    P: RoundProcess,
    P::Msg: Wire,
    T: Transport,
{
    let me = transport.local();
    let n = transport.peers();
    let mut future: BTreeMap<u64, Vec<(ProcessId, P::Msg)>> = BTreeMap::new();
    let mut decided_rounds_left: Option<u64> = None;

    for r in 1..=cfg.max_rounds {
        let round = Round::new(r);

        // --- send step ---
        let out = process.send(round);
        let mut loopback: Option<P::Msg> = None;
        match &out {
            Outgoing::Silent => {}
            Outgoing::Broadcast(m) => {
                let frame = Envelope {
                    sender: me,
                    round,
                    msg: m.clone(),
                }
                .to_bytes();
                broadcast(&mut transport, n, &frame);
                loopback = Some(m.clone());
            }
            Outgoing::Multicast { dests, msg } => {
                let frame = Envelope {
                    sender: me,
                    round,
                    msg: msg.clone(),
                }
                .to_bytes();
                for d in dests.iter() {
                    if d == me {
                        loopback = Some(msg.clone());
                    } else {
                        transport.send(d, frame.clone());
                    }
                }
            }
            Outgoing::PerDest(pairs) => {
                for (d, m) in pairs {
                    if *d == me {
                        loopback = Some(m.clone());
                    } else {
                        let frame = Envelope {
                            sender: me,
                            round,
                            msg: m.clone(),
                        }
                        .to_bytes();
                        transport.send(*d, frame.clone());
                    }
                }
            }
        }

        // --- collect step ---
        let mut heard: HeardOf<P::Msg> = HeardOf::empty(n);
        if let Some(m) = loopback {
            heard.put(me, m);
        }
        if let Some(buffered) = future.remove(&r) {
            for (sender, msg) in buffered {
                if sender.index() < n {
                    heard.put(sender, msg);
                }
            }
        }
        let deadline = Instant::now() + cfg.round_timeout;
        while heard.count() < n {
            // Fast path: once all n have spoken, nothing more can arrive
            // for this (closed) round. Otherwise the deadline decides —
            // that is exactly the partial-synchrony timeout.
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let Some((sender, frame)) = transport.recv_timeout(deadline - now) else {
                break;
            };
            if sender.index() >= n {
                continue;
            }
            let Some(env) = decode_envelope::<P::Msg>(&frame) else {
                continue; // garbage from a Byzantine peer
            };
            // Transport-level sender authentication: the envelope's claimed
            // sender must match the connection identity.
            if env.sender != sender {
                continue;
            }
            match env.round.number().cmp(&r) {
                std::cmp::Ordering::Less => {} // stale round: closed, drop
                std::cmp::Ordering::Equal => {
                    heard.put(sender, env.msg);
                }
                std::cmp::Ordering::Greater => {
                    future
                        .entry(env.round.number())
                        .or_default()
                        .push((sender, env.msg));
                }
            }
        }

        // --- transition step ---
        process.receive(round, &heard);

        match (&mut decided_rounds_left, process.output()) {
            (None, Some(_)) => decided_rounds_left = Some(cfg.linger_rounds),
            (Some(0), _) => return process.output(),
            (Some(left), _) => *left -= 1,
            (None, None) => {}
        }
    }
    process.output()
}

fn broadcast<T: Transport>(transport: &mut T, n: usize, frame: &Bytes) {
    let me = transport.local();
    for d in 0..n {
        let dest = ProcessId::new(d);
        if dest != me {
            transport.send(dest, frame.clone());
        }
    }
}

fn decode_envelope<M: Wire>(frame: &Bytes) -> Option<Envelope<M>> {
    let mut buf = frame.clone();
    Envelope::decode(&mut buf).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use gencon_algos::pbft;
    use gencon_core::Decision;

    #[test]
    fn pbft_cluster_over_channels_decides() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let fleet = spec.spawn(&[10, 20, 30, 40]).unwrap();
        let mesh = ChannelTransport::mesh(4);
        let cfg = NodeConfig {
            round_timeout: Duration::from_millis(300),
            max_rounds: 30,
            linger_rounds: 2,
        };
        let handles: Vec<_> = fleet
            .into_iter()
            .zip(mesh)
            .map(|(proc_, tr)| std::thread::spawn(move || run_node(proc_, tr, cfg)))
            .collect();
        let decisions: Vec<Option<Decision<u64>>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let first = decisions[0].as_ref().expect("node 0 decides").value;
        for d in &decisions {
            assert_eq!(d.as_ref().expect("all decide").value, first);
        }
        assert_eq!(first, 10, "deterministic min choice");
    }

    #[test]
    fn cluster_decides_after_real_time_bad_period() {
        // Every node drops 60% of its first 60 sends (a real-time bad
        // period), then the network stabilizes: the first whole good phase
        // decides.
        let spec = pbft::<u64>(4, 1).unwrap();
        let fleet = spec.spawn(&[3, 1, 4, 1]).unwrap();
        let mesh = ChannelTransport::mesh(4);
        let cfg = NodeConfig {
            round_timeout: Duration::from_millis(80),
            max_rounds: 60,
            linger_rounds: 3,
        };
        let handles: Vec<_> = fleet
            .into_iter()
            .zip(mesh)
            .enumerate()
            .map(|(i, (proc_, tr))| {
                let flaky = crate::transport::FlakyTransport::new(tr, 600, 60, 77 + i as u64);
                std::thread::spawn(move || run_node(proc_, flaky, cfg))
            })
            .collect();
        let decisions: Vec<Option<Decision<u64>>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let first = decisions
            .iter()
            .flatten()
            .next()
            .expect("at least one decision after stabilization")
            .value;
        for d in decisions.iter().flatten() {
            assert_eq!(d.value, first, "agreement across the flaky cluster");
        }
    }

    #[test]
    fn cluster_survives_one_silent_node() {
        // Node 3 never runs: the other 3 (= n − b) must still decide.
        let spec = pbft::<u64>(4, 1).unwrap();
        let mut fleet = spec.spawn(&[7, 7, 7, 7]).unwrap();
        let mut mesh = ChannelTransport::mesh(4);
        let cfg = NodeConfig {
            round_timeout: Duration::from_millis(100),
            max_rounds: 30,
            linger_rounds: 2,
        };
        let mut handles = Vec::new();
        for _ in 0..3 {
            let proc_ = fleet.remove(0);
            let tr = mesh.remove(0);
            handles.push(std::thread::spawn(move || run_node(proc_, tr, cfg)));
        }
        for h in handles {
            let d = h.join().unwrap().expect("decides without node 3");
            assert_eq!(d.value, 7);
        }
    }
}
