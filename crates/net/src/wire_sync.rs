//! Wire encodings for **chunked snapshot state transfer**: the frames a
//! laggard and its peers exchange when the laggard's gap exceeds the
//! peers' in-memory claim horizon (compacted slots cannot be re-claimed —
//! the snapshot is the only copy left).
//!
//! A `gencon-server` node no longer puts bare [`Envelope`]s on the mesh;
//! every peer frame is a [`SyncFrame`]:
//!
//! * `Round(Envelope<M>)` — the normal per-round consensus bundle;
//! * `SnapshotRequest` — "my contiguous log ends at `have_slot`; if your
//!   snapshot reaches further, describe it";
//! * `Manifest` — a peer's [`SnapshotManifest`]: the snapshot's cut, its
//!   total byte length, its chunk count and its SHA-256. Metadata only —
//!   cheap enough to broadcast, and the unit the `b + 1` agreement check
//!   runs over: the requester fetches state only for a manifest that
//!   `b + 1` distinct senders vouched for byte-identically (at least one
//!   is honest, so by per-slot Agreement the described state is the real
//!   folded prefix);
//! * `ChunkRequest` — the requester pulls one chunk by index. Requests
//!   are **resumable**: fetched chunks survive rounds, so only missing
//!   indices are re-requested, from any voucher;
//! * `Chunk` — one [`CHUNK_BYTES`]-sized slice of the snapshot state,
//!   stamped with a CRC-32 (accidental-corruption check; the assembled
//!   state must additionally match the manifest's SHA-256, which is what
//!   defeats a lying chunk server).
//!
//! There is **no whole-snapshot frame and no whole-snapshot cap**: state
//! size is bounded only by `chunks × CHUNK_BYTES` with the chunk count
//! validated against [`MAX_CHUNKS`] (a sanity ceiling about three orders
//! of magnitude above the old single-frame limit, not a design limit).
//! Every decoder still validates per-frame lengths before allocating, as
//! everywhere else in this crate.
//!
//! The state payload itself is a [`FoldedState`]: the application's
//! folded (compact) state bytes plus the replica resume data — the
//! absolute applied-command count and the dedup window — so a receiver
//! can continue the shared log without replaying history.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gencon_crypto::crc32::crc32;
use gencon_crypto::sha256;
use gencon_types::{ProcessId, Value};

use crate::wire::{Envelope, Wire, WireError};

/// Canonical chunk size: chunk `i` of a snapshot state is
/// `state[i * CHUNK_BYTES ..]` truncated to `CHUNK_BYTES`. Fixed
/// protocol-wide so every voucher slices the byte-identical state into
/// byte-identical chunks, and doubles as the per-frame sanity cap a
/// `Chunk` decoder enforces before allocating.
pub const CHUNK_BYTES: usize = 64 << 10;

/// Sanity ceiling on a manifest's chunk count (`MAX_CHUNKS × CHUNK_BYTES`
/// = 4 GiB of state). Nothing in the protocol needs a tighter bound: the
/// requester allocates per received chunk, never `total_len` up front.
pub const MAX_CHUNKS: u32 = 1 << 16;

/// Verifiable description of a transferable snapshot — the metadata the
/// `b + 1` agreement check compares before any chunk is trusted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SnapshotManifest {
    /// Every slot below this is covered by the snapshot.
    pub upto_slot: u64,
    /// Applied commands the folded state covers (the installer's new
    /// absolute log offset).
    pub applied_len: u64,
    /// Number of [`CHUNK_BYTES`]-sized chunks the state slices into.
    pub chunks: u32,
    /// Total state length in bytes.
    pub total_len: u64,
    /// SHA-256 of the full state bytes.
    pub sha256: [u8; 32],
}

impl SnapshotManifest {
    /// Describes `state` as a manifest (computing chunk count and hash).
    #[must_use]
    pub fn describe(upto_slot: u64, applied_len: u64, state: &[u8]) -> Self {
        SnapshotManifest {
            upto_slot,
            applied_len,
            chunks: state.len().div_ceil(CHUNK_BYTES) as u32,
            total_len: state.len() as u64,
            sha256: sha256(state),
        }
    }

    /// Whether the chunk count, total length and ceiling are mutually
    /// consistent — the first thing a receiver checks (an inconsistent
    /// manifest is garbage regardless of who vouches for it).
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.chunks <= MAX_CHUNKS
            && self.total_len <= u64::from(self.chunks) * CHUNK_BYTES as u64
            && u64::from(self.chunks) == self.total_len.div_ceil(CHUNK_BYTES as u64)
    }

    /// Byte length of chunk `index` (the final chunk may be short).
    #[must_use]
    pub fn chunk_len(&self, index: u32) -> usize {
        if index >= self.chunks {
            return 0;
        }
        let start = u64::from(index) * CHUNK_BYTES as u64;
        usize::try_from((self.total_len - start).min(CHUNK_BYTES as u64)).unwrap_or(0)
    }

    /// Slices chunk `index` out of `state` (which must be the manifest's
    /// state bytes).
    #[must_use]
    pub fn chunk_of<'a>(&self, state: &'a [u8], index: u32) -> Option<&'a [u8]> {
        if index >= self.chunks || state.len() as u64 != self.total_len {
            return None;
        }
        let start = index as usize * CHUNK_BYTES;
        Some(&state[start..start + self.chunk_len(index)])
    }
}

impl Wire for SnapshotManifest {
    fn encode(&self, buf: &mut BytesMut) {
        self.upto_slot.encode(buf);
        self.applied_len.encode(buf);
        self.chunks.encode(buf);
        self.total_len.encode(buf);
        buf.put_slice(&self.sha256);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let upto_slot = u64::decode(buf)?;
        let applied_len = u64::decode(buf)?;
        let chunks = u32::decode(buf)?;
        if chunks > MAX_CHUNKS {
            return Err(WireError::TooLong(chunks as usize));
        }
        let total_len = u64::decode(buf)?;
        if buf.remaining() < 32 {
            return Err(WireError::UnexpectedEof);
        }
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&buf.split_to(32));
        Ok(SnapshotManifest {
            upto_slot,
            applied_len,
            chunks,
            total_len,
            sha256: hash,
        })
    }
}

/// Every frame a `gencon-server` node puts on the peer mesh.
#[derive(Clone, PartialEq, Debug)]
pub enum SyncFrame<M> {
    /// A normal consensus round frame.
    Round(Envelope<M>),
    /// A laggard asking peers to describe a snapshot past `have_slot`.
    SnapshotRequest {
        /// Claimed sender (authenticated at the transport layer, like
        /// [`Envelope::sender`]).
        sender: ProcessId,
        /// The requester's contiguous committed log ends here.
        have_slot: u64,
    },
    /// A peer's snapshot description, answering a request.
    Manifest {
        /// Claimed sender (transport-authenticated).
        sender: ProcessId,
        /// The verifiable description (chunks are fetched separately).
        manifest: SnapshotManifest,
    },
    /// The requester pulling one chunk of a vouched manifest.
    ChunkRequest {
        /// Claimed sender (transport-authenticated).
        sender: ProcessId,
        /// The manifest's snapshot cut (identifies which snapshot).
        upto_slot: u64,
        /// Which chunk.
        index: u32,
    },
    /// One chunk of snapshot state.
    Chunk {
        /// Claimed sender (transport-authenticated).
        sender: ProcessId,
        /// The manifest's snapshot cut.
        upto_slot: u64,
        /// Which chunk.
        index: u32,
        /// CRC-32 of `bytes` (accidental-corruption check; the SHA-256
        /// over the assembled state is the trust check).
        crc: u32,
        /// The chunk payload (≤ [`CHUNK_BYTES`]).
        bytes: Vec<u8>,
    },
}

impl<M> SyncFrame<M> {
    /// The transport-authenticated sender this frame claims.
    #[must_use]
    pub fn sender(&self) -> ProcessId {
        match self {
            SyncFrame::Round(env) => env.sender,
            SyncFrame::SnapshotRequest { sender, .. }
            | SyncFrame::Manifest { sender, .. }
            | SyncFrame::ChunkRequest { sender, .. }
            | SyncFrame::Chunk { sender, .. } => *sender,
        }
    }
}

impl<M: Wire> Wire for SyncFrame<M> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SyncFrame::Round(env) => {
                buf.put_u8(1);
                env.encode(buf);
            }
            SyncFrame::SnapshotRequest { sender, have_slot } => {
                buf.put_u8(2);
                sender.encode(buf);
                have_slot.encode(buf);
            }
            SyncFrame::Manifest { sender, manifest } => {
                buf.put_u8(4);
                sender.encode(buf);
                manifest.encode(buf);
            }
            SyncFrame::ChunkRequest {
                sender,
                upto_slot,
                index,
            } => {
                buf.put_u8(5);
                sender.encode(buf);
                upto_slot.encode(buf);
                index.encode(buf);
            }
            SyncFrame::Chunk {
                sender,
                upto_slot,
                index,
                crc,
                bytes,
            } => {
                buf.put_u8(6);
                sender.encode(buf);
                upto_slot.encode(buf);
                index.encode(buf);
                crc.encode(buf);
                (bytes.len() as u32).encode(buf);
                buf.put_slice(bytes);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(SyncFrame::Round(Envelope::decode(buf)?)),
            2 => Ok(SyncFrame::SnapshotRequest {
                sender: ProcessId::decode(buf)?,
                have_slot: u64::decode(buf)?,
            }),
            4 => Ok(SyncFrame::Manifest {
                sender: ProcessId::decode(buf)?,
                manifest: SnapshotManifest::decode(buf)?,
            }),
            5 => Ok(SyncFrame::ChunkRequest {
                sender: ProcessId::decode(buf)?,
                upto_slot: u64::decode(buf)?,
                index: u32::decode(buf)?,
            }),
            6 => {
                let sender = ProcessId::decode(buf)?;
                let upto_slot = u64::decode(buf)?;
                let index = u32::decode(buf)?;
                let crc = u32::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                if len > CHUNK_BYTES {
                    return Err(WireError::TooLong(len));
                }
                if buf.remaining() < len {
                    return Err(WireError::UnexpectedEof);
                }
                Ok(SyncFrame::Chunk {
                    sender,
                    upto_slot,
                    index,
                    crc,
                    bytes: buf.split_to(len).to_vec(),
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// What [`ChunkAssembly::finish`] found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AssemblyOutcome {
    /// Chunks are still missing; keep fetching.
    Incomplete,
    /// Every chunk arrived but the assembled state failed the manifest's
    /// SHA-256 — some voucher served lying chunks. All fetched chunks
    /// were discarded; re-fetch from other vouchers.
    Corrupt,
    /// The assembled, hash-verified state bytes.
    Done(Vec<u8>),
}

/// Resumable reassembly of one manifest's chunk stream.
///
/// Chunks may arrive in any order, duplicated, truncated or corrupted;
/// `accept` rejects anything that does not match the manifest's geometry
/// or its own CRC, and `finish` installs nothing unless the concatenation
/// matches the manifest's SHA-256 — a wrong state is never produced, no
/// matter what bytes are fed in.
#[derive(Clone, Debug)]
pub struct ChunkAssembly {
    manifest: SnapshotManifest,
    chunks: Vec<Option<Vec<u8>>>,
    have: u32,
}

impl ChunkAssembly {
    /// Starts assembling `manifest`'s state. `None` if the manifest is
    /// internally inconsistent.
    #[must_use]
    pub fn new(manifest: SnapshotManifest) -> Option<Self> {
        if !manifest.consistent() {
            return None;
        }
        Some(ChunkAssembly {
            chunks: vec![None; manifest.chunks as usize],
            have: 0,
            manifest,
        })
    }

    /// The manifest being assembled.
    #[must_use]
    pub fn manifest(&self) -> &SnapshotManifest {
        &self.manifest
    }

    /// Chunks received so far.
    #[must_use]
    pub fn have(&self) -> u32 {
        self.have
    }

    /// Whether every chunk arrived (the SHA check still gates `finish`).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.have == self.manifest.chunks
    }

    /// Indices still missing, smallest first, at most `limit` of them.
    #[must_use]
    pub fn missing(&self, limit: usize) -> Vec<u32> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i as u32)
            .take(limit)
            .collect()
    }

    /// Discards every fetched chunk, keeping the manifest — used when a
    /// fetch rotates to a different source mid-assembly, so one attempt
    /// never mixes chunks from two senders (the anti-poisoning argument
    /// needs a clean, single-source assembly).
    pub fn clear(&mut self) {
        for c in &mut self.chunks {
            *c = None;
        }
        self.have = 0;
    }

    /// Offers one received chunk. Returns whether it was newly accepted
    /// (geometry and CRC both check out and the slot was empty).
    pub fn accept(&mut self, index: u32, crc: u32, bytes: Vec<u8>) -> bool {
        if index >= self.manifest.chunks
            || bytes.len() != self.manifest.chunk_len(index)
            || crc32(&bytes) != crc
        {
            return false;
        }
        let slot = &mut self.chunks[index as usize];
        if slot.is_some() {
            return false;
        }
        *slot = Some(bytes);
        self.have += 1;
        true
    }

    /// Tries to produce the verified state. On [`AssemblyOutcome::Corrupt`]
    /// every fetched chunk is discarded so the fetch can resume cleanly.
    pub fn finish(&mut self) -> AssemblyOutcome {
        if !self.complete() {
            return AssemblyOutcome::Incomplete;
        }
        let mut state = Vec::with_capacity(self.manifest.total_len as usize);
        for chunk in self.chunks.iter().flatten() {
            state.extend_from_slice(chunk);
        }
        if sha256(&state) != self.manifest.sha256 {
            self.clear();
            return AssemblyOutcome::Corrupt;
        }
        AssemblyOutcome::Done(state)
    }
}

/// The chunked transfer payload: the application's folded state plus the
/// replica resume data a receiver needs to continue the shared log
/// without the applied history.
///
/// * `applied_len` — absolute applied-command count the fold covers (the
///   installer's new applied base);
/// * `dedup` — the `(command, slot)` dedup-window entries still live at
///   the snapshot cut (commands applied within the dedup horizon before
///   the cut), in apply order. A pure function of the shared committed
///   sequence, so every replica folds the byte-identical window;
/// * `app` — the [`App`](../../gencon_app/trait.App.html)-folded state
///   bytes, opaque at this layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FoldedState<V> {
    /// Applied commands covered by the fold.
    pub applied_len: u64,
    /// Live dedup-window `(command, applied_slot)` pairs at the cut.
    pub dedup: Vec<(V, u64)>,
    /// Application-folded state bytes.
    pub app: Vec<u8>,
}

impl<V: Value + Wire> Wire for FoldedState<V> {
    fn encode(&self, buf: &mut BytesMut) {
        self.applied_len.encode(buf);
        (self.dedup.len() as u32).encode(buf);
        for (cmd, slot) in &self.dedup {
            cmd.encode(buf);
            slot.encode(buf);
        }
        (self.app.len() as u32).encode(buf);
        buf.put_slice(&self.app);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let applied_len = u64::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        // Per-frame sanity: a pair encodes to ≥ 9 bytes, so a count
        // beyond the remaining payload is garbage — no fixed cap needed
        // (the chunked protocol already bounds the assembled size).
        if len > buf.remaining() {
            return Err(WireError::TooLong(len));
        }
        let mut dedup = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            let cmd = V::decode(buf)?;
            let slot = u64::decode(buf)?;
            dedup.push((cmd, slot));
        }
        let app_len = u32::decode(buf)? as usize;
        if app_len > buf.remaining() {
            return Err(WireError::TooLong(app_len));
        }
        let app = buf.split_to(app_len).to_vec();
        if buf.remaining() > 0 {
            return Err(WireError::TooLong(buf.remaining()));
        }
        Ok(FoldedState {
            applied_len,
            dedup,
            app,
        })
    }
}

/// Encodes applied `(command, slot)` pairs — the codec `LogApp` (the
/// full-history application) folds its state with, and the WAL-replay
/// tail format.
#[must_use]
pub fn encode_state<V: Value + Wire>(pairs: &[(V, u64)]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    (pairs.len() as u32).encode(&mut buf);
    for (cmd, slot) in pairs {
        cmd.encode(&mut buf);
        slot.encode(&mut buf);
    }
    buf.freeze().to_vec()
}

/// Decodes applied `(command, slot)` pairs (see [`encode_state`]).
/// Rejects pair counts beyond the available bytes and trailing garbage;
/// there is **no fixed command-count cap** — state size is bounded by the
/// chunked transfer geometry, not by this codec.
///
/// # Errors
///
/// Returns [`WireError`] on truncated input, oversized counts or
/// trailing garbage.
pub fn decode_state<V: Value + Wire>(state: &[u8]) -> Result<Vec<(V, u64)>, WireError> {
    let mut buf = Bytes::from(state);
    let len = u32::decode(&mut buf)? as usize;
    // Each pair encodes to ≥ 9 bytes; a count beyond the remaining
    // payload cannot be honest (per-frame sanity in place of the old
    // MAX_SNAPSHOT_CMDS history ceiling).
    if len > buf.remaining() {
        return Err(WireError::TooLong(len));
    }
    let mut pairs = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let cmd = V::decode(&mut buf)?;
        let slot = u64::decode(&mut buf)?;
        pairs.push((cmd, slot));
    }
    if buf.remaining() > 0 {
        return Err(WireError::TooLong(buf.remaining()));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_core::{ConsensusMsg, DecisionMsg};
    use gencon_types::{Phase, Round};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let mut buf = bytes.clone();
        let back = T::decode(&mut buf).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(buf.remaining(), 0, "no trailing bytes");
    }

    fn sample_manifest() -> SnapshotManifest {
        SnapshotManifest::describe(512, 4_000, &vec![0xAB; CHUNK_BYTES + 100])
    }

    #[test]
    fn manifest_and_frames_roundtrip() {
        roundtrip(sample_manifest());
        roundtrip(SyncFrame::<ConsensusMsg<u64>>::SnapshotRequest {
            sender: ProcessId::new(3),
            have_slot: 17,
        });
        roundtrip(SyncFrame::<ConsensusMsg<u64>>::Manifest {
            sender: ProcessId::new(1),
            manifest: sample_manifest(),
        });
        roundtrip(SyncFrame::<ConsensusMsg<u64>>::ChunkRequest {
            sender: ProcessId::new(2),
            upto_slot: 512,
            index: 1,
        });
        roundtrip(SyncFrame::<ConsensusMsg<u64>>::Chunk {
            sender: ProcessId::new(0),
            upto_slot: 512,
            index: 1,
            crc: crc32(&[1, 2, 3]),
            bytes: vec![1, 2, 3],
        });
        roundtrip(SyncFrame::Round(Envelope {
            sender: ProcessId::new(2),
            round: Round::new(9),
            msg: ConsensusMsg::<u64>::Decision(
                Phase::new(3),
                DecisionMsg {
                    vote: 7,
                    ts: Phase::new(3),
                },
            ),
        }));
    }

    #[test]
    fn manifest_geometry() {
        let m = sample_manifest();
        assert!(m.consistent());
        assert_eq!(m.chunks, 2);
        assert_eq!(m.chunk_len(0), CHUNK_BYTES);
        assert_eq!(m.chunk_len(1), 100);
        assert_eq!(m.chunk_len(2), 0);
        let empty = SnapshotManifest::describe(8, 0, &[]);
        assert!(empty.consistent());
        assert_eq!(empty.chunks, 0);
        let mut broken = m;
        broken.chunks = 9;
        assert!(!broken.consistent());
    }

    #[test]
    fn chunk_slicing_covers_the_state() {
        let state: Vec<u8> = (0..(2 * CHUNK_BYTES + 7)).map(|i| i as u8).collect();
        let m = SnapshotManifest::describe(64, 10, &state);
        assert_eq!(m.chunks, 3);
        let mut whole = Vec::new();
        for i in 0..m.chunks {
            whole.extend_from_slice(m.chunk_of(&state, i).unwrap());
        }
        assert_eq!(whole, state);
        assert!(m.chunk_of(&state, 3).is_none());
        assert!(m.chunk_of(&state[1..], 0).is_none(), "length mismatch");
    }

    #[test]
    fn assembly_accepts_only_valid_chunks_and_verifies_sha() {
        let state: Vec<u8> = (0..(CHUNK_BYTES + 50)).map(|i| (i * 7) as u8).collect();
        let m = SnapshotManifest::describe(128, 99, &state);
        let mut asm = ChunkAssembly::new(m).unwrap();
        assert_eq!(asm.missing(10), vec![0, 1]);
        assert_eq!(asm.finish(), AssemblyOutcome::Incomplete);

        let c1 = m.chunk_of(&state, 1).unwrap().to_vec();
        // Wrong CRC rejected.
        assert!(!asm.accept(1, crc32(&c1).wrapping_add(1), c1.clone()));
        // Wrong length rejected.
        assert!(!asm.accept(1, crc32(&c1[..10]), c1[..10].to_vec()));
        // Out-of-range index rejected.
        assert!(!asm.accept(2, crc32(&c1), c1.clone()));
        // Valid chunk accepted once.
        assert!(asm.accept(1, crc32(&c1), c1.clone()));
        assert!(!asm.accept(1, crc32(&c1), c1), "duplicate rejected");
        assert_eq!(asm.missing(10), vec![0]);

        let c0 = m.chunk_of(&state, 0).unwrap().to_vec();
        assert!(asm.accept(0, crc32(&c0), c0));
        assert!(asm.complete());
        assert_eq!(asm.finish(), AssemblyOutcome::Done(state));
    }

    #[test]
    fn assembly_discards_lying_chunks_on_sha_mismatch() {
        let state: Vec<u8> = vec![9; 100];
        let m = SnapshotManifest::describe(8, 5, &state);
        let mut asm = ChunkAssembly::new(m).unwrap();
        // A chunk with a *valid CRC over wrong bytes* — what a Byzantine
        // voucher would serve. Accepted at the CRC layer...
        let lie = vec![8; 100];
        assert!(asm.accept(0, crc32(&lie), lie));
        // ...but the SHA gate catches it and clears the fetch.
        assert_eq!(asm.finish(), AssemblyOutcome::Corrupt);
        assert_eq!(asm.have(), 0);
        // The honest chunk then assembles fine.
        assert!(asm.accept(0, crc32(&state), state.clone()));
        assert_eq!(asm.finish(), AssemblyOutcome::Done(state));
    }

    #[test]
    fn inconsistent_manifests_are_refused() {
        let mut m = sample_manifest();
        m.total_len = 3 * CHUNK_BYTES as u64; // ceil ≠ claimed chunk count
        assert!(ChunkAssembly::new(m).is_none());
        let mut m2 = sample_manifest();
        m2.chunks = MAX_CHUNKS + 1;
        assert!(ChunkAssembly::new(m2).is_none());
    }

    #[test]
    fn folded_state_roundtrips_and_rejects_garbage() {
        let fs = FoldedState {
            applied_len: 4_000,
            dedup: (0..50u64).map(|i| (i * 3, 100 + i)).collect(),
            app: vec![1, 2, 3, 4, 5],
        };
        roundtrip(fs.clone());
        let bytes = fs.to_bytes();
        for cut in 0..bytes.len() {
            let mut b = bytes.slice(..cut);
            assert!(FoldedState::<u64>::decode(&mut b).is_err());
        }
        let mut padded = BytesMut::new();
        padded.put_slice(&bytes);
        padded.put_u8(0);
        assert!(FoldedState::<u64>::decode(&mut padded.freeze()).is_err());
    }

    #[test]
    fn sender_accessor_covers_all_variants() {
        let frames = [
            SyncFrame::<u64>::SnapshotRequest {
                sender: ProcessId::new(5),
                have_slot: 0,
            },
            SyncFrame::<u64>::Manifest {
                sender: ProcessId::new(5),
                manifest: sample_manifest(),
            },
            SyncFrame::<u64>::ChunkRequest {
                sender: ProcessId::new(5),
                upto_slot: 1,
                index: 0,
            },
            SyncFrame::<u64>::Chunk {
                sender: ProcessId::new(5),
                upto_slot: 1,
                index: 0,
                crc: 0,
                bytes: Vec::new(),
            },
        ];
        for f in frames {
            assert_eq!(f.sender(), ProcessId::new(5));
        }
    }

    #[test]
    fn state_roundtrips_and_rejects_garbage() {
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i * 7, i / 3)).collect();
        let state = encode_state(&pairs);
        assert_eq!(decode_state::<u64>(&state).unwrap(), pairs);
        // Truncations are rejected.
        for cut in 0..state.len() {
            assert!(decode_state::<u64>(&state[..cut]).is_err());
        }
        // Trailing bytes are rejected.
        let mut padded = state.clone();
        padded.push(0);
        assert!(decode_state::<u64>(&padded).is_err());
    }

    #[test]
    fn oversized_lengths_are_rejected() {
        // Pair count beyond the available bytes.
        let mut buf = BytesMut::new();
        u32::MAX.encode(&mut buf);
        assert!(matches!(
            decode_state::<u64>(&buf.freeze()),
            Err(WireError::TooLong(_))
        ));
        // Chunk payload over the per-frame cap.
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        ProcessId::new(0).encode(&mut buf);
        0u64.encode(&mut buf);
        0u32.encode(&mut buf);
        0u32.encode(&mut buf);
        ((CHUNK_BYTES + 1) as u32).encode(&mut buf);
        let mut b = buf.freeze();
        assert!(matches!(
            SyncFrame::<u64>::decode(&mut b),
            Err(WireError::TooLong(_))
        ));
        // Manifest chunk count over the sanity ceiling.
        let mut buf = BytesMut::new();
        1u64.encode(&mut buf);
        1u64.encode(&mut buf);
        (MAX_CHUNKS + 1).encode(&mut buf);
        let mut b = buf.freeze();
        assert!(matches!(
            SnapshotManifest::decode(&mut b),
            Err(WireError::TooLong(_))
        ));
    }

    #[test]
    fn bad_tags_are_rejected() {
        // Tag 3 was the retired single-frame SnapshotResponse; it must
        // not decode any more.
        for tag in [0u8, 3, 9] {
            let mut buf = Bytes::from(vec![tag, 0, 0, 0, 0]);
            assert_eq!(
                SyncFrame::<u64>::decode(&mut buf),
                Err(WireError::BadTag(tag))
            );
        }
    }
}
