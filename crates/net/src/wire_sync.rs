//! Wire encodings for snapshot **state transfer**: the frames a laggard
//! and its peers exchange when the laggard's gap exceeds the peers'
//! in-memory claim horizon (compacted slots cannot be re-claimed — the
//! snapshot is the only copy left).
//!
//! A `gencon-server` node no longer puts bare [`Envelope`]s on the mesh;
//! every peer frame is a [`SyncFrame`]:
//!
//! * `Round(Envelope<M>)` — the normal per-round consensus bundle;
//! * `SnapshotRequest` — "my contiguous log ends at `have_slot`; if your
//!   snapshot reaches further, send it";
//! * `SnapshotResponse` — a full snapshot: metadata ([`SnapshotMeta`])
//!   plus the opaque state bytes. The receiver verifies
//!   `sha256(state) == state_hash` and installs only once `b + 1`
//!   distinct senders vouch for the same metadata — at least one is
//!   honest, so by per-slot Agreement the state is the real prefix.
//!
//! The state payload is itself wire-encoded applied `(command, slot)`
//! pairs — see [`encode_state`]/[`decode_state`] — and every decoder
//! validates lengths against hard caps before allocating, as everywhere
//! else in this crate.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gencon_types::{ProcessId, Value};

use crate::wire::{Envelope, Wire, WireError};

/// Cap on snapshot state bytes a decoder accepts (snapshots are bigger
/// than round frames, so they get their own cap).
pub const MAX_SNAPSHOT_BYTES: usize = 8 << 20;

/// Cap on applied pairs inside a decoded snapshot state.
pub const MAX_SNAPSHOT_CMDS: usize = 1 << 20;

/// Verifiable description of a snapshot (mirrors `gencon_store`'s
/// metadata without the dependency — the store is below the wire in the
/// crate DAG).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapshotMeta {
    /// Every slot below this is covered by the snapshot.
    pub upto_slot: u64,
    /// Applied commands the state encodes.
    pub applied_len: u64,
    /// SHA-256 of the state bytes.
    pub state_hash: [u8; 32],
}

impl Wire for SnapshotMeta {
    fn encode(&self, buf: &mut BytesMut) {
        self.upto_slot.encode(buf);
        self.applied_len.encode(buf);
        buf.put_slice(&self.state_hash);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let upto_slot = u64::decode(buf)?;
        let applied_len = u64::decode(buf)?;
        if buf.remaining() < 32 {
            return Err(WireError::UnexpectedEof);
        }
        let mut state_hash = [0u8; 32];
        state_hash.copy_from_slice(&buf.split_to(32));
        Ok(SnapshotMeta {
            upto_slot,
            applied_len,
            state_hash,
        })
    }
}

/// Every frame a `gencon-server` node puts on the peer mesh.
#[derive(Clone, PartialEq, Debug)]
pub enum SyncFrame<M> {
    /// A normal consensus round frame.
    Round(Envelope<M>),
    /// A laggard asking peers for a snapshot past `have_slot`.
    SnapshotRequest {
        /// Claimed sender (authenticated at the transport layer, like
        /// [`Envelope::sender`]).
        sender: ProcessId,
        /// The requester's contiguous committed log ends here.
        have_slot: u64,
    },
    /// A peer's snapshot, answering a request.
    SnapshotResponse {
        /// Claimed sender (transport-authenticated).
        sender: ProcessId,
        /// Verifiable snapshot description.
        meta: SnapshotMeta,
        /// Opaque state bytes (hash-checked against `meta.state_hash`).
        state: Vec<u8>,
    },
}

impl<M> SyncFrame<M> {
    /// The transport-authenticated sender this frame claims.
    #[must_use]
    pub fn sender(&self) -> ProcessId {
        match self {
            SyncFrame::Round(env) => env.sender,
            SyncFrame::SnapshotRequest { sender, .. }
            | SyncFrame::SnapshotResponse { sender, .. } => *sender,
        }
    }
}

impl<M: Wire> Wire for SyncFrame<M> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SyncFrame::Round(env) => {
                buf.put_u8(1);
                env.encode(buf);
            }
            SyncFrame::SnapshotRequest { sender, have_slot } => {
                buf.put_u8(2);
                sender.encode(buf);
                have_slot.encode(buf);
            }
            SyncFrame::SnapshotResponse {
                sender,
                meta,
                state,
            } => {
                buf.put_u8(3);
                sender.encode(buf);
                meta.encode(buf);
                (state.len() as u32).encode(buf);
                buf.put_slice(state);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(SyncFrame::Round(Envelope::decode(buf)?)),
            2 => Ok(SyncFrame::SnapshotRequest {
                sender: ProcessId::decode(buf)?,
                have_slot: u64::decode(buf)?,
            }),
            3 => {
                let sender = ProcessId::decode(buf)?;
                let meta = SnapshotMeta::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                if len > MAX_SNAPSHOT_BYTES {
                    return Err(WireError::TooLong(len));
                }
                if buf.remaining() < len {
                    return Err(WireError::UnexpectedEof);
                }
                Ok(SyncFrame::SnapshotResponse {
                    sender,
                    meta,
                    state: buf.split_to(len).to_vec(),
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Encodes applied `(command, slot)` pairs as snapshot state bytes.
#[must_use]
pub fn encode_state<V: Value + Wire>(pairs: &[(V, u64)]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    (pairs.len() as u32).encode(&mut buf);
    for (cmd, slot) in pairs {
        cmd.encode(&mut buf);
        slot.encode(&mut buf);
    }
    buf.freeze().to_vec()
}

/// Decodes snapshot state bytes back into applied `(command, slot)`
/// pairs. Rejects oversized pair counts and trailing bytes.
///
/// # Errors
///
/// Returns [`WireError`] on truncated input, oversized counts or
/// trailing garbage.
pub fn decode_state<V: Value + Wire>(state: &[u8]) -> Result<Vec<(V, u64)>, WireError> {
    let mut buf = Bytes::from(state);
    let len = u32::decode(&mut buf)? as usize;
    if len > MAX_SNAPSHOT_CMDS {
        return Err(WireError::TooLong(len));
    }
    let mut pairs = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let cmd = V::decode(&mut buf)?;
        let slot = u64::decode(&mut buf)?;
        pairs.push((cmd, slot));
    }
    if buf.remaining() > 0 {
        return Err(WireError::TooLong(buf.remaining()));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_core::{ConsensusMsg, DecisionMsg};
    use gencon_types::{Phase, Round};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let mut buf = bytes.clone();
        let back = T::decode(&mut buf).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(buf.remaining(), 0, "no trailing bytes");
    }

    fn sample_meta() -> SnapshotMeta {
        SnapshotMeta {
            upto_slot: 512,
            applied_len: 4_000,
            state_hash: [0xAB; 32],
        }
    }

    #[test]
    fn meta_and_frames_roundtrip() {
        roundtrip(sample_meta());
        roundtrip(SyncFrame::<ConsensusMsg<u64>>::SnapshotRequest {
            sender: ProcessId::new(3),
            have_slot: 17,
        });
        roundtrip(SyncFrame::<ConsensusMsg<u64>>::SnapshotResponse {
            sender: ProcessId::new(1),
            meta: sample_meta(),
            state: vec![1, 2, 3, 4, 5],
        });
        roundtrip(SyncFrame::Round(Envelope {
            sender: ProcessId::new(2),
            round: Round::new(9),
            msg: ConsensusMsg::<u64>::Decision(
                Phase::new(3),
                DecisionMsg {
                    vote: 7,
                    ts: Phase::new(3),
                },
            ),
        }));
    }

    #[test]
    fn sender_accessor_covers_all_variants() {
        let req = SyncFrame::<u64>::SnapshotRequest {
            sender: ProcessId::new(5),
            have_slot: 0,
        };
        assert_eq!(req.sender(), ProcessId::new(5));
        let resp = SyncFrame::<u64>::SnapshotResponse {
            sender: ProcessId::new(6),
            meta: sample_meta(),
            state: Vec::new(),
        };
        assert_eq!(resp.sender(), ProcessId::new(6));
    }

    #[test]
    fn state_roundtrips_and_rejects_garbage() {
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i * 7, i / 3)).collect();
        let state = encode_state(&pairs);
        assert_eq!(decode_state::<u64>(&state).unwrap(), pairs);
        // Truncations are rejected.
        for cut in 0..state.len() {
            assert!(decode_state::<u64>(&state[..cut]).is_err());
        }
        // Trailing bytes are rejected.
        let mut padded = state.clone();
        padded.push(0);
        assert!(decode_state::<u64>(&padded).is_err());
    }

    #[test]
    fn oversized_snapshot_lengths_are_rejected() {
        // Pair count over the cap.
        let mut buf = BytesMut::new();
        ((MAX_SNAPSHOT_CMDS + 1) as u32).encode(&mut buf);
        assert!(matches!(
            decode_state::<u64>(&buf.freeze()),
            Err(WireError::TooLong(_))
        ));
        // Response state length over the cap.
        let mut buf = BytesMut::new();
        buf.put_u8(3);
        ProcessId::new(0).encode(&mut buf);
        sample_meta().encode(&mut buf);
        ((MAX_SNAPSHOT_BYTES + 1) as u32).encode(&mut buf);
        let mut b = buf.freeze();
        assert!(matches!(
            SyncFrame::<u64>::decode(&mut b),
            Err(WireError::TooLong(_))
        ));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut buf = Bytes::from_static(&[9, 0, 0, 0, 0]);
        assert_eq!(
            SyncFrame::<u64>::decode(&mut buf),
            Err(WireError::BadTag(9))
        );
    }
}
