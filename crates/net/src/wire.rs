//! Hand-rolled binary wire format for consensus messages.
//!
//! Length-prefixed, little-endian, no self-description — the format is
//! fixed by the protocol version on both ends, as in most replicated-state
//! machines. Every decoder validates lengths against hard caps so a
//! Byzantine peer cannot force large allocations.
//!
//! The encoded size of each message is also what experiment E6
//! (message/state complexity per class) measures: class-1 messages carry
//! just a vote, class-2 vote+timestamp, class-3 additionally the history.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gencon_core::{ConsensusMsg, DecisionMsg, History, SelectionMsg, ValidationMsg};
use gencon_types::{Phase, ProcessId, ProcessSet, Round, Value};

/// Upper bound on decoded collections (history entries, relay entries).
pub const MAX_COLLECTION: usize = 4096;
/// Upper bound on decoded byte strings.
pub const MAX_BYTES: usize = 1 << 20;

/// Error decoding a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte was invalid.
    BadTag(u8),
    /// A length field exceeded its cap.
    TooLong(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of frame"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::TooLong(l) => write!(f, "length {l} exceeds the decoder cap"),
        }
    }
}

impl std::error::Error for WireError {}

/// A value with a binary wire representation.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated input, bad tags or oversized
    /// lengths.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// The exact encoded length in bytes.
    fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        return Err(WireError::UnexpectedEof);
    }
    Ok(())
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        Ok(buf.get_u8())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 4)?;
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_BYTES {
            return Err(WireError::TooLong(len));
        }
        need(buf, len)?;
        let bytes = buf.split_to(len);
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag(0xff))
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_BYTES {
            return Err(WireError::TooLong(len));
        }
        need(buf, len)?;
        Ok(buf.split_to(len).to_vec())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for ProcessId {
    fn encode(&self, buf: &mut BytesMut) {
        (self.index() as u32).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let i = u32::decode(buf)? as usize;
        if i >= gencon_types::MAX_PROCESSES {
            return Err(WireError::TooLong(i));
        }
        Ok(ProcessId::new(i))
    }
}

impl Wire for Phase {
    fn encode(&self, buf: &mut BytesMut) {
        self.number().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Phase::new(u64::decode(buf)?))
    }
}

impl Wire for Round {
    fn encode(&self, buf: &mut BytesMut) {
        self.number().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = u64::decode(buf)?;
        if n == 0 {
            return Err(WireError::BadTag(0));
        }
        Ok(Round::new(n))
    }
}

impl Wire for ProcessSet {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for p in self.iter() {
            p.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > gencon_types::MAX_PROCESSES {
            return Err(WireError::TooLong(len));
        }
        let mut set = ProcessSet::new();
        for _ in 0..len {
            set.insert(ProcessId::decode(buf)?);
        }
        Ok(set)
    }
}

impl<V: Value + Wire> Wire for History<V> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for (v, phase) in self.iter() {
            v.encode(buf);
            phase.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_COLLECTION {
            return Err(WireError::TooLong(len));
        }
        let mut h = History::new();
        for _ in 0..len {
            let v = V::decode(buf)?;
            let phase = Phase::decode(buf)?;
            h.record(v, phase);
        }
        Ok(h)
    }
}

impl<V: Value + Wire> Wire for SelectionMsg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        self.vote.encode(buf);
        self.ts.encode(buf);
        self.history.encode(buf);
        self.selector.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(SelectionMsg {
            vote: V::decode(buf)?,
            ts: Phase::decode(buf)?,
            history: History::decode(buf)?,
            selector: ProcessSet::decode(buf)?,
        })
    }
}

impl<V: Value + Wire> Wire for ValidationMsg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        self.select.encode(buf);
        self.validators.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ValidationMsg {
            select: Option::<V>::decode(buf)?,
            validators: ProcessSet::decode(buf)?,
        })
    }
}

impl<V: Value + Wire> Wire for DecisionMsg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        self.vote.encode(buf);
        self.ts.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(DecisionMsg {
            vote: V::decode(buf)?,
            ts: Phase::decode(buf)?,
        })
    }
}

impl<V: Value + Wire> Wire for ConsensusMsg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ConsensusMsg::Selection(phase, m) => {
                buf.put_u8(1);
                phase.encode(buf);
                m.encode(buf);
            }
            ConsensusMsg::Validation(phase, m) => {
                buf.put_u8(2);
                phase.encode(buf);
                m.encode(buf);
            }
            ConsensusMsg::Decision(phase, m) => {
                buf.put_u8(3);
                phase.encode(buf);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(ConsensusMsg::Selection(
                Phase::decode(buf)?,
                SelectionMsg::decode(buf)?,
            )),
            2 => Ok(ConsensusMsg::Validation(
                Phase::decode(buf)?,
                ValidationMsg::decode(buf)?,
            )),
            3 => Ok(ConsensusMsg::Decision(
                Phase::decode(buf)?,
                DecisionMsg::decode(buf)?,
            )),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A routed frame: who sent it and for which round.
#[derive(Clone, PartialEq, Debug)]
pub struct Envelope<M> {
    /// Claimed sender (the transport layer authenticates it; see
    /// [`crate::runtime`]).
    pub sender: ProcessId,
    /// The closed round this message belongs to.
    pub round: Round,
    /// Protocol payload.
    pub msg: M,
}

impl<M: Wire> Wire for Envelope<M> {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.round.encode(buf);
        self.msg.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Envelope {
            sender: ProcessId::decode(buf)?,
            round: Round::decode(buf)?,
            msg: M::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len());
        let mut buf = bytes.clone();
        let back = T::decode(&mut buf).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(buf.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("hello world"));
        roundtrip(String::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
    }

    #[test]
    fn id_and_round_roundtrips() {
        roundtrip(ProcessId::new(0));
        roundtrip(ProcessId::new(255));
        roundtrip(Phase::ZERO);
        roundtrip(Phase::new(u64::MAX));
        roundtrip(Round::new(1));
        let set: ProcessSet = [0usize, 3, 77].iter().map(|&i| ProcessId::new(i)).collect();
        roundtrip(set);
        roundtrip(ProcessSet::new());
    }

    #[test]
    fn message_roundtrips() {
        let mut h = History::initial(9u64);
        h.record(5, Phase::new(2));
        roundtrip(SelectionMsg {
            vote: 5u64,
            ts: Phase::new(2),
            history: h,
            selector: ProcessSet::range(0, 4),
        });
        roundtrip(ValidationMsg {
            select: Some(5u64),
            validators: ProcessSet::range(0, 4),
        });
        roundtrip(ValidationMsg::<u64> {
            select: None,
            validators: ProcessSet::new(),
        });
        roundtrip(DecisionMsg {
            vote: 5u64,
            ts: Phase::ZERO,
        });
    }

    #[test]
    fn consensus_msg_roundtrips() {
        roundtrip(ConsensusMsg::Selection(
            Phase::new(3),
            SelectionMsg {
                vote: 1u64,
                ts: Phase::new(1),
                history: History::initial(1),
                selector: ProcessSet::new(),
            },
        ));
        roundtrip(ConsensusMsg::<u64>::Validation(
            Phase::new(3),
            ValidationMsg {
                select: Some(1),
                validators: ProcessSet::range(0, 3),
            },
        ));
        roundtrip(ConsensusMsg::<u64>::Decision(
            Phase::new(3),
            DecisionMsg {
                vote: 1,
                ts: Phase::new(3),
            },
        ));
    }

    #[test]
    fn envelope_roundtrip() {
        roundtrip(Envelope {
            sender: ProcessId::new(2),
            round: Round::new(9),
            msg: ConsensusMsg::<u64>::Decision(
                Phase::new(3),
                DecisionMsg {
                    vote: 7,
                    ts: Phase::new(3),
                },
            ),
        });
    }

    #[test]
    fn truncated_input_is_rejected() {
        let full = 0xdead_beefu32.to_bytes();
        let mut short = full.slice(0..3);
        assert_eq!(u32::decode(&mut short), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut buf = Bytes::from_static(&[7]);
        assert_eq!(bool::decode(&mut buf), Err(WireError::BadTag(7)));
        let mut buf2 = Bytes::from_static(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            ConsensusMsg::<u64>::decode(&mut buf2),
            Err(WireError::BadTag(9))
        );
    }

    #[test]
    fn oversized_lengths_are_rejected() {
        // String claiming 2 MB
        let mut buf = BytesMut::new();
        ((MAX_BYTES + 1) as u32).encode(&mut buf);
        let mut b = buf.freeze();
        assert!(matches!(String::decode(&mut b), Err(WireError::TooLong(_))));
        // History claiming 1M entries
        let mut buf2 = BytesMut::new();
        ((MAX_COLLECTION + 1) as u32).encode(&mut buf2);
        let mut b2 = buf2.freeze();
        assert!(matches!(
            History::<u64>::decode(&mut b2),
            Err(WireError::TooLong(_))
        ));
    }

    #[test]
    fn round_zero_is_invalid() {
        let mut buf = BytesMut::new();
        0u64.encode(&mut buf);
        let mut b = buf.freeze();
        assert_eq!(Round::decode(&mut b), Err(WireError::BadTag(0)));
    }

    #[test]
    fn class_profiles_have_increasing_sizes() {
        // The E6 claim in miniature: vote-only < vote+ts < full messages.
        let vote_only = SelectionMsg {
            vote: 1u64,
            ts: Phase::ZERO,
            history: History::new(),
            selector: ProcessSet::new(),
        };
        let mut h = History::initial(1u64);
        h.record(1, Phase::new(1));
        h.record(1, Phase::new(2));
        let full = SelectionMsg {
            vote: 1u64,
            ts: Phase::new(2),
            history: h,
            selector: ProcessSet::new(),
        };
        assert!(full.encoded_len() > vote_only.encoded_len());
    }

    #[test]
    fn error_display() {
        assert!(WireError::UnexpectedEof
            .to_string()
            .contains("end of frame"));
        assert!(WireError::BadTag(3).to_string().contains('3'));
        assert!(WireError::TooLong(9).to_string().contains('9'));
    }
}
