//! Point-to-point transports: in-process channels and localhost TCP.
//!
//! A [`Transport`] moves opaque frames between processes and *authenticates
//! the sender* at the transport layer — the in-process transport by
//! construction, the TCP transport by pinning each connection to the peer
//! id announced in its hello frame. This discharges the "honest processes
//! cannot be impersonated" assumption of §2.1 for deployments without
//! authenticators; Byzantine-resilient deployments additionally sign
//! payloads with `gencon-crypto` authenticators via the `Pcons` stack.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

use gencon_types::ProcessId;

/// A frame-oriented, sender-authenticated transport.
pub trait Transport: Send {
    /// This endpoint's process id.
    fn local(&self) -> ProcessId;

    /// Number of processes in the mesh (including this one).
    fn peers(&self) -> usize;

    /// Sends a frame to `to` (best-effort; lost frames model bad periods).
    fn send(&mut self, to: ProcessId, frame: Bytes);

    /// Receives the next frame within `timeout`, with its authenticated
    /// sender. `None` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)>;
}

/// An in-process transport: one crossbeam channel per process.
///
/// ```
/// use gencon_net::{ChannelTransport, Transport};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let mut mesh = ChannelTransport::mesh(3);
/// let mut a = mesh.remove(0);
/// let mut b = mesh.remove(0);
/// a.send(b.local(), Bytes::from_static(b"hi"));
/// let (from, frame) = b.recv_timeout(Duration::from_millis(100)).unwrap();
/// assert_eq!(from, a.local());
/// assert_eq!(&frame[..], b"hi");
/// ```
pub struct ChannelTransport {
    id: ProcessId,
    inbox: Receiver<(ProcessId, Bytes)>,
    peers: Vec<Sender<(ProcessId, Bytes)>>,
}

impl ChannelTransport {
    /// Builds a fully connected mesh of `n` endpoints.
    #[must_use]
    pub fn mesh(n: usize) -> Vec<ChannelTransport> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| ChannelTransport {
                id: ProcessId::new(i),
                inbox,
                peers: senders.clone(),
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn local(&self) -> ProcessId {
        self.id
    }

    fn peers(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, to: ProcessId, frame: Bytes) {
        if let Some(peer) = self.peers.get(to.index()) {
            // A dropped receiver models a crashed process; ignore.
            let _ = peer.send((self.id, frame));
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

/// A localhost/LAN TCP transport.
///
/// Each endpoint listens on its own address and dials every peer; every
/// connection starts with a 4-byte hello carrying the dialer's id, and all
/// subsequent frames are length-prefixed. Frames received on a connection
/// are attributed to the hello id **pinned at accept time** — a peer cannot
/// claim another's identity later.
pub struct TcpTransport {
    id: ProcessId,
    inbox: Receiver<(ProcessId, Bytes)>,
    outgoing: Vec<Option<Arc<Mutex<TcpStream>>>>,
}

impl TcpTransport {
    /// Connects a full mesh: `addrs[i]` is the listen address of process
    /// `i`; this endpoint is `id` and must be able to bind `addrs[id]`.
    ///
    /// Dials peers with bounded retries (peers may start later).
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or dialing peers past the retry
    /// budget.
    pub fn connect_mesh(id: ProcessId, addrs: &[SocketAddr]) -> std::io::Result<TcpTransport> {
        let n = addrs.len();
        let listener = TcpListener::bind(addrs[id.index()])?;
        let (tx, rx) = channel::unbounded();

        // Acceptor: every inbound connection is a peer's sending side.
        let expected_inbound = n - 1;
        let acceptor_tx = tx.clone();
        std::thread::spawn(move || {
            for _ in 0..expected_inbound {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                let tx = acceptor_tx.clone();
                std::thread::spawn(move || reader_loop(stream, tx));
            }
        });

        // Dial every peer; our outbound side carries our frames to them.
        let mut outgoing: Vec<Option<Arc<Mutex<TcpStream>>>> = (0..n).map(|_| None).collect();
        for (peer, addr) in addrs.iter().enumerate() {
            if peer == id.index() {
                continue;
            }
            let stream = dial_with_retry(*addr, 50, Duration::from_millis(100))?;
            let mut hello = stream;
            hello.write_all(&(id.index() as u32).to_le_bytes())?;
            hello.set_nodelay(true).ok();
            outgoing[peer] = Some(Arc::new(Mutex::new(hello)));
        }

        Ok(TcpTransport {
            id,
            inbox: rx,
            outgoing,
        })
    }
}

fn dial_with_retry(
    addr: SocketAddr,
    attempts: u32,
    backoff: Duration,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(backoff);
            }
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("dial failed")))
}

/// Reads the hello id, then length-prefixed frames, forwarding them tagged
/// with the pinned id.
fn reader_loop(mut stream: TcpStream, tx: Sender<(ProcessId, Bytes)>) {
    let mut id_buf = [0u8; 4];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let claimed = u32::from_le_bytes(id_buf) as usize;
    if claimed >= gencon_types::MAX_PROCESSES {
        return;
    }
    let sender_id = ProcessId::new(claimed);
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > crate::wire::MAX_BYTES {
            return; // protocol violation: drop the connection
        }
        let mut frame = vec![0u8; len];
        if stream.read_exact(&mut frame).is_err() {
            return;
        }
        if tx.send((sender_id, Bytes::from(frame))).is_err() {
            return;
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> ProcessId {
        self.id
    }

    fn peers(&self) -> usize {
        self.outgoing.len()
    }

    fn send(&mut self, to: ProcessId, frame: Bytes) {
        if to == self.id {
            return; // self-delivery handled by the runtime
        }
        let Some(Some(peer)) = self.outgoing.get(to.index()) else {
            return;
        };
        let mut stream = peer.lock();
        let len = (frame.len() as u32).to_le_bytes();
        // Best-effort: a broken pipe models a crashed/partitioned peer.
        let _ = stream
            .write_all(&len)
            .and_then(|()| stream.write_all(&frame));
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

/// A chaos wrapper: drops outgoing frames with probability `loss` until
/// `good_after` sends have happened — real-runtime bad periods for tests
/// and experiments (the wall-clock analogue of the simulator's [GST]).
///
/// [GST]: https://dl.acm.org/doi/10.1145/42282.42283
pub struct FlakyTransport<T> {
    inner: T,
    loss_permille: u32,
    good_after: u64,
    sends: u64,
    state: u64,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner`: each send before the `good_after`-th is dropped with
    /// probability `loss_permille`/1000 (deterministic per `seed`).
    #[must_use]
    pub fn new(inner: T, loss_permille: u32, good_after: u64, seed: u64) -> Self {
        FlakyTransport {
            inner,
            loss_permille: loss_permille.min(1000),
            good_after,
            sends: 0,
            state: seed | 1,
        }
    }

    /// xorshift64* — deterministic, dependency-free.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn local(&self) -> ProcessId {
        self.inner.local()
    }

    fn peers(&self) -> usize {
        self.inner.peers()
    }

    fn send(&mut self, to: ProcessId, frame: Bytes) {
        self.sends += 1;
        if self.sends <= self.good_after {
            let roll = self.next_rand() % 1000;
            if roll < u64::from(self.loss_permille) {
                return; // dropped: a bad-period loss
            }
        }
        self.inner.send(to, frame);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mesh_routes_frames() {
        let mut mesh = ChannelTransport::mesh(3);
        let id2 = mesh[2].local();
        mesh[0].send(id2, Bytes::from_static(b"x"));
        mesh[1].send(id2, Bytes::from_static(b"y"));
        let mut got = Vec::new();
        for _ in 0..2 {
            let (from, frame) = mesh[2]
                .recv_timeout(Duration::from_millis(200))
                .expect("frame arrives");
            got.push((from.index(), frame));
        }
        got.sort();
        assert_eq!(got[0], (0, Bytes::from_static(b"x")));
        assert_eq!(got[1], (1, Bytes::from_static(b"y")));
    }

    #[test]
    fn channel_recv_times_out() {
        let mut mesh = ChannelTransport::mesh(2);
        assert!(mesh[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn channel_send_to_unknown_is_ignored() {
        let mut mesh = ChannelTransport::mesh(2);
        mesh[0].send(ProcessId::new(9), Bytes::from_static(b"z"));
    }

    #[test]
    fn flaky_transport_drops_then_stabilizes() {
        let mesh = ChannelTransport::mesh(2);
        let mut it = mesh.into_iter();
        let a = it.next().unwrap();
        let mut b = it.next().unwrap();
        // 100% loss for the first 5 sends.
        let mut flaky = FlakyTransport::new(a, 1000, 5, 42);
        assert_eq!(flaky.local(), ProcessId::new(0));
        assert_eq!(flaky.peers(), 2);
        for _ in 0..5 {
            flaky.send(ProcessId::new(1), Bytes::from_static(b"lost"));
        }
        assert!(b.recv_timeout(Duration::from_millis(20)).is_none());
        flaky.send(ProcessId::new(1), Bytes::from_static(b"ok"));
        let (_, frame) = b.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(&frame[..], b"ok");
    }

    #[test]
    fn tcp_mesh_roundtrip() {
        // Bind three ephemeral listeners to discover free ports, then
        // release and reuse them for the mesh.
        let probes: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<SocketAddr> = probes.iter().map(|l| l.local_addr().unwrap()).collect();
        drop(probes);

        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    TcpTransport::connect_mesh(ProcessId::new(i), &addrs).expect("mesh connects")
                })
            })
            .collect();
        let mut nodes: Vec<TcpTransport> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        nodes[0].send(ProcessId::new(1), Bytes::from_static(b"ping"));
        let (from, frame) = nodes[1]
            .recv_timeout(Duration::from_secs(5))
            .expect("tcp frame arrives");
        assert_eq!(from, ProcessId::new(0));
        assert_eq!(&frame[..], b"ping");

        nodes[1].send(ProcessId::new(0), Bytes::from_static(b"pong"));
        let (from2, frame2) = nodes[0]
            .recv_timeout(Duration::from_secs(5))
            .expect("reply arrives");
        assert_eq!(from2, ProcessId::new(1));
        assert_eq!(&frame2[..], b"pong");
    }
}
