//! Point-to-point transports: in-process channels and localhost TCP.
//!
//! A [`Transport`] moves opaque frames between processes and *authenticates
//! the sender* at the transport layer — the in-process transport by
//! construction, the TCP transport by pinning each connection to the peer
//! id announced in its hello frame. This discharges the "honest processes
//! cannot be impersonated" assumption of §2.1 for deployments without
//! authenticators; Byzantine-resilient deployments additionally sign
//! payloads with `gencon-crypto` authenticators via the `Pcons` stack.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

use gencon_types::ProcessId;

/// The detached receive side of a [`Transport`], usable from another
/// thread while the owning transport keeps sending.
///
/// Obtained via [`Transport::split_recv`]; while split, the transport's
/// own `recv_timeout` yields nothing. [`Transport::restore_recv`] rejoins
/// the halves.
pub struct RecvHalf {
    rx: Receiver<(ProcessId, Bytes)>,
}

impl RecvHalf {
    /// Receives the next frame within `timeout`, with its authenticated
    /// sender. `None` on timeout or a closed transport.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A frame-oriented, sender-authenticated transport.
pub trait Transport: Send {
    /// This endpoint's process id.
    fn local(&self) -> ProcessId;

    /// Number of processes in the mesh (including this one).
    fn peers(&self) -> usize;

    /// Sends a frame to `to` (best-effort; lost frames model bad periods).
    fn send(&mut self, to: ProcessId, frame: Bytes);

    /// Receives the next frame within `timeout`, with its authenticated
    /// sender. `None` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)>;

    /// Detaches the receive side so a dedicated ingest thread can drain it
    /// while this transport keeps sending. Transports without a separable
    /// inbox return `None` (the default) and callers fall back to inline
    /// receives.
    fn split_recv(&mut self) -> Option<RecvHalf> {
        None
    }

    /// Reattaches a half taken by [`Transport::split_recv`].
    fn restore_recv(&mut self, half: RecvHalf) {
        let _ = half;
    }
}

/// Swaps `inbox` with a receiver whose sender is dropped immediately, so
/// inline receives report "nothing" while the real half is detached.
fn take_inbox(inbox: &mut Receiver<(ProcessId, Bytes)>) -> RecvHalf {
    let (_dead_tx, dead_rx) = channel::unbounded();
    RecvHalf {
        rx: std::mem::replace(inbox, dead_rx),
    }
}

/// An in-process transport: one crossbeam channel per process.
///
/// ```
/// use gencon_net::{ChannelTransport, Transport};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let mut mesh = ChannelTransport::mesh(3);
/// let mut a = mesh.remove(0);
/// let mut b = mesh.remove(0);
/// a.send(b.local(), Bytes::from_static(b"hi"));
/// let (from, frame) = b.recv_timeout(Duration::from_millis(100)).unwrap();
/// assert_eq!(from, a.local());
/// assert_eq!(&frame[..], b"hi");
/// ```
pub struct ChannelTransport {
    id: ProcessId,
    inbox: Receiver<(ProcessId, Bytes)>,
    peers: Vec<Sender<(ProcessId, Bytes)>>,
}

impl ChannelTransport {
    /// Builds a fully connected mesh of `n` endpoints.
    #[must_use]
    pub fn mesh(n: usize) -> Vec<ChannelTransport> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| ChannelTransport {
                id: ProcessId::new(i),
                inbox,
                peers: senders.clone(),
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn local(&self) -> ProcessId {
        self.id
    }

    fn peers(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, to: ProcessId, frame: Bytes) {
        if let Some(peer) = self.peers.get(to.index()) {
            // A dropped receiver models a crashed process; ignore.
            let _ = peer.send((self.id, frame));
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.inbox.recv_timeout(timeout).ok()
    }

    fn split_recv(&mut self) -> Option<RecvHalf> {
        Some(take_inbox(&mut self.inbox))
    }

    fn restore_recv(&mut self, half: RecvHalf) {
        self.inbox = half.rx;
    }
}

/// A localhost/LAN TCP transport.
///
/// Each endpoint listens on its own address and dials every peer; every
/// connection starts with a 4-byte hello carrying the dialer's id, and all
/// subsequent frames are length-prefixed. Frames received on a connection
/// are attributed to the hello id **pinned at accept time** — a peer cannot
/// claim another's identity later.
///
/// Connections are **self-healing**: the acceptor keeps accepting for the
/// transport's whole lifetime (a restarted peer re-dials and is simply
/// picked up), and an outgoing link whose write fails is redialed in the
/// background with bounded backoff — frames sent while a peer is down are
/// dropped, which is exactly the best-effort/bad-period semantics of the
/// model. Dropping the transport shuts the acceptor down and releases the
/// listen address, so a process restart can rebind the same endpoint.
pub struct TcpTransport {
    id: ProcessId,
    inbox: Receiver<(ProcessId, Bytes)>,
    links: Vec<Option<PeerLink>>,
    closed: Arc<std::sync::atomic::AtomicBool>,
    local_addr: SocketAddr,
}

/// The outgoing side of one peer connection, redialable after failures.
struct PeerLink {
    addr: SocketAddr,
    /// `None` while the connection is down (awaiting redial).
    stream: Arc<Mutex<Option<TcpStream>>>,
    /// A background redial is in flight.
    redialing: Arc<std::sync::atomic::AtomicBool>,
}

impl PeerLink {
    fn up(addr: SocketAddr, stream: TcpStream) -> PeerLink {
        PeerLink {
            addr,
            stream: Arc::new(Mutex::new(Some(stream))),
            redialing: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// Kicks off one background redial unless one is already running.
    /// The event loop never blocks on reconnection; frames sent while the
    /// link is down are dropped (best-effort).
    fn spawn_redial(&self, my_id: ProcessId) {
        use std::sync::atomic::Ordering;
        if self.redialing.swap(true, Ordering::SeqCst) {
            return;
        }
        let addr = self.addr;
        let stream = Arc::clone(&self.stream);
        let redialing = Arc::clone(&self.redialing);
        std::thread::spawn(move || {
            let policy = DialPolicy {
                deadline: Duration::from_secs(2),
                ..DialPolicy::default()
            };
            if let Ok(mut s) = dial_with_backoff(addr, policy) {
                if s.write_all(&(my_id.index() as u32).to_le_bytes()).is_ok() {
                    s.set_nodelay(true).ok();
                    *stream.lock() = Some(s);
                }
            }
            redialing.store(false, Ordering::SeqCst);
        });
    }
}

/// Retry policy for dialing mesh peers that have not bound yet.
///
/// A cluster never starts atomically: deployment staggers process launches
/// by seconds, and a restarted node re-dials peers that are still coming
/// up. Dialing therefore retries with *bounded exponential backoff* —
/// starting at [`DialPolicy::initial_backoff`], doubling up to
/// [`DialPolicy::max_backoff`] — until [`DialPolicy::deadline`] elapses,
/// at which point the mesh connection fails with the last I/O error.
#[derive(Clone, Copy, Debug)]
pub struct DialPolicy {
    /// Total wall-clock budget for establishing one peer connection.
    pub deadline: Duration,
    /// First retry delay after a refused/failed dial.
    pub initial_backoff: Duration,
    /// Backoff cap: delays double up to this bound.
    pub max_backoff: Duration,
}

impl Default for DialPolicy {
    fn default() -> Self {
        DialPolicy {
            deadline: Duration::from_secs(15),
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl TcpTransport {
    /// Connects a full mesh with the default [`DialPolicy`]: `addrs[i]` is
    /// the listen address of process `i`; this endpoint is `id` and must be
    /// able to bind `addrs[id]`.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener, or dialing a peer past the policy
    /// deadline.
    pub fn connect_mesh(id: ProcessId, addrs: &[SocketAddr]) -> std::io::Result<TcpTransport> {
        TcpTransport::connect_mesh_with(id, addrs, DialPolicy::default())
    }

    /// Connects a full mesh, dialing every peer *in parallel* under
    /// `policy`: a peer that binds late delays the mesh by its own lateness
    /// only, not by the sum over peers.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener, or dialing a peer past the policy
    /// deadline.
    pub fn connect_mesh_with(
        id: ProcessId,
        addrs: &[SocketAddr],
        policy: DialPolicy,
    ) -> std::io::Result<TcpTransport> {
        let n = addrs.len();
        let listener = TcpListener::bind(addrs[id.index()])?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = channel::unbounded();
        let closed = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Acceptor: every inbound connection is a peer's sending side.
        // It runs for the transport's whole lifetime — a peer that
        // restarts re-dials and must be accepted, however late. Shutdown
        // (Drop) sets `closed` and nudges the listener awake.
        let acceptor_tx = tx.clone();
        let acceptor_closed = Arc::clone(&closed);
        std::thread::spawn(move || {
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                if acceptor_closed.load(std::sync::atomic::Ordering::SeqCst) {
                    return; // releases the listener for a rebinding restart
                }
                let tx = acceptor_tx.clone();
                std::thread::spawn(move || reader_loop(stream, tx));
            }
        });

        // Dial every peer concurrently; our outbound sides carry our frames.
        let dials: Vec<(usize, std::thread::JoinHandle<std::io::Result<TcpStream>>)> = addrs
            .iter()
            .enumerate()
            .filter(|(peer, _)| *peer != id.index())
            .map(|(peer, addr)| {
                let addr = *addr;
                (
                    peer,
                    std::thread::spawn(move || {
                        let mut stream = dial_with_backoff(addr, policy)?;
                        stream.write_all(&(id.index() as u32).to_le_bytes())?;
                        stream.set_nodelay(true).ok();
                        Ok(stream)
                    }),
                )
            })
            .collect();
        let mut links: Vec<Option<PeerLink>> = (0..n).map(|_| None).collect();
        for (peer, handle) in dials {
            let stream = handle
                .join()
                .map_err(|_| std::io::Error::other("dial thread panicked"))??;
            links[peer] = Some(PeerLink::up(addrs[peer], stream));
        }

        Ok(TcpTransport {
            id,
            inbox: rx,
            links,
            closed,
            local_addr,
        })
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.closed.store(true, std::sync::atomic::Ordering::SeqCst);
        // Nudge the acceptor out of `accept()` so it observes the flag
        // and releases the listen address for a restarted process.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }
}

/// Dials `addr` with bounded exponential backoff until `policy.deadline`.
///
/// Each attempt is itself bounded by the remaining budget
/// (`connect_timeout`), so a black-holed address — SYNs dropped rather
/// than refused — cannot stretch one attempt past the deadline.
fn dial_with_backoff(addr: SocketAddr, policy: DialPolicy) -> std::io::Result<TcpStream> {
    let give_up = Instant::now() + policy.deadline;
    let mut backoff = policy.initial_backoff.max(Duration::from_millis(1));
    loop {
        let now = Instant::now();
        let remaining = give_up
            .checked_duration_since(now)
            .unwrap_or(Duration::from_millis(1))
            .max(Duration::from_millis(1));
        match TcpStream::connect_timeout(&addr, remaining) {
            Ok(s) => return Ok(s),
            Err(e) => {
                let now = Instant::now();
                if now >= give_up {
                    return Err(e);
                }
                std::thread::sleep(backoff.min(give_up - now));
                backoff = (backoff * 2).min(policy.max_backoff);
            }
        }
    }
}

/// Reserves `n` distinct free localhost addresses by probe-binding
/// ephemeral ports and releasing them. Inherently racy (another process
/// can grab a released port), but the standard recipe for tests and
/// local harnesses that must exchange a full address list before any
/// node binds.
///
/// # Errors
///
/// Propagates probe bind/address errors.
pub fn probe_free_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let probes: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    probes.iter().map(TcpListener::local_addr).collect()
}

/// Reads the hello id, then length-prefixed frames, forwarding them tagged
/// with the pinned id.
fn reader_loop(mut stream: TcpStream, tx: Sender<(ProcessId, Bytes)>) {
    let mut id_buf = [0u8; 4];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let claimed = u32::from_le_bytes(id_buf) as usize;
    if claimed >= gencon_types::MAX_PROCESSES {
        return;
    }
    let sender_id = ProcessId::new(claimed);
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        // The peer mesh carries snapshot state-transfer chunks alongside
        // round bundles — the cap must cover the bigger of the two (plus
        // frame overhead) or a legitimate frame would sever the
        // connection. Client-facing links keep the tighter MAX_BYTES cap.
        if len > crate::wire_sync::CHUNK_BYTES + crate::wire::MAX_BYTES {
            return; // protocol violation: drop the connection
        }
        let mut frame = vec![0u8; len];
        if stream.read_exact(&mut frame).is_err() {
            return;
        }
        if tx.send((sender_id, Bytes::from(frame))).is_err() {
            return;
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> ProcessId {
        self.id
    }

    fn peers(&self) -> usize {
        self.links.len()
    }

    fn send(&mut self, to: ProcessId, frame: Bytes) {
        if to == self.id {
            return; // self-delivery handled by the runtime
        }
        let Some(Some(link)) = self.links.get(to.index()) else {
            return;
        };
        let mut guard = link.stream.lock();
        match guard.as_mut() {
            Some(stream) => {
                let len = (frame.len() as u32).to_le_bytes();
                // Best-effort: a failed write models a crashed/partitioned
                // peer — the frame is dropped and the link redials in the
                // background so a *restarted* peer is reachable again.
                if stream
                    .write_all(&len)
                    .and_then(|()| stream.write_all(&frame))
                    .is_err()
                {
                    *guard = None;
                    drop(guard);
                    link.spawn_redial(self.id);
                }
            }
            None => {
                drop(guard);
                link.spawn_redial(self.id);
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.inbox.recv_timeout(timeout).ok()
    }

    fn split_recv(&mut self) -> Option<RecvHalf> {
        Some(take_inbox(&mut self.inbox))
    }

    fn restore_recv(&mut self, half: RecvHalf) {
        self.inbox = half.rx;
    }
}

/// A chaos wrapper: drops outgoing frames with probability `loss` until
/// `good_after` sends have happened — real-runtime bad periods for tests
/// and experiments (the wall-clock analogue of the simulator's [GST]).
///
/// [GST]: https://dl.acm.org/doi/10.1145/42282.42283
pub struct FlakyTransport<T> {
    inner: T,
    loss_permille: u32,
    good_after: u64,
    sends: u64,
    state: u64,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner`: each send before the `good_after`-th is dropped with
    /// probability `loss_permille`/1000 (deterministic per `seed`).
    #[must_use]
    pub fn new(inner: T, loss_permille: u32, good_after: u64, seed: u64) -> Self {
        FlakyTransport {
            inner,
            loss_permille: loss_permille.min(1000),
            good_after,
            sends: 0,
            state: seed | 1,
        }
    }

    /// xorshift64* — deterministic, dependency-free.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn local(&self) -> ProcessId {
        self.inner.local()
    }

    fn peers(&self) -> usize {
        self.inner.peers()
    }

    fn send(&mut self, to: ProcessId, frame: Bytes) {
        self.sends += 1;
        if self.sends <= self.good_after {
            let roll = self.next_rand() % 1000;
            if roll < u64::from(self.loss_permille) {
                return; // dropped: a bad-period loss
            }
        }
        self.inner.send(to, frame);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ProcessId, Bytes)> {
        self.inner.recv_timeout(timeout)
    }

    // Loss is injected on the send side only, so the receive half can be
    // split off the wrapped transport unchanged.
    fn split_recv(&mut self) -> Option<RecvHalf> {
        self.inner.split_recv()
    }

    fn restore_recv(&mut self, half: RecvHalf) {
        self.inner.restore_recv(half);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mesh_routes_frames() {
        let mut mesh = ChannelTransport::mesh(3);
        let id2 = mesh[2].local();
        mesh[0].send(id2, Bytes::from_static(b"x"));
        mesh[1].send(id2, Bytes::from_static(b"y"));
        let mut got = Vec::new();
        for _ in 0..2 {
            let (from, frame) = mesh[2]
                .recv_timeout(Duration::from_millis(200))
                .expect("frame arrives");
            got.push((from.index(), frame));
        }
        got.sort();
        assert_eq!(got[0], (0, Bytes::from_static(b"x")));
        assert_eq!(got[1], (1, Bytes::from_static(b"y")));
    }

    #[test]
    fn split_recv_moves_the_inbox_and_restore_rejoins() {
        let mut mesh = ChannelTransport::mesh(2);
        let id1 = mesh[1].local();
        let half = mesh[1].split_recv().expect("channel inbox splits");
        mesh[0].send(id1, Bytes::from_static(b"a"));
        // The detached half hears the frame; the transport itself does not.
        assert!(mesh[1].recv_timeout(Duration::from_millis(10)).is_none());
        let (from, frame) = half.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!((from.index(), &frame[..]), (0, &b"a"[..]));
        // Restored, inline receives work again.
        mesh[1].restore_recv(half);
        mesh[0].send(id1, Bytes::from_static(b"b"));
        let (_, frame) = mesh[1].recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(&frame[..], b"b");
    }

    #[test]
    fn channel_recv_times_out() {
        let mut mesh = ChannelTransport::mesh(2);
        assert!(mesh[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn channel_send_to_unknown_is_ignored() {
        let mut mesh = ChannelTransport::mesh(2);
        mesh[0].send(ProcessId::new(9), Bytes::from_static(b"z"));
    }

    #[test]
    fn flaky_transport_drops_then_stabilizes() {
        let mesh = ChannelTransport::mesh(2);
        let mut it = mesh.into_iter();
        let a = it.next().unwrap();
        let mut b = it.next().unwrap();
        // 100% loss for the first 5 sends.
        let mut flaky = FlakyTransport::new(a, 1000, 5, 42);
        assert_eq!(flaky.local(), ProcessId::new(0));
        assert_eq!(flaky.peers(), 2);
        for _ in 0..5 {
            flaky.send(ProcessId::new(1), Bytes::from_static(b"lost"));
        }
        assert!(b.recv_timeout(Duration::from_millis(20)).is_none());
        flaky.send(ProcessId::new(1), Bytes::from_static(b"ok"));
        let (_, frame) = b.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(&frame[..], b"ok");
    }

    #[test]
    fn tcp_mesh_survives_staggered_start() {
        // Node 2 binds its listener ~300 ms after nodes 0 and 1 start
        // dialing: the backoff retries must carry the mesh through instead
        // of failing on the first refused connection.
        let addrs = probe_free_addrs(3).unwrap();

        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    if i == 2 {
                        std::thread::sleep(Duration::from_millis(300));
                    }
                    TcpTransport::connect_mesh_with(
                        ProcessId::new(i),
                        &addrs,
                        DialPolicy {
                            deadline: Duration::from_secs(10),
                            ..DialPolicy::default()
                        },
                    )
                    .expect("late binder must not fail the mesh")
                })
            })
            .collect();
        let mut nodes: Vec<TcpTransport> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Every ordered pair exchanges a frame (including with the late node).
        for from in 0..3usize {
            for to in 0..3usize {
                if from == to {
                    continue;
                }
                let payload = Bytes::from(vec![from as u8, to as u8]);
                let (a, b) = if from < to {
                    let (l, r) = nodes.split_at_mut(to);
                    (&mut l[from], &mut r[0])
                } else {
                    let (l, r) = nodes.split_at_mut(from);
                    (&mut r[0], &mut l[to])
                };
                a.send(ProcessId::new(to), payload.clone());
                let (sender, frame) = b
                    .recv_timeout(Duration::from_secs(5))
                    .expect("frame arrives across the staggered mesh");
                assert_eq!(sender, ProcessId::new(from));
                assert_eq!(frame, payload);
            }
        }
    }

    #[test]
    fn dial_gives_up_past_the_deadline() {
        // An address nobody ever binds: the dial must fail after the
        // deadline, not hang forever.
        let dead = probe_free_addrs(1).unwrap()[0];
        let started = Instant::now();
        let err = dial_with_backoff(
            dead,
            DialPolicy {
                deadline: Duration::from_millis(200),
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
            },
        );
        assert!(err.is_err());
        let took = started.elapsed();
        assert!(
            took >= Duration::from_millis(200) && took < Duration::from_secs(5),
            "deadline respected, took {took:?}"
        );
    }

    #[test]
    fn tcp_endpoint_survives_process_restart() {
        // A "process restart": node 1's transport is dropped entirely
        // (endpoint, links and listener gone) and a fresh one rebinds the
        // same address. Node 0 must reconnect both directions — its
        // acceptor picks up node 1's fresh dial, and its broken outgoing
        // link redials in the background.
        let addrs = probe_free_addrs(2).unwrap();
        let a0 = addrs.clone();
        let h0 = std::thread::spawn(move || {
            TcpTransport::connect_mesh(ProcessId::new(0), &a0).expect("node 0 mesh")
        });
        let a1 = addrs.clone();
        let h1 = std::thread::spawn(move || {
            TcpTransport::connect_mesh(ProcessId::new(1), &a1).expect("node 1 mesh")
        });
        let mut t0 = h0.join().unwrap();
        let t1 = h1.join().unwrap();

        drop(t1); // SIGKILL stand-in: listener + connections all close

        // Restart node 1 on the same endpoint (retry while the old
        // listener drains its shutdown nudge).
        let mut t1b = None;
        for _ in 0..50 {
            match TcpTransport::connect_mesh_with(
                ProcessId::new(1),
                &addrs,
                DialPolicy {
                    deadline: Duration::from_secs(5),
                    ..DialPolicy::default()
                },
            ) {
                Ok(t) => {
                    t1b = Some(t);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        let mut t1b = t1b.expect("restarted node rebinds its endpoint");

        // Restarted → survivor works via the fresh dial.
        t1b.send(ProcessId::new(0), Bytes::from_static(b"back"));
        let (from, frame) = t0
            .recv_timeout(Duration::from_secs(5))
            .expect("survivor hears the restarted node");
        assert_eq!((from, &frame[..]), (ProcessId::new(1), &b"back"[..]));

        // Survivor → restarted: the first writes surface the broken pipe
        // and trigger the background redial; keep sending until a frame
        // lands on the new endpoint.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline {
            t0.send(ProcessId::new(1), Bytes::from_static(b"again"));
            if let Some((from, frame)) = t1b.recv_timeout(Duration::from_millis(100)) {
                assert_eq!((from, &frame[..]), (ProcessId::new(0), &b"again"[..]));
                delivered = true;
                break;
            }
        }
        assert!(delivered, "survivor's link must redial the restarted peer");
    }

    #[test]
    fn tcp_mesh_roundtrip() {
        let addrs = probe_free_addrs(3).unwrap();

        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    TcpTransport::connect_mesh(ProcessId::new(i), &addrs).expect("mesh connects")
                })
            })
            .collect();
        let mut nodes: Vec<TcpTransport> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        nodes[0].send(ProcessId::new(1), Bytes::from_static(b"ping"));
        let (from, frame) = nodes[1]
            .recv_timeout(Duration::from_secs(5))
            .expect("tcp frame arrives");
        assert_eq!(from, ProcessId::new(0));
        assert_eq!(&frame[..], b"ping");

        nodes[1].send(ProcessId::new(0), Bytes::from_static(b"pong"));
        let (from2, frame2) = nodes[0]
            .recv_timeout(Duration::from_secs(5))
            .expect("reply arrives");
        assert_eq!(from2, ProcessId::new(1));
        assert_eq!(&frame2[..], b"pong");
    }
}
