//! Property tests for WAL recovery: replay of an arbitrarily truncated or
//! tail-corrupted log yields **exactly a prefix** of the written records —
//! it never panics, and it never invents a record that was not written.
//! This is the contract the durable server stack leans on: whatever a
//! `kill -9` (or disk scribble near the tail) does to the file, recovery
//! returns some committed prefix and the replica rejoins from there.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use gencon_store::{FileWal, Log, WalConfig};

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gencon-walprop-{tag}-{}-{case}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Writes `records` into a fresh single-segment WAL and returns the
/// segment file's bytes.
fn written_segment(dir: &PathBuf, records: &[Vec<u8>]) -> Vec<u8> {
    let cfg = WalConfig {
        segment_bytes: u64::MAX, // keep everything in one segment
        ..WalConfig::default()
    };
    let (mut wal, _) = FileWal::open(dir, cfg).unwrap();
    for (i, payload) in records.iter().enumerate() {
        wal.append(i as u64, payload).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let seg = fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        .expect("one segment");
    fs::read(seg.path()).unwrap()
}

/// Recovers from a directory holding exactly `bytes` as the only segment.
fn recover_from_bytes(dir: &PathBuf, bytes: &[u8]) -> Vec<(u64, Vec<u8>)> {
    fs::remove_dir_all(dir).ok();
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join("wal-00000000000000000000.seg"), bytes).unwrap();
    let (_, recovery) = FileWal::open(dir, WalConfig::default()).unwrap();
    recovery.records
}

fn assert_is_prefix(recovered: &[(u64, Vec<u8>)], written: &[Vec<u8>]) {
    assert!(
        recovered.len() <= written.len(),
        "recovered {} > written {} — replay invented records",
        recovered.len(),
        written.len()
    );
    for (i, (slot, payload)) in recovered.iter().enumerate() {
        assert_eq!(*slot, i as u64, "recovered slots are contiguous from 0");
        assert_eq!(
            payload, &written[i],
            "record {i} differs — replay corrupted a record"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the segment at any byte count yields a prefix.
    #[test]
    fn truncated_wal_recovers_a_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..12),
        cut_frac in 0u64..10_000,
    ) {
        let dir = tmpdir("trunc", cut_frac ^ payloads.len() as u64);
        let full = written_segment(&dir, &payloads);
        let cut = (cut_frac as usize * full.len()) / 10_000;
        let recovered = recover_from_bytes(&dir, &full[..cut]);
        assert_is_prefix(&recovered, &payloads);
        fs::remove_dir_all(&dir).ok();
    }

    /// Flipping any single byte yields a prefix (the record containing the
    /// flip, and everything after it, disappears; nothing is invented).
    #[test]
    fn corrupted_wal_recovers_a_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..12),
        pos_frac in 0u64..10_000,
        flip in 1u8..=255,
    ) {
        let dir = tmpdir("flip", pos_frac ^ u64::from(flip));
        let mut bytes = written_segment(&dir, &payloads);
        let pos = (pos_frac as usize * bytes.len()) / 10_000;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= flip;
        let recovered = recover_from_bytes(&dir, &bytes);
        assert_is_prefix(&recovered, &payloads);
        fs::remove_dir_all(&dir).ok();
    }

    /// Appending arbitrary garbage after a valid log keeps the valid
    /// prefix and never panics.
    #[test]
    fn garbage_tail_recovers_the_written_records(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = tmpdir("garbage", garbage.len() as u64);
        let mut bytes = written_segment(&dir, &payloads);
        bytes.extend_from_slice(&garbage);
        let recovered = recover_from_bytes(&dir, &bytes);
        assert_is_prefix(&recovered, &payloads);
        fs::remove_dir_all(&dir).ok();
    }
}

/// After a torn-tail recovery, the WAL keeps accepting appends from the
/// truncation point and a further reopen sees the repaired, extended log.
#[test]
fn recovery_then_append_then_reopen() {
    let dir = tmpdir("repair", 0);
    let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 9]).collect();
    let full = written_segment(&dir, &payloads);
    // Tear mid-way through the last record.
    let torn = &full[..full.len() - 4];
    let recovered = {
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("wal-00000000000000000000.seg"), torn).unwrap();
        let (mut wal, recovery) = FileWal::open(&dir, WalConfig::default()).unwrap();
        let next = wal.next_slot();
        assert_eq!(next, recovery.records.len() as u64);
        wal.append(next, b"appended after repair").unwrap();
        wal.sync().unwrap();
        recovery.records
    };
    assert_eq!(recovered.len(), 7);
    let (_, again) = FileWal::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(again.records.len(), 8);
    assert_eq!(again.records[7].1, b"appended after repair".to_vec());
    assert_eq!(again.truncated_bytes, 0, "the repair was already synced");
    fs::remove_dir_all(&dir).ok();
}
