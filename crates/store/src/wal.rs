//! The segmented append-only file WAL.
//!
//! # On-disk layout
//!
//! A data directory holds numbered segment files plus the last
//! [`WalConfig::snapshot_keep`] snapshot cuts:
//!
//! ```text
//! data-dir/
//!   snapshot-00000000000000000384.bin  # an older retained cut
//!   snapshot-00000000000000000512.bin  # the newest cut (recovery point)
//!   wal-00000000000000000000.seg
//!   wal-00000000000000000512.seg   # first slot of the segment, zero-padded
//! ```
//!
//! (A legacy single-snapshot layout's `snapshot.bin` is still read and
//! counts as one retained cut.) Only the **newest** cut drives recovery
//! and compaction; older cuts are kept so a laggard that started a state
//! transfer against a slightly older manifest can finish fetching it.
//! Recovery prefers the newest cut that verifies: a corrupt newest
//! snapshot falls back to the next older one instead of discarding
//! snapshot state entirely.
//!
//! Each segment starts with a 16-byte header and then CRC-framed records:
//!
//! ```text
//! header:  | magic "GCWS" (4) | version u32 (4) | first_slot u64 (8) |
//! record:  | len u32 | crc32 u32 | slot u64 | payload (len bytes) |
//! ```
//!
//! `len` is the payload length; the CRC covers `slot ‖ payload`. All
//! integers are little-endian, matching the `gencon-net` wire format.
//!
//! # Recovery semantics
//!
//! [`FileWal::open`] replays the snapshot (if present and verifiable) and
//! then every segment in slot order. The replay is **prefix-exact**: the
//! first truncated, corrupted, oversized or out-of-order record ends the
//! log — the torn tail is cut off (the file is truncated at the last good
//! record, later segments are deleted) and everything before it is
//! returned. A `kill -9` mid-append therefore loses at most the staged
//! suffix after the last sync point, never a synced record, and replay can
//! never invent a record that was not written (CRC framing).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::crc32::crc32;
use crate::{Log, Slot, Snapshot, SnapshotMeta};

const SEGMENT_MAGIC: &[u8; 4] = b"GCWS";
const SNAPSHOT_MAGIC: &[u8; 4] = b"GCSN";
const VERSION: u32 = 1;
const SEGMENT_HEADER: u64 = 16;
const RECORD_HEADER: usize = 16;
/// Replay rejects record payloads past this cap before allocating — a
/// corrupted length field cannot force a huge allocation.
pub const MAX_RECORD_BYTES: usize = 1 << 24;

/// Group-commit and rollover tuning for [`FileWal`].
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Group-commit window: [`Log::maybe_sync`] fsyncs at most this often.
    /// `Duration::ZERO` syncs on every call (strictest durability).
    pub fsync_interval: Duration,
    /// A segment rolls over once its byte size reaches this threshold.
    pub segment_bytes: u64,
    /// Snapshot cuts retained on disk (minimum 1). The newest cut is the
    /// recovery/compaction point; older cuts stay fetchable via
    /// [`Log::read_snapshot_at`] for laggards mid-transfer.
    pub snapshot_keep: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_interval: Duration::from_millis(5),
            segment_bytes: 4 << 20,
            snapshot_keep: 2,
        }
    }
}

/// What [`FileWal::open`] reconstructed from disk.
#[derive(Clone, Debug, Default)]
pub struct Recovery {
    /// The installed snapshot, verified against its state hash.
    pub snapshot: Option<Snapshot>,
    /// Replayed records above the snapshot point, in slot order.
    pub records: Vec<(Slot, Vec<u8>)>,
    /// Bytes cut off the tail (0 on a clean shutdown).
    pub truncated_bytes: u64,
    /// Segments dropped because they followed a torn record.
    pub dropped_segments: usize,
    /// Whether a snapshot file existed but failed verification (it is
    /// ignored; the log is replayed from its oldest segment instead).
    pub snapshot_corrupt: bool,
}

/// One on-disk segment.
#[derive(Clone, Debug)]
struct Segment {
    first_slot: Slot,
    path: PathBuf,
}

/// The segmented file WAL (see the module docs for format and recovery
/// semantics).
#[derive(Debug)]
pub struct FileWal {
    dir: PathBuf,
    cfg: WalConfig,
    /// Closed segments, in slot order (the open segment is not listed).
    closed: Vec<Segment>,
    current: File,
    current_path: PathBuf,
    current_first: Slot,
    current_bytes: u64,
    next_slot: Slot,
    durable: Option<Slot>,
    /// Records appended since the last sync point.
    staged: bool,
    last_sync: Instant,
    /// Retained snapshot cuts, oldest first; the last entry is the
    /// newest cut (recovery/compaction point).
    snapshots: Vec<(SnapshotMeta, PathBuf)>,
    bytes_appended: u64,
    syncs: u64,
}

fn segment_path(dir: &Path, first_slot: Slot) -> PathBuf {
    dir.join(format!("wal-{first_slot:020}.seg"))
}

fn snapshot_path(dir: &Path, upto: Slot) -> PathBuf {
    dir.join(format!("snapshot-{upto:020}.bin"))
}

/// Fsyncs the directory itself, pinning renames, creations and deletions
/// of entries — file-level fsync alone does not make a rename durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn write_segment_header(file: &mut File, first_slot: Slot) -> io::Result<()> {
    let mut header = Vec::with_capacity(SEGMENT_HEADER as usize);
    header.extend_from_slice(SEGMENT_MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&first_slot.to_le_bytes());
    file.write_all(&header)
}

impl FileWal {
    /// Opens (or creates) the WAL under `dir`, replaying what is on disk.
    ///
    /// # Errors
    ///
    /// Propagates directory/file I/O errors. Corruption is **not** an
    /// error: a torn tail is truncated, a corrupt snapshot is ignored, and
    /// both are reported in [`Recovery`].
    pub fn open(dir: impl AsRef<Path>, cfg: WalConfig) -> io::Result<(FileWal, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut recovery = Recovery::default();

        // --- snapshots: every retained cut, newest-valid wins ---
        let mut candidates: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let retained_cut = name
                .strip_prefix("snapshot-")
                .and_then(|rest| rest.strip_suffix(".bin"))
                .is_some_and(|num| num.parse::<Slot>().is_ok());
            if retained_cut || name == "snapshot.bin" {
                candidates.push(entry.path());
            }
        }
        let mut snapshots: Vec<(SnapshotMeta, PathBuf)> = Vec::new();
        for path in candidates {
            match read_snapshot_file(&path)? {
                Some(snap) => {
                    snapshots.push((snap.meta, path));
                    if recovery
                        .snapshot
                        .as_ref()
                        .is_none_or(|best| best.meta.upto_slot < snap.meta.upto_slot)
                    {
                        // The newest cut that verifies drives recovery;
                        // a corrupt newer file simply never gets here.
                        recovery.snapshot = Some(snap);
                    }
                }
                None => recovery.snapshot_corrupt = true,
            }
        }
        snapshots.sort_by_key(|(m, _)| m.upto_slot);
        // The same cut under both layouts (legacy + numbered) is one cut.
        snapshots.dedup_by_key(|(m, _)| m.upto_slot);
        let replay_from = recovery.snapshot.as_ref().map_or(0, |s| s.meta.upto_slot);

        // --- segments, in slot order ---
        let mut segments: Vec<Segment> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".seg"))
            {
                if let Ok(first_slot) = num.parse::<Slot>() {
                    segments.push(Segment {
                        first_slot,
                        path: entry.path(),
                    });
                }
            }
        }
        segments.sort_by_key(|s| s.first_slot);

        // --- replay ---
        let mut expected = replay_from;
        let mut torn = false;
        let mut live: Vec<Segment> = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            if torn {
                // Everything after a torn record is unreachable log space.
                fs::remove_file(&seg.path).ok();
                recovery.dropped_segments += 1;
                continue;
            }
            let next_first = segments.get(i + 1).map(|s| s.first_slot);
            if next_first.is_some_and(|nf| nf <= replay_from) {
                // The whole segment sits below the snapshot: compaction
                // leftovers from a crash between snapshot install and
                // segment deletion.
                fs::remove_file(&seg.path).ok();
                continue;
            }
            match replay_segment(&seg.path, replay_from, &mut expected, &mut recovery.records)? {
                SegmentReplay::Clean => live.push(seg.clone()),
                SegmentReplay::Torn { keep_bytes } => {
                    torn = true;
                    let size = fs::metadata(&seg.path).map(|m| m.len()).unwrap_or(0);
                    recovery.truncated_bytes += size.saturating_sub(keep_bytes);
                    if keep_bytes < SEGMENT_HEADER {
                        // Even the header is bad: the file cannot serve as
                        // an append tail, drop it entirely.
                        fs::remove_file(&seg.path).ok();
                    } else {
                        let f = OpenOptions::new().write(true).open(&seg.path)?;
                        f.set_len(keep_bytes)?;
                        f.sync_all()?;
                        live.push(seg.clone());
                    }
                }
            }
        }

        let next_slot = expected;

        // --- open the tail segment for appending ---
        let (current, current_path, current_first, current_bytes, closed) = match live.pop() {
            Some(tail) => {
                let mut f = OpenOptions::new().append(true).open(&tail.path)?;
                let bytes = f.seek(SeekFrom::End(0))?;
                (f, tail.path.clone(), tail.first_slot, bytes, live)
            }
            None => {
                let path = segment_path(&dir, next_slot);
                let mut f = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .write(true)
                    .open(&path)?;
                write_segment_header(&mut f, next_slot)?;
                (f, path, next_slot, SEGMENT_HEADER, live)
            }
        };

        // Everything replayed is on disk; one sync pins the (possibly
        // truncated) tail — and the directory, covering any segment we
        // created, truncated or removed — making the recovered prefix
        // the durable baseline.
        current.sync_all()?;
        sync_dir(&dir)?;
        let durable = if next_slot > 0 {
            Some(next_slot - 1)
        } else {
            None
        };

        let wal = FileWal {
            dir,
            cfg,
            closed,
            current,
            current_path,
            current_first,
            current_bytes,
            next_slot,
            durable,
            staged: false,
            last_sync: Instant::now(),
            snapshots,
            bytes_appended: 0,
            syncs: 0,
        };
        Ok((wal, recovery))
    }

    /// The data directory this WAL lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files (closed + the append tail).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.closed.len() + 1
    }

    fn roll_segment(&mut self) -> io::Result<()> {
        self.current.sync_all()?;
        self.closed.push(Segment {
            first_slot: self.current_first,
            path: self.current_path.clone(),
        });
        let path = segment_path(&self.dir, self.next_slot);
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        write_segment_header(&mut f, self.next_slot)?;
        self.current = f;
        self.current_path = path;
        self.current_first = self.next_slot;
        self.current_bytes = SEGMENT_HEADER;
        sync_dir(&self.dir)
    }
}

enum SegmentReplay {
    Clean,
    /// Replay hit a bad record; keep the file's first `keep_bytes` bytes.
    Torn {
        keep_bytes: u64,
    },
}

/// Replays one segment, appending good records at or above `floor` to
/// `out` and advancing `expected` (the next contiguous slot).
fn replay_segment(
    path: &Path,
    floor: Slot,
    expected: &mut Slot,
    out: &mut Vec<(Slot, Vec<u8>)>,
) -> io::Result<SegmentReplay> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < SEGMENT_HEADER as usize
        || &data[0..4] != SEGMENT_MAGIC
        || u32::from_le_bytes([data[4], data[5], data[6], data[7]]) != VERSION
    {
        return Ok(SegmentReplay::Torn { keep_bytes: 0 });
    }
    let mut off = SEGMENT_HEADER as usize;
    loop {
        if off == data.len() {
            return Ok(SegmentReplay::Clean);
        }
        if data.len() - off < RECORD_HEADER {
            return Ok(SegmentReplay::Torn {
                keep_bytes: off as u64,
            });
        }
        let len =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        let crc = u32::from_le_bytes([data[off + 4], data[off + 5], data[off + 6], data[off + 7]]);
        if len > MAX_RECORD_BYTES || data.len() - off - RECORD_HEADER < len {
            return Ok(SegmentReplay::Torn {
                keep_bytes: off as u64,
            });
        }
        let body = &data[off + 8..off + RECORD_HEADER + len]; // slot ‖ payload
        if crc32(body) != crc {
            return Ok(SegmentReplay::Torn {
                keep_bytes: off as u64,
            });
        }
        let slot = Slot::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        if slot >= floor {
            if slot != *expected {
                // Out-of-order or gapped slot: not a valid continuation.
                return Ok(SegmentReplay::Torn {
                    keep_bytes: off as u64,
                });
            }
            out.push((slot, body[8..].to_vec()));
            *expected += 1;
        }
        off += RECORD_HEADER + len;
    }
}

/// Snapshot file format:
/// `magic "GCSN" | version u32 | upto u64 | applied_len u64 | hash [32] |
/// state_len u32 | state | crc32 u32` (CRC over everything after the
/// magic, before the CRC).
fn read_snapshot_file(path: &Path) -> io::Result<Option<Snapshot>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    const FIXED: usize = 4 + 4 + 8 + 8 + 32 + 4 + 4;
    if data.len() < FIXED || &data[0..4] != SNAPSHOT_MAGIC {
        return Ok(None);
    }
    if u32::from_le_bytes(data[4..8].try_into().expect("4")) != VERSION {
        return Ok(None);
    }
    let upto = u64::from_le_bytes(data[8..16].try_into().expect("8"));
    let applied_len = u64::from_le_bytes(data[16..24].try_into().expect("8"));
    let mut state_hash = [0u8; 32];
    state_hash.copy_from_slice(&data[24..56]);
    let state_len = u32::from_le_bytes(data[56..60].try_into().expect("4")) as usize;
    if data.len() != FIXED + state_len {
        return Ok(None);
    }
    let state_end = 60 + state_len;
    let crc = u32::from_le_bytes(data[state_end..state_end + 4].try_into().expect("4"));
    if crc32(&data[4..state_end]) != crc {
        return Ok(None);
    }
    let snap = Snapshot {
        meta: SnapshotMeta {
            upto_slot: upto,
            applied_len,
            state_hash,
        },
        state: data[60..state_end].to_vec(),
    };
    if !snap.verify() {
        return Ok(None);
    }
    Ok(Some(snap))
}

fn write_snapshot_file(path: &Path, snap: &Snapshot) -> io::Result<()> {
    let mut data = Vec::with_capacity(60 + snap.state.len() + 4);
    data.extend_from_slice(SNAPSHOT_MAGIC);
    data.extend_from_slice(&VERSION.to_le_bytes());
    data.extend_from_slice(&snap.meta.upto_slot.to_le_bytes());
    data.extend_from_slice(&snap.meta.applied_len.to_le_bytes());
    data.extend_from_slice(&snap.meta.state_hash);
    data.extend_from_slice(&(snap.state.len() as u32).to_le_bytes());
    data.extend_from_slice(&snap.state);
    let crc = crc32(&data[4..]);
    data.extend_from_slice(&crc.to_le_bytes());
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(path)?;
    f.write_all(&data)?;
    f.sync_all()
}

impl Log for FileWal {
    fn append(&mut self, slot: Slot, payload: &[u8]) -> io::Result<()> {
        if slot != self.next_slot {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("append slot {slot}, expected {}", self.next_slot),
            ));
        }
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&slot.to_le_bytes());
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.current.write_all(&frame)?;
        self.current_bytes += frame.len() as u64;
        self.bytes_appended += payload.len() as u64;
        self.next_slot += 1;
        self.staged = true;
        if self.current_bytes >= self.cfg.segment_bytes {
            self.roll_segment()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.staged {
            self.current.sync_data()?;
            self.staged = false;
            self.syncs += 1;
        }
        self.last_sync = Instant::now();
        if self.next_slot > 0 {
            self.durable = Some(
                self.durable
                    .map_or(self.next_slot - 1, |d| d.max(self.next_slot - 1)),
            );
        }
        Ok(())
    }

    fn maybe_sync(&mut self) -> io::Result<bool> {
        if self.staged && self.last_sync.elapsed() >= self.cfg.fsync_interval {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    fn durable_slot(&self) -> Option<Slot> {
        self.durable
    }

    fn next_slot(&self) -> Slot {
        self.next_slot
    }

    fn snapshot_meta(&self) -> Option<SnapshotMeta> {
        self.snapshots.last().map(|(m, _)| *m)
    }

    fn snapshot_metas(&self) -> Vec<SnapshotMeta> {
        self.snapshots.iter().map(|(m, _)| *m).collect()
    }

    fn read_snapshot(&self) -> io::Result<Option<Snapshot>> {
        let Some((_, path)) = self.snapshots.last() else {
            return Ok(None);
        };
        read_snapshot_file(path)
    }

    fn read_snapshot_at(&self, upto: Slot) -> io::Result<Option<Snapshot>> {
        let Some((_, path)) = self.snapshots.iter().find(|(m, _)| m.upto_slot == upto) else {
            return Ok(None);
        };
        read_snapshot_file(path)
    }

    fn install_snapshot(&mut self, snap: &Snapshot) -> io::Result<()> {
        if !snap.verify() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot state hash mismatch",
            ));
        }
        let upto = snap.meta.upto_slot;
        // Atomic install: full tmp write + fsync, then rename into the
        // cut's numbered file. A crash leaves either the old cut set or
        // the old set plus the new cut, never a torn file (recovery
        // verifies the CRC + state hash anyway).
        let path = snapshot_path(&self.dir, upto);
        let tmp = self.dir.join("snapshot.tmp");
        write_snapshot_file(&tmp, snap)?;
        fs::rename(&tmp, &path)?;
        // The rename (and, below, segment deletion/creation) must itself
        // be durable before the watermark advances past the snapshot — a
        // file-level fsync does not persist directory entries.
        sync_dir(&self.dir)?;
        self.snapshots.retain(|(m, _)| m.upto_slot != upto);
        self.snapshots.push((snap.meta, path));
        self.snapshots.sort_by_key(|(m, _)| m.upto_slot);
        // Prune: the oldest cuts fall off past the retention bound, and a
        // legacy-layout `snapshot.bin` not serving as a retained cut goes
        // with them.
        while self.snapshots.len() > self.cfg.snapshot_keep.max(1) {
            let (_, old) = self.snapshots.remove(0);
            fs::remove_file(&old).ok();
        }
        let legacy = self.dir.join("snapshot.bin");
        if self.snapshots.iter().all(|(_, p)| *p != legacy) {
            fs::remove_file(&legacy).ok();
        }

        // Compact: closed segments entirely below the snapshot disappear.
        // (A segment's range ends where the next begins.)
        let mut bounds: Vec<Slot> = self.closed.iter().map(|s| s.first_slot).collect();
        bounds.push(self.current_first);
        let mut keep = Vec::new();
        for (i, seg) in self.closed.drain(..).enumerate() {
            if bounds[i + 1] <= upto {
                fs::remove_file(&seg.path).ok();
            } else {
                keep.push(seg);
            }
        }
        self.closed = keep;

        if upto >= self.next_slot {
            // The snapshot covers the whole log (the state-transfer /
            // periodic-snapshot fast path): every segment is garbage and
            // appends resume at the snapshot point.
            fs::remove_file(&self.current_path).ok();
            self.next_slot = upto;
            let path = segment_path(&self.dir, upto);
            let mut f = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&path)?;
            write_segment_header(&mut f, upto)?;
            f.sync_all()?;
            self.current = f;
            self.current_path = path;
            self.current_first = upto;
            self.current_bytes = SEGMENT_HEADER;
            self.staged = false;
            sync_dir(&self.dir)?;
        }
        if upto > 0 {
            self.durable = Some(self.durable.map_or(upto - 1, |d| d.max(upto - 1)));
        }
        Ok(())
    }

    fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gencon-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn record(i: u64) -> Vec<u8> {
        format!("payload-{i}")
            .into_bytes()
            .repeat(1 + (i as usize % 3))
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        let (mut wal, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert!(rec.records.is_empty() && rec.snapshot.is_none());
        for i in 0..20u64 {
            wal.append(i, &record(i)).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.durable_slot(), Some(19));
        drop(wal);

        let (wal, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 20);
        for (i, (slot, payload)) in rec.records.iter().enumerate() {
            assert_eq!(*slot, i as u64);
            assert_eq!(payload, &record(i as u64));
        }
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(wal.next_slot(), 20);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_appends_survive_clean_drop() {
        // Drop without sync: the bytes were written to the OS, so a
        // process exit (as opposed to a machine crash) keeps them.
        let dir = tmpdir("nosync");
        let (mut wal, _) = FileWal::open(&dir, WalConfig::default()).unwrap();
        wal.append(0, b"staged").unwrap();
        assert_eq!(wal.durable_slot(), None);
        drop(wal);
        let (_, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let dir = tmpdir("roll");
        let cfg = WalConfig {
            segment_bytes: 128,
            ..WalConfig::default()
        };
        let (mut wal, _) = FileWal::open(&dir, cfg).unwrap();
        for i in 0..40u64 {
            wal.append(i, &record(i)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 2, "small cap must roll segments");
        drop(wal);
        let (_, rec) = FileWal::open(&dir, cfg).unwrap();
        assert_eq!(rec.records.len(), 40);
        assert!(rec
            .records
            .iter()
            .enumerate()
            .all(|(i, (s, _))| *s == i as u64));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let (mut wal, _) = FileWal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..10u64 {
            wal.append(i, &record(i)).unwrap();
        }
        wal.sync().unwrap();
        let path = wal.current_path.clone();
        drop(wal);
        // Cut 5 bytes off the tail: the last record is torn.
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let (wal, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 9, "exactly the torn record is lost");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(wal.next_slot(), 9);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_ends_the_replayed_prefix() {
        let dir = tmpdir("corrupt");
        let (mut wal, _) = FileWal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..10u64 {
            wal.append(i, &record(i)).unwrap();
        }
        wal.sync().unwrap();
        let path = wal.current_path.clone();
        drop(wal);
        // Flip one byte in the middle of the file: some record's CRC fails
        // and everything from it on is dropped.
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let (_, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert!(rec.records.len() < 10, "corruption cuts the log");
        for (i, (slot, payload)) in rec.records.iter().enumerate() {
            assert_eq!(*slot, i as u64);
            assert_eq!(payload, &record(i as u64), "surviving prefix is exact");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_installs_atomically_and_compacts() {
        let dir = tmpdir("snap");
        let cfg = WalConfig {
            segment_bytes: 128,
            ..WalConfig::default()
        };
        let (mut wal, _) = FileWal::open(&dir, cfg).unwrap();
        for i in 0..30u64 {
            wal.append(i, &record(i)).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.segment_count();
        assert!(before > 1);
        let snap = Snapshot::new(30, 123, b"the applied prefix".to_vec());
        wal.install_snapshot(&snap).unwrap();
        assert_eq!(wal.segment_count(), 1, "everything below 30 compacted");
        assert_eq!(wal.next_slot(), 30);
        assert_eq!(wal.snapshot_meta().unwrap().applied_len, 123);
        wal.append(30, b"after snapshot").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (_, rec) = FileWal::open(&dir, cfg).unwrap();
        let snap_back = rec.snapshot.expect("snapshot recovered");
        assert_eq!(snap_back, snap);
        assert_eq!(rec.records, vec![(30, b"after snapshot".to_vec())]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_ignored_and_reported() {
        let dir = tmpdir("snapcorrupt");
        let (mut wal, _) = FileWal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5u64 {
            wal.append(i, &record(i)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // A garbage snapshot file must not poison recovery.
        fs::write(dir.join("snapshot.bin"), b"not a snapshot").unwrap();
        let (_, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.snapshot_corrupt);
        assert_eq!(rec.records.len(), 5, "the log still replays");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = tmpdir("group");
        let cfg = WalConfig {
            fsync_interval: Duration::from_millis(50),
            ..WalConfig::default()
        };
        let (mut wal, _) = FileWal::open(&dir, cfg).unwrap();
        for i in 0..50u64 {
            wal.append(i, b"x").unwrap();
            wal.maybe_sync().unwrap();
        }
        assert!(
            wal.syncs() < 10,
            "50 appends inside the window must share fsyncs, got {}",
            wal.syncs()
        );
        std::thread::sleep(Duration::from_millis(60));
        assert!(wal.maybe_sync().unwrap(), "window elapsed: syncs now");
        assert_eq!(wal.durable_slot(), Some(49));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_interval_syncs_every_call() {
        let dir = tmpdir("zero");
        let cfg = WalConfig {
            fsync_interval: Duration::ZERO,
            ..WalConfig::default()
        };
        let (mut wal, _) = FileWal::open(&dir, cfg).unwrap();
        wal.append(0, b"a").unwrap();
        assert!(wal.maybe_sync().unwrap());
        assert_eq!(wal.durable_slot(), Some(0));
        assert!(!wal.maybe_sync().unwrap(), "nothing staged");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_keeps_the_last_k_cuts() {
        let dir = tmpdir("retain");
        let cfg = WalConfig {
            snapshot_keep: 2,
            ..WalConfig::default()
        };
        let (mut wal, _) = FileWal::open(&dir, cfg).unwrap();
        for cut in [10u64, 20, 30] {
            let snap = Snapshot::new(cut, cut * 2, format!("state@{cut}").into_bytes());
            wal.install_snapshot(&snap).unwrap();
        }
        let metas = wal.snapshot_metas();
        assert_eq!(
            metas.iter().map(|m| m.upto_slot).collect::<Vec<_>>(),
            vec![20, 30],
            "oldest cut pruned, newest two retained"
        );
        assert_eq!(wal.snapshot_meta().unwrap().upto_slot, 30);
        // The older retained cut is still fetchable; the pruned one is not.
        let older = wal.read_snapshot_at(20).unwrap().expect("cut 20 retained");
        assert_eq!(older.state, b"state@20");
        assert!(wal.read_snapshot_at(10).unwrap().is_none());
        assert!(!snapshot_path(&dir, 10).exists(), "pruned file deleted");
        drop(wal);

        // Reopen: both cuts are rediscovered, the newest drives recovery.
        let (wal, rec) = FileWal::open(&dir, cfg).unwrap();
        assert_eq!(rec.snapshot.unwrap().meta.upto_slot, 30);
        assert_eq!(wal.snapshot_metas().len(), 2);
        assert_eq!(
            wal.read_snapshot_at(20).unwrap().unwrap().state,
            b"state@20"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_cut_falls_back_to_the_older_one() {
        let dir = tmpdir("fallback");
        let (mut wal, _) = FileWal::open(&dir, WalConfig::default()).unwrap();
        wal.install_snapshot(&Snapshot::new(10, 5, b"older".to_vec()))
            .unwrap();
        wal.install_snapshot(&Snapshot::new(20, 9, b"newer".to_vec()))
            .unwrap();
        drop(wal);
        // Garbage the newest cut: recovery must fall back to cut 10.
        fs::write(snapshot_path(&dir, 20), b"garbage").unwrap();
        let (wal, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert!(rec.snapshot_corrupt);
        let snap = rec.snapshot.expect("older cut still recovers");
        assert_eq!(snap.meta.upto_slot, 10);
        assert_eq!(snap.state, b"older");
        assert_eq!(wal.snapshot_meta().unwrap().upto_slot, 10);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_single_snapshot_layout_still_recovers() {
        let dir = tmpdir("legacy");
        fs::create_dir_all(&dir).unwrap();
        let snap = Snapshot::new(30, 123, b"legacy state".to_vec());
        write_snapshot_file(&dir.join("snapshot.bin"), &snap).unwrap();
        let (mut wal, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap(), &snap);
        assert_eq!(wal.next_slot(), 30);
        // A new cut supersedes the legacy file but keeps it as the older
        // retained cut until pruned.
        wal.append(30, b"tail").unwrap();
        wal.sync().unwrap();
        wal.install_snapshot(&Snapshot::new(31, 124, b"new state".to_vec()))
            .unwrap();
        assert_eq!(wal.snapshot_metas().len(), 2);
        assert_eq!(wal.read_snapshot_at(30).unwrap().unwrap(), snap);
        wal.install_snapshot(&Snapshot::new(32, 125, b"newer state".to_vec()))
            .unwrap();
        assert!(
            !dir.join("snapshot.bin").exists(),
            "legacy cut pruned at the retention bound"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_transfer_snapshot_fast_forwards_an_empty_wal() {
        let dir = tmpdir("transfer");
        let (mut wal, _) = FileWal::open(&dir, WalConfig::default()).unwrap();
        wal.append(0, b"old").unwrap();
        wal.sync().unwrap();
        let snap = Snapshot::new(500, 2000, b"transferred state".to_vec());
        wal.install_snapshot(&snap).unwrap();
        assert_eq!(wal.next_slot(), 500);
        assert_eq!(wal.durable_slot(), Some(499));
        wal.append(500, b"resumed").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = FileWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.unwrap().meta.upto_slot, 500);
        assert_eq!(rec.records, vec![(500, b"resumed".to_vec())]);
        fs::remove_dir_all(&dir).ok();
    }
}
