//! Durable storage for `gencon` replicated logs.
//!
//! Everything above this crate treats the committed log as a value in
//! memory; this crate is what lets a replica survive process death. It
//! provides the [`Log`] storage abstraction with two implementations:
//!
//! * [`MemStore`] — an in-memory store with the same durability *interface*
//!   (explicit sync points, an ack watermark) for simulations and unit
//!   tests of the integration glue;
//! * [`FileWal`] — a segmented append-only **write-ahead log**: one
//!   CRC32-framed record per committed slot, group-commit (fsync batched
//!   under a configurable interval), segment rollover, and recovery that
//!   replays segments in order and **truncates a torn tail** instead of
//!   failing — a `kill -9` mid-write loses at most the unsynced suffix,
//!   never the committed prefix.
//!
//! On top of the record log sits [`Snapshot`] support: a snapshot captures
//! the applied prefix (`upto_slot`, `applied_len`, a SHA-256 state hash and
//! the opaque encoded state), installs **atomically** (tmp file + rename),
//! and compacts every log segment below the snapshot point — so disk usage
//! is one snapshot plus the live tail, and the snapshot is also the unit of
//! **state transfer** to laggards whose gap exceeds peers' in-memory claim
//! horizon (see `gencon-server`).
//!
//! The payload format is opaque bytes: the store does not know about
//! batches or commands, only `(slot, payload)` records, so the layer above
//! chooses the codec (the server uses the `gencon-net` wire format).
//!
//! # Example
//!
//! ```
//! use gencon_store::{FileWal, Log, WalConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join(format!("gencon-wal-doc-{}", std::process::id()));
//! let (mut wal, recovery) = FileWal::open(&dir, WalConfig::default())?;
//! assert_eq!(recovery.records.len(), 0);
//! wal.append(0, b"first batch")?;
//! wal.append(1, b"second batch")?;
//! wal.sync()?;
//! assert_eq!(wal.durable_slot(), Some(1));
//! drop(wal);
//! // A reopened WAL replays exactly what was written.
//! let (_wal, recovery) = FileWal::open(&dir, WalConfig::default())?;
//! assert_eq!(recovery.records.len(), 2);
//! assert_eq!(recovery.records[1], (1, b"second batch".to_vec()));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
mod mem;
mod snapshot;
mod wal;

pub use mem::MemStore;
pub use snapshot::{Snapshot, SnapshotMeta};
pub use wal::{FileWal, Recovery, WalConfig};

use std::io;

/// A log position (mirrors `gencon_smr::Slot` without the dependency).
pub type Slot = u64;

/// Durable storage for a replicated log: one opaque payload per committed
/// slot, explicit sync points, and snapshot install/compaction.
///
/// The contract every implementation upholds:
///
/// * `append` accepts only the next contiguous slot (`next_slot`); the
///   record is *staged* — it survives a process kill only after a sync
///   point (or, for [`MemStore`], by construction).
/// * `sync` makes every staged record durable; `maybe_sync` does the same
///   but only once the group-commit interval elapsed, so callers can
///   invoke it every round and get batched fsyncs.
/// * `durable_slot` is the ack watermark: the highest slot a crash cannot
///   lose. Commands applied in slots at or below it may be acknowledged
///   to clients under durable-ack semantics.
/// * `install_snapshot` atomically replaces the covered prefix and
///   compacts storage below `upto_slot`.
pub trait Log {
    /// Stages `payload` as the record of `slot`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if `slot` is not [`Log::next_slot`]; otherwise the
    /// underlying I/O error.
    fn append(&mut self, slot: Slot, payload: &[u8]) -> io::Result<()>;

    /// Forces every staged record durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn sync(&mut self) -> io::Result<()>;

    /// Syncs iff records are staged and the group-commit interval elapsed
    /// since the last sync. Returns whether a sync happened.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn maybe_sync(&mut self) -> io::Result<bool>;

    /// The highest slot guaranteed to survive a crash (`None` while the
    /// store is empty and has no snapshot).
    fn durable_slot(&self) -> Option<Slot>;

    /// The next slot an append must carry.
    fn next_slot(&self) -> Slot;

    /// Metadata of the newest installed snapshot, if any.
    fn snapshot_meta(&self) -> Option<SnapshotMeta>;

    /// Metadata of every retained snapshot cut, oldest first. Stores
    /// that keep only one cut report at most one entry (the default).
    fn snapshot_metas(&self) -> Vec<SnapshotMeta> {
        self.snapshot_meta().into_iter().collect()
    }

    /// Reads the newest installed snapshot (state bytes included).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; a missing snapshot is `None`.
    fn read_snapshot(&self) -> io::Result<Option<Snapshot>>;

    /// Reads the retained snapshot cut covering slots below `upto`, if
    /// that exact cut is still retained — the laggard-transfer path: a
    /// fetcher that started against a slightly older manifest can keep
    /// fetching after the server takes a newer cut.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; an unretained cut is `None`.
    fn read_snapshot_at(&self, upto: Slot) -> io::Result<Option<Snapshot>> {
        match self.read_snapshot()? {
            Some(snap) if snap.meta.upto_slot == upto => Ok(Some(snap)),
            _ => Ok(None),
        }
    }

    /// Atomically installs `snap` and compacts records below
    /// `snap.meta.upto_slot`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the snapshot does not verify or would rewind the
    /// log; otherwise the underlying I/O error.
    fn install_snapshot(&mut self, snap: &Snapshot) -> io::Result<()>;

    /// Total payload bytes appended over this handle's lifetime.
    fn bytes_appended(&self) -> u64;

    /// Sync points taken over this handle's lifetime.
    fn syncs(&self) -> u64;
}
