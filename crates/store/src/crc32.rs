//! CRC-32 record framing checksum — re-exported from [`gencon_crypto`].
//!
//! The implementation moved to `gencon_crypto::crc32` when the chunked
//! snapshot state-transfer protocol (which lives above the store in the
//! crate DAG) started stamping wire chunks with the same checksum; this
//! module keeps the store's original public path alive.

pub use gencon_crypto::crc32::{crc32, update};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_matches_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(update(0xFFFF_FFFF, b"") ^ 0xFFFF_FFFF, 0);
    }
}
