//! Snapshots: the applied prefix as one verifiable, transferable unit.
//!
//! A snapshot covers every slot below `upto_slot`: the record log below
//! that point can be compacted away, a restarting replica recovers the
//! prefix from the snapshot alone, and a laggard whose gap exceeds peers'
//! in-memory claim horizon installs a peer's snapshot over the transport
//! (`gencon-server`'s state-transfer path). The `state` bytes are opaque
//! to the store — the layer above encodes the applied `(command, slot)`
//! pairs with its own codec — but the SHA-256 `state_hash` is computed
//! here so every consumer verifies the same thing.

use gencon_crypto::Sha256;

use crate::Slot;

/// Fixed-size description of a snapshot (what peers compare during state
/// transfer before trusting the state bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapshotMeta {
    /// Every slot below this is covered by the snapshot.
    pub upto_slot: Slot,
    /// Applied commands the state encodes.
    pub applied_len: u64,
    /// SHA-256 of the state bytes.
    pub state_hash: [u8; 32],
}

/// A full snapshot: metadata plus the opaque encoded state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    /// The verifiable description.
    pub meta: SnapshotMeta,
    /// Opaque encoded applied-prefix state.
    pub state: Vec<u8>,
}

impl Snapshot {
    /// Builds a snapshot over `state`, computing the state hash.
    #[must_use]
    pub fn new(upto_slot: Slot, applied_len: u64, state: Vec<u8>) -> Self {
        let meta = SnapshotMeta {
            upto_slot,
            applied_len,
            state_hash: state_hash(&state),
        };
        Snapshot { meta, state }
    }

    /// Whether the state bytes match the recorded hash.
    #[must_use]
    pub fn verify(&self) -> bool {
        state_hash(&self.state) == self.meta.state_hash
    }
}

/// SHA-256 of snapshot state bytes — the hash peers compare during state
/// transfer and recovery verifies after reading `snapshot.bin`.
#[must_use]
pub fn state_hash(state: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(state);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_hashes_and_verifies() {
        let snap = Snapshot::new(7, 42, b"applied prefix".to_vec());
        assert_eq!(snap.meta.upto_slot, 7);
        assert_eq!(snap.meta.applied_len, 42);
        assert!(snap.verify());
    }

    #[test]
    fn tampered_state_fails_verification() {
        let mut snap = Snapshot::new(7, 42, b"applied prefix".to_vec());
        snap.state[0] ^= 0x01;
        assert!(!snap.verify());
    }

    #[test]
    fn empty_state_is_valid() {
        let snap = Snapshot::new(0, 0, Vec::new());
        assert!(snap.verify());
    }
}
