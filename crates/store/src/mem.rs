//! The in-memory [`Log`] implementation for simulations and unit tests.
//!
//! `MemStore` keeps the same *interface* contract as the file WAL —
//! records are staged by `append` and only move the durable watermark at a
//! sync point — so the durable-ack integration glue (watermark gating,
//! snapshot policy) can be tested without touching a filesystem. Unlike
//! [`FileWal`](crate::FileWal) there is no group-commit clock:
//! `maybe_sync` always syncs.

use std::io;

use crate::{Log, Slot, Snapshot, SnapshotMeta};

/// In-memory log storage with explicit sync points.
#[derive(Clone, Debug)]
pub struct MemStore {
    /// Retained records: `(slot, payload)`, contiguous from `first_slot`.
    records: Vec<(Slot, Vec<u8>)>,
    /// First retained slot (everything below was compacted into the
    /// snapshot).
    first_slot: Slot,
    next_slot: Slot,
    /// Highest slot covered by a sync point or snapshot.
    durable: Option<Slot>,
    /// Retained snapshot cuts, oldest first (the last is the newest —
    /// the compaction point), mirroring the file WAL's retention.
    snapshots: Vec<Snapshot>,
    snapshot_keep: usize,
    bytes_appended: u64,
    syncs: u64,
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore {
            records: Vec::new(),
            first_slot: 0,
            next_slot: 0,
            durable: None,
            snapshots: Vec::new(),
            snapshot_keep: 2,
            bytes_appended: 0,
            syncs: 0,
        }
    }
}

impl MemStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Sets how many snapshot cuts are retained (minimum 1; default 2).
    #[must_use]
    pub fn with_snapshot_keep(mut self, keep: usize) -> Self {
        self.snapshot_keep = keep;
        self
    }

    /// The retained (not yet compacted) records.
    #[must_use]
    pub fn records(&self) -> &[(Slot, Vec<u8>)] {
        &self.records
    }
}

impl Log for MemStore {
    fn append(&mut self, slot: Slot, payload: &[u8]) -> io::Result<()> {
        if slot != self.next_slot {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("append slot {slot}, expected {}", self.next_slot),
            ));
        }
        self.records.push((slot, payload.to_vec()));
        self.bytes_appended += payload.len() as u64;
        self.next_slot += 1;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.next_slot > 0 && self.durable != Some(self.next_slot - 1) {
            self.durable = Some(self.next_slot - 1);
            self.syncs += 1;
        }
        Ok(())
    }

    fn maybe_sync(&mut self) -> io::Result<bool> {
        let before = self.durable;
        self.sync()?;
        Ok(self.durable != before)
    }

    fn durable_slot(&self) -> Option<Slot> {
        self.durable
    }

    fn next_slot(&self) -> Slot {
        self.next_slot
    }

    fn snapshot_meta(&self) -> Option<SnapshotMeta> {
        self.snapshots.last().map(|s| s.meta)
    }

    fn snapshot_metas(&self) -> Vec<SnapshotMeta> {
        self.snapshots.iter().map(|s| s.meta).collect()
    }

    fn read_snapshot(&self) -> io::Result<Option<Snapshot>> {
        Ok(self.snapshots.last().cloned())
    }

    fn read_snapshot_at(&self, upto: Slot) -> io::Result<Option<Snapshot>> {
        Ok(self
            .snapshots
            .iter()
            .find(|s| s.meta.upto_slot == upto)
            .cloned())
    }

    fn install_snapshot(&mut self, snap: &Snapshot) -> io::Result<()> {
        if !snap.verify() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot state hash mismatch",
            ));
        }
        let upto = snap.meta.upto_slot;
        if upto < self.first_slot {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot would rewind below the compaction point",
            ));
        }
        self.records.retain(|(s, _)| *s >= upto);
        self.first_slot = upto;
        self.next_slot = self.next_slot.max(upto);
        if upto > 0 {
            self.durable = Some(self.durable.map_or(upto - 1, |d| d.max(upto - 1)));
        }
        self.snapshots.retain(|s| s.meta.upto_slot != upto);
        self.snapshots.push(snap.clone());
        self.snapshots.sort_by_key(|s| s.meta.upto_slot);
        while self.snapshots.len() > self.snapshot_keep.max(1) {
            self.snapshots.remove(0);
        }
        Ok(())
    }

    fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_is_contiguous_and_staged() {
        let mut store = MemStore::new();
        assert_eq!(store.next_slot(), 0);
        store.append(0, b"a").unwrap();
        store.append(1, b"bb").unwrap();
        assert!(store.append(3, b"skip").is_err(), "gaps rejected");
        assert_eq!(store.durable_slot(), None, "staged, not durable");
        assert!(store.maybe_sync().unwrap());
        assert_eq!(store.durable_slot(), Some(1));
        assert!(!store.maybe_sync().unwrap(), "nothing new to sync");
        assert_eq!(store.bytes_appended(), 3);
        assert_eq!(store.syncs(), 1);
    }

    #[test]
    fn snapshot_compacts_and_advances_watermark() {
        let mut store = MemStore::new();
        for slot in 0..6u64 {
            store.append(slot, &[slot as u8]).unwrap();
        }
        let snap = Snapshot::new(4, 10, b"state".to_vec());
        store.install_snapshot(&snap).unwrap();
        assert_eq!(store.records().len(), 2, "slots 4 and 5 retained");
        assert_eq!(store.durable_slot(), Some(3), "snapshot covers 0..4");
        assert_eq!(store.snapshot_meta().unwrap().applied_len, 10);
        assert_eq!(store.read_snapshot().unwrap().unwrap(), snap);
        // Appends continue from where they were.
        store.append(6, b"f").unwrap();
        assert_eq!(store.next_slot(), 7);
    }

    #[test]
    fn snapshot_ahead_of_log_fast_forwards_next_slot() {
        let mut store = MemStore::new();
        let snap = Snapshot::new(100, 400, b"transferred".to_vec());
        store.install_snapshot(&snap).unwrap();
        assert_eq!(store.next_slot(), 100);
        assert_eq!(store.durable_slot(), Some(99));
        store.append(100, b"resume").unwrap();
    }

    #[test]
    fn retention_keeps_the_last_k_cuts() {
        let mut store = MemStore::new().with_snapshot_keep(2);
        for cut in [2u64, 4, 6] {
            for slot in store.next_slot()..cut {
                store.append(slot, &[slot as u8]).unwrap();
            }
            store
                .install_snapshot(&Snapshot::new(cut, cut, format!("s{cut}").into_bytes()))
                .unwrap();
        }
        assert_eq!(
            store
                .snapshot_metas()
                .iter()
                .map(|m| m.upto_slot)
                .collect::<Vec<_>>(),
            vec![4, 6]
        );
        assert_eq!(store.read_snapshot().unwrap().unwrap().state, b"s6");
        assert_eq!(store.read_snapshot_at(4).unwrap().unwrap().state, b"s4");
        assert!(store.read_snapshot_at(2).unwrap().is_none(), "pruned");
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let mut store = MemStore::new();
        let mut snap = Snapshot::new(4, 10, b"state".to_vec());
        snap.state[0] ^= 1;
        assert!(store.install_snapshot(&snap).is_err());
    }
}
