//! The `Pcons` stack: expands rounds that need `Pcons` into micro-rounds
//! that need only `Pgood`.

// Index-driven loops mirror the paper's n x n delivery matrices; an
// iterator rewrite would obscure the sender/receiver indices.
#![allow(clippy::needless_range_loop)]

use std::hash::Hash;

use gencon_crypto::{digest_of, Authenticator, KeyStore};
use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{quorum, ProcessId, Round};

/// Which `Pcons` implementation the stack runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PconsMode {
    /// Coordinator-based with authenticators (\[17]): 2 micro-rounds.
    /// Requires the authenticated Byzantine model (a [`KeyStore`]).
    CoordinatedAuth,
    /// Coordinator-free, signature-free echo broadcast (in the spirit of
    /// \[2]): 3 micro-rounds, `n > 3b`.
    EchoBroadcast,
}

impl PconsMode {
    /// Micro-rounds one `Pcons` round expands into (§2.2: "two rounds …
    /// three rounds").
    #[must_use]
    pub fn micro_rounds(self) -> usize {
        match self {
            PconsMode::CoordinatedAuth => 2,
            PconsMode::EchoBroadcast => 3,
        }
    }
}

/// Wire messages of the stack.
#[derive(Clone, PartialEq, Debug)]
pub enum StackMsg<M> {
    /// Passthrough of an inner message (rounds that only need `Pgood`).
    Direct(M),
    /// Micro-round 1 (auth): the sender's inner message plus an
    /// authenticator over its digest, addressed to the coordinator.
    AuthInit(M, Authenticator),
    /// Micro-round 2 (auth): the coordinator's relay of everything it
    /// accepted.
    Relay(Vec<(ProcessId, M, Authenticator)>),
    /// Micro-round 1 (echo): the sender's inner message, broadcast.
    Init(M),
    /// Micro-round 2 (echo): everything the sender received in micro 1.
    Echo(Vec<(ProcessId, M)>),
    /// Micro-round 3 (echo): the sender's per-source candidates.
    Vote(Vec<(ProcessId, M)>),
}

enum Stage<M> {
    /// No inner round in flight; pull from the inner process next send.
    Idle,
    /// Current inner round needs no `Pcons`: forward as `Direct`.
    Passthrough,
    /// Expansion in progress.
    Micro {
        index: usize,
        /// The inner payload this process contributes (None = silent).
        my_msg: Option<M>,
        /// Echo mode: micro-1 receptions.
        inits: Vec<Option<M>>,
        /// Echo mode: per-source candidate after micro 2.
        candidates: Vec<Option<M>>,
    },
}

/// Runs an inner [`RoundProcess`] whose selection rounds need `Pcons` over
/// a network that only provides `Pgood`, by implementing `Pcons` with real
/// protocol rounds (§2.2).
///
/// Every round the inner process marks [`Predicate::Cons`] is expanded into
/// [`PconsMode::micro_rounds`] outer rounds; other rounds pass through
/// unchanged. All honest stacks derive the same outer-round structure, so
/// the composition is again a lock-step round protocol.
///
/// The stack assumes the inner protocol's `Pcons` rounds are broadcast-like
/// (`Selector = Π`), which holds for every Byzantine algorithm in the
/// paper (§4.2); benign algorithms (b = 0) implement `Pcons` without extra
/// rounds by assuming crash-free good phases, so they don't need a stack.
pub struct PconsStack<P: RoundProcess> {
    inner: P,
    mode: PconsMode,
    keystore: Option<KeyStore>,
    n: usize,
    b: usize,
    inner_round: Round,
    /// Counts expansions so coordinator duty rotates deterministically.
    expansions: u64,
    stage: Stage<P::Msg>,
    /// Auth mode, coordinator only: verified micro-1 submissions.
    auth_store: Vec<Option<(ProcessId, P::Msg, Authenticator)>>,
}

impl<P> PconsStack<P>
where
    P: RoundProcess,
    P::Msg: Hash + PartialEq,
{
    /// Wraps `inner` with the coordinator-based authenticated
    /// implementation (\[17]). `keystore` must belong to the same process.
    ///
    /// # Panics
    ///
    /// Panics if the keystore owner differs from the inner process id.
    #[must_use]
    pub fn coordinated_auth(inner: P, keystore: KeyStore, b: usize) -> Self {
        assert_eq!(
            keystore.owner(),
            inner.id(),
            "keystore must belong to the wrapped process"
        );
        let n = keystore.n();
        PconsStack {
            inner,
            mode: PconsMode::CoordinatedAuth,
            keystore: Some(keystore),
            n,
            b,
            inner_round: Round::FIRST,
            expansions: 0,
            stage: Stage::Idle,
            auth_store: Vec::new(),
        }
    }

    /// Wraps `inner` with the signature-free echo implementation
    /// (3 micro-rounds, needs `n > 3b`).
    #[must_use]
    pub fn echo_broadcast(inner: P, n: usize, b: usize) -> Self {
        PconsStack {
            inner,
            mode: PconsMode::EchoBroadcast,
            keystore: None,
            n,
            b,
            inner_round: Round::FIRST,
            expansions: 0,
            stage: Stage::Idle,
            auth_store: Vec::new(),
        }
    }

    /// The wrapped process.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The mode this stack runs.
    #[must_use]
    pub fn mode(&self) -> PconsMode {
        self.mode
    }

    /// The inner round currently being played.
    #[must_use]
    pub fn inner_round(&self) -> Round {
        self.inner_round
    }

    /// The coordinator of the current expansion (auth mode): rotates with
    /// every expansion so that a Byzantine coordinator only stalls a
    /// bounded number of phases.
    #[must_use]
    pub fn coordinator(&self) -> ProcessId {
        ProcessId::new(((self.expansions.max(1) - 1) as usize) % self.n)
    }

    /// Extracts the broadcast payload of an inner `Outgoing` (the stack
    /// handles broadcast-like `Pcons` rounds; see type docs).
    fn broadcast_payload(out: &Outgoing<P::Msg>) -> Option<P::Msg> {
        match out {
            Outgoing::Silent => None,
            Outgoing::Broadcast(m) => Some(m.clone()),
            Outgoing::Multicast { msg, .. } => Some(msg.clone()),
            Outgoing::PerDest(pairs) => pairs.first().map(|(_, m)| m.clone()),
        }
    }

    /// Feeds the inner process its reconstructed heard-of vector and
    /// advances to the next inner round.
    fn finish_inner_round(&mut self, heard: HeardOf<P::Msg>) {
        self.inner.receive(self.inner_round, &heard);
        self.inner_round = self.inner_round.next();
        self.stage = Stage::Idle;
    }
}

impl<P> RoundProcess for PconsStack<P>
where
    P: RoundProcess,
    P::Msg: Hash + PartialEq,
{
    type Msg = StackMsg<P::Msg>;
    type Output = P::Output;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn requirement(&self, _outer: Round) -> Predicate {
        // Micro-rounds and passthrough rounds both need (at most) Pgood:
        // that is the whole point of the stack. Randomized inner protocols
        // would need Rel, but they never require Cons, so they would not be
        // wrapped in the first place.
        match &self.stage {
            Stage::Micro { .. } => Predicate::Good,
            _ => match self.inner.requirement(self.inner_round) {
                Predicate::Cons => Predicate::Good,
                other => other,
            },
        }
    }

    fn send(&mut self, _outer: Round) -> Outgoing<Self::Msg> {
        if matches!(self.stage, Stage::Idle) {
            // Start the next inner round: fix the inner message now.
            let out = self.inner.send(self.inner_round);
            if self.inner.requirement(self.inner_round) == Predicate::Cons {
                self.expansions += 1;
                self.stage = Stage::Micro {
                    index: 0,
                    my_msg: Self::broadcast_payload(&out),
                    inits: (0..self.n).map(|_| None).collect(),
                    candidates: (0..self.n).map(|_| None).collect(),
                };
            } else {
                self.stage = Stage::Passthrough;
                // Map the inner outgoing through Direct.
                return match out {
                    Outgoing::Silent => Outgoing::Silent,
                    Outgoing::Broadcast(m) => Outgoing::Broadcast(StackMsg::Direct(m)),
                    Outgoing::Multicast { dests, msg } => Outgoing::Multicast {
                        dests,
                        msg: StackMsg::Direct(msg),
                    },
                    Outgoing::PerDest(pairs) => Outgoing::PerDest(
                        pairs
                            .into_iter()
                            .map(|(d, m)| (d, StackMsg::Direct(m)))
                            .collect(),
                    ),
                };
            }
        }

        match &self.stage {
            Stage::Idle | Stage::Passthrough => unreachable!("handled above"),
            Stage::Micro {
                index,
                my_msg,
                inits,
                candidates,
            } => match (self.mode, index) {
                (PconsMode::CoordinatedAuth, 0) => {
                    let Some(m) = my_msg else {
                        return Outgoing::Silent;
                    };
                    let ks = self.keystore.as_ref().expect("auth mode has keystore");
                    let auth = ks.authenticate(&digest_of(m));
                    Outgoing::Multicast {
                        dests: gencon_types::ProcessSet::singleton(self.coordinator()),
                        msg: StackMsg::AuthInit(m.clone(), auth),
                    }
                }
                (PconsMode::CoordinatedAuth, 1) => {
                    if self.inner.id() != self.coordinator() {
                        return Outgoing::Silent;
                    }
                    // Relay everything collected in micro 1 (stored in
                    // `inits` as verified messages; authenticators are
                    // reconstructed from the store).
                    let relay: Vec<(ProcessId, P::Msg, Authenticator)> =
                        self.auth_store.iter().flatten().cloned().collect();
                    Outgoing::Broadcast(StackMsg::Relay(relay))
                }
                (PconsMode::EchoBroadcast, 0) => match my_msg {
                    Some(m) => Outgoing::Broadcast(StackMsg::Init(m.clone())),
                    None => Outgoing::Silent,
                },
                (PconsMode::EchoBroadcast, 1) => {
                    let echo: Vec<(ProcessId, P::Msg)> = inits
                        .iter()
                        .enumerate()
                        .filter_map(|(i, m)| m.clone().map(|m| (ProcessId::new(i), m)))
                        .collect();
                    Outgoing::Broadcast(StackMsg::Echo(echo))
                }
                (PconsMode::EchoBroadcast, 2) => {
                    let vote: Vec<(ProcessId, P::Msg)> = candidates
                        .iter()
                        .enumerate()
                        .filter_map(|(i, m)| m.clone().map(|m| (ProcessId::new(i), m)))
                        .collect();
                    Outgoing::Broadcast(StackMsg::Vote(vote))
                }
                _ => Outgoing::Silent,
            },
        }
    }

    fn receive(&mut self, _outer: Round, heard: &HeardOf<Self::Msg>) {
        match std::mem::replace(&mut self.stage, Stage::Idle) {
            Stage::Idle => {}
            Stage::Passthrough => {
                let mut inner_heard = HeardOf::empty(self.n);
                for (q, m) in heard.iter() {
                    if let StackMsg::Direct(inner) = m {
                        inner_heard.put(q, inner.clone());
                    }
                }
                self.finish_inner_round(inner_heard);
            }
            Stage::Micro {
                index,
                my_msg,
                mut inits,
                mut candidates,
            } => match (self.mode, index) {
                (PconsMode::CoordinatedAuth, 0) => {
                    // Only the coordinator hears anything; verify and store.
                    let ks = self.keystore.as_ref().expect("auth mode has keystore");
                    self.auth_store = (0..self.n).map(|_| None).collect();
                    for (q, m) in heard.iter() {
                        if let StackMsg::AuthInit(inner, auth) = m {
                            if ks.verify(q, &digest_of(inner), auth) {
                                self.auth_store[q.index()] = Some((q, inner.clone(), auth.clone()));
                            }
                        }
                    }
                    self.stage = Stage::Micro {
                        index: 1,
                        my_msg,
                        inits,
                        candidates,
                    };
                }
                (PconsMode::CoordinatedAuth, 1) => {
                    let ks = self.keystore.as_ref().expect("auth mode has keystore");
                    let mut inner_heard = HeardOf::empty(self.n);
                    if let Some(StackMsg::Relay(entries)) = heard.from(self.coordinator()) {
                        for (sender, m, auth) in entries {
                            if ks.verify(*sender, &digest_of(m), auth) {
                                inner_heard.put(*sender, m.clone());
                            }
                        }
                    }
                    self.auth_store.clear();
                    self.finish_inner_round(inner_heard);
                }
                (PconsMode::EchoBroadcast, 0) => {
                    for (q, m) in heard.iter() {
                        if let StackMsg::Init(inner) = m {
                            inits[q.index()] = Some(inner.clone());
                        }
                    }
                    self.stage = Stage::Micro {
                        index: 1,
                        my_msg,
                        inits,
                        candidates,
                    };
                }
                (PconsMode::EchoBroadcast, 1) => {
                    // candidate[s] = value echoed for s by > (n+b)/2 echoers.
                    let quorum_base = self.n + self.b;
                    for s in 0..self.n {
                        let sid = ProcessId::new(s);
                        let mut values: Vec<(&P::Msg, usize)> = Vec::new();
                        for (_, m) in heard.iter() {
                            if let StackMsg::Echo(entries) = m {
                                if let Some((_, v)) = entries.iter().find(|(from, _)| *from == sid)
                                {
                                    match values.iter_mut().find(|(u, _)| *u == v) {
                                        Some((_, c)) => *c += 1,
                                        None => values.push((v, 1)),
                                    }
                                }
                            }
                        }
                        candidates[s] = values
                            .iter()
                            .find(|(_, c)| quorum::more_than_half(*c, quorum_base))
                            .map(|(v, _)| (*v).clone());
                    }
                    self.stage = Stage::Micro {
                        index: 2,
                        my_msg,
                        inits,
                        candidates,
                    };
                }
                (PconsMode::EchoBroadcast, 2) => {
                    // final[s] = value voted for s by > (n+b)/2 voters.
                    let quorum_base = self.n + self.b;
                    let mut inner_heard = HeardOf::empty(self.n);
                    for s in 0..self.n {
                        let sid = ProcessId::new(s);
                        let mut values: Vec<(&P::Msg, usize)> = Vec::new();
                        for (_, m) in heard.iter() {
                            if let StackMsg::Vote(entries) = m {
                                if let Some((_, v)) = entries.iter().find(|(from, _)| *from == sid)
                                {
                                    match values.iter_mut().find(|(u, _)| *u == v) {
                                        Some((_, c)) => *c += 1,
                                        None => values.push((v, 1)),
                                    }
                                }
                            }
                        }
                        if let Some(v) = values
                            .iter()
                            .find(|(_, c)| quorum::more_than_half(*c, quorum_base))
                            .map(|(v, _)| (*v).clone())
                        {
                            inner_heard.put(sid, v);
                        }
                    }
                    self.finish_inner_round(inner_heard);
                }
                _ => {}
            },
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.inner.output()
    }
}
