//! Implementations of the `Pcons` communication predicate out of `Pgood`
//! (§2.2 of the paper).
//!
//! `Pcons` strengthens `Pgood` by requiring all correct processes to
//! receive the *same set* of messages in a round — the property that makes
//! every correct selector run FLV on identical input and hence select the
//! same value. The paper cites two implementations:
//!
//! * **coordinator-based with authentication** (\[17]): everyone sends its
//!   signed message to a coordinator, which relays the collection — 2
//!   rounds; a Byzantine coordinator can *withhold* messages (delaying
//!   termination until an honest coordinator rotates in) but cannot alter
//!   them (authenticators);
//! * **coordinator-free, signature-free** (\[2]-style echo broadcast): init,
//!   echo, vote — 3 rounds, `n > 3b`. Honest senders' entries are accepted
//!   identically by all honest receivers (quorum intersection); for a
//!   Byzantine sender's entry, no two honest receivers accept *different*
//!   values, though an equivocator can still split "accepted v" vs "⊥" in
//!   the last micro-round. That never endangers safety (consensus safety
//!   does not rely on `Pcons`); see DESIGN.md substitution note 3.
//!
//! [`PconsStack`] composes either implementation under any
//! [`gencon_rounds::RoundProcess`], turning each `Pcons`-requiring round
//! into 2 or 3 `Pgood` micro-rounds. This is the substrate that lets the
//! generic consensus engine run over plain unreliable rounds, exactly as
//! the paper layers it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod stack;

pub use stack::{PconsMode, PconsStack, StackMsg};

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_crypto::KeyStore;
    use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
    use gencon_types::{ProcessId, ProcessSet, Round};

    /// A test protocol: round 1 needs Pcons and broadcasts the process's
    /// value; the transition records the received vector as output once
    /// every expected sender is present.
    #[derive(Clone)]
    struct OneShot {
        id: ProcessId,
        n: usize,
        value: u64,
        result: Option<Vec<Option<u64>>>,
    }

    impl OneShot {
        fn new(i: usize, n: usize) -> Self {
            OneShot {
                id: ProcessId::new(i),
                n,
                value: 100 + i as u64,
                result: None,
            }
        }
    }

    impl RoundProcess for OneShot {
        type Msg = u64;
        type Output = Vec<Option<u64>>;

        fn id(&self) -> ProcessId {
            self.id
        }

        fn requirement(&self, r: Round) -> Predicate {
            if r == Round::FIRST {
                Predicate::Cons
            } else {
                Predicate::Good
            }
        }

        fn send(&mut self, r: Round) -> Outgoing<u64> {
            if r == Round::FIRST {
                Outgoing::Broadcast(self.value)
            } else {
                Outgoing::Silent
            }
        }

        fn receive(&mut self, r: Round, heard: &HeardOf<u64>) {
            if r == Round::FIRST && self.result.is_none() {
                self.result = Some(
                    (0..self.n)
                        .map(|i| heard.from(ProcessId::new(i)).copied())
                        .collect(),
                );
            }
        }

        fn output(&self) -> Option<Vec<Option<u64>>> {
            self.result.clone()
        }
    }

    /// Runs `k` stacks lock-step with full delivery; returns them after
    /// `rounds` outer rounds.
    fn run_full<P>(stacks: &mut [PconsStack<P>], rounds: u64)
    where
        P: RoundProcess,
        P::Msg: std::hash::Hash + PartialEq,
    {
        let n = stacks.len();
        for r in 1..=rounds {
            let round = Round::new(r);
            let outs: Vec<_> = stacks.iter_mut().map(|s| s.send(round)).collect();
            let mut heards: Vec<HeardOf<StackMsg<P::Msg>>> =
                (0..n).map(|_| HeardOf::empty(n)).collect();
            for (from, out) in outs.iter().enumerate() {
                for (to, heard) in heards.iter_mut().enumerate() {
                    if let Some(m) = out.message_for(ProcessId::new(to)) {
                        heard.put(ProcessId::new(from), m);
                    }
                }
            }
            for (i, s) in stacks.iter_mut().enumerate() {
                s.receive(round, &heards[i]);
            }
        }
    }

    #[test]
    fn auth_mode_produces_identical_vectors() {
        let n = 4;
        let stores = KeyStore::dealer(n, 7);
        let mut stacks: Vec<_> = (0..n)
            .map(|i| PconsStack::coordinated_auth(OneShot::new(i, n), stores[i].clone(), 1))
            .collect();
        run_full(&mut stacks, 2); // 2 micro-rounds
        let first = stacks[0].output().expect("decided after 2 micro-rounds");
        assert_eq!(first, vec![Some(100), Some(101), Some(102), Some(103)]);
        for s in &stacks {
            assert_eq!(s.output().unwrap(), first, "Pcons: identical vectors");
        }
    }

    #[test]
    fn echo_mode_produces_identical_vectors() {
        let n = 4;
        let mut stacks: Vec<_> = (0..n)
            .map(|i| PconsStack::echo_broadcast(OneShot::new(i, n), n, 1))
            .collect();
        run_full(&mut stacks, 3); // 3 micro-rounds
        let first = stacks[0].output().expect("decided after 3 micro-rounds");
        assert_eq!(first, vec![Some(100), Some(101), Some(102), Some(103)]);
        for s in &stacks {
            assert_eq!(s.output().unwrap(), first);
        }
    }

    #[test]
    fn micro_round_counts_match_the_paper() {
        assert_eq!(PconsMode::CoordinatedAuth.micro_rounds(), 2);
        assert_eq!(PconsMode::EchoBroadcast.micro_rounds(), 3);
    }

    #[test]
    fn requirement_is_downgraded_to_good() {
        let stores = KeyStore::dealer(3, 7);
        let stack = PconsStack::coordinated_auth(OneShot::new(0, 3), stores[0].clone(), 0);
        // Inner round 1 requires Cons; the stack only ever asks for Good.
        assert_eq!(stack.requirement(Round::FIRST), Predicate::Good);
    }

    #[test]
    fn passthrough_preserves_good_rounds() {
        // After the expansion (2 outer rounds), inner round 2 passes through.
        let n = 3;
        let stores = KeyStore::dealer(n, 7);
        let mut stacks: Vec<_> = (0..n)
            .map(|i| PconsStack::coordinated_auth(OneShot::new(i, n), stores[i].clone(), 0))
            .collect();
        run_full(&mut stacks, 3);
        assert_eq!(stacks[0].inner_round(), Round::new(3));
        assert!(stacks[0].output().is_some());
    }

    #[test]
    #[should_panic(expected = "keystore must belong")]
    fn auth_mode_checks_keystore_owner() {
        let stores = KeyStore::dealer(3, 7);
        let _ = PconsStack::coordinated_auth(OneShot::new(0, 3), stores[1].clone(), 0);
    }

    #[test]
    fn byzantine_coordinator_cannot_alter_payloads() {
        // Manually drive one receiver through micro-round 2 with a relay
        // whose payload was tampered with: the signature check drops it.
        let n = 3;
        let stores = KeyStore::dealer(n, 7);
        let mut victim = PconsStack::coordinated_auth(OneShot::new(0, n), stores[0].clone(), 0);

        // Outer round 1: victim sends AuthInit to coordinator p0 (itself).
        let out = victim.send(Round::new(1));
        let mut heard1 = HeardOf::empty(n);
        // give the victim its own init plus one honest init from p1
        if let Some(m) = out.message_for(ProcessId::new(0)) {
            heard1.put(ProcessId::new(0), m);
        }
        let honest1 = stores[1].authenticate(&gencon_crypto::digest_of(&101u64));
        heard1.put(ProcessId::new(1), StackMsg::AuthInit(101, honest1.clone()));
        victim.receive(Round::new(1), &heard1);

        // Outer round 2: feed a relay where p1's payload was altered to 999
        // (keeping p1's original authenticator) and p2's entry is forged
        // outright. Both must be rejected; p0's own survives.
        let own_auth = stores[0].authenticate(&gencon_crypto::digest_of(&100u64));
        let forged2 = stores[2].authenticate(&gencon_crypto::digest_of(&42u64));
        let relay = StackMsg::Relay(vec![
            (ProcessId::new(0), 100u64, own_auth),
            (ProcessId::new(1), 999, honest1), // altered payload
            (ProcessId::new(2), 43, forged2),  // auth for different value
        ]);
        let mut heard2 = HeardOf::empty(n);
        heard2.put(victim.coordinator(), relay);
        victim.receive(Round::new(2), &heard2);

        let vec = victim.output().expect("inner round completed");
        assert_eq!(vec, vec![Some(100), None, None], "tampered entries dropped");
    }

    #[test]
    fn echo_mode_tolerates_one_silent_process() {
        let n = 4;
        let mut stacks: Vec<_> = (0..n)
            .map(|i| PconsStack::echo_broadcast(OneShot::new(i, n), n, 1))
            .collect();
        // Run manually, silencing p3 entirely (Byzantine-silent).
        for r in 1..=3u64 {
            let round = Round::new(r);
            let outs: Vec<_> = stacks.iter_mut().map(|s| s.send(round)).collect();
            let mut heards: Vec<HeardOf<StackMsg<u64>>> =
                (0..n).map(|_| HeardOf::empty(n)).collect();
            for (from, out) in outs.iter().enumerate() {
                if from == 3 {
                    continue; // p3 silent
                }
                for (to, heard) in heards.iter_mut().enumerate() {
                    if let Some(m) = out.message_for(ProcessId::new(to)) {
                        heard.put(ProcessId::new(from), m);
                    }
                }
            }
            for (i, s) in stacks.iter_mut().enumerate().take(3) {
                s.receive(round, &heards[i]);
            }
        }
        let first = stacks[0].output().expect("completes without p3");
        assert_eq!(first, vec![Some(100), Some(101), Some(102), None]);
        for s in stacks.iter().take(3) {
            assert_eq!(
                s.output().unwrap(),
                first,
                "identical vectors despite silence"
            );
        }
    }

    #[test]
    fn multicast_inner_round_is_broadcast_compatible() {
        // A protocol whose Cons round multicasts to Π behaves like broadcast.
        #[derive(Clone)]
        struct MultiShot(OneShot);
        impl RoundProcess for MultiShot {
            type Msg = u64;
            type Output = Vec<Option<u64>>;
            fn id(&self) -> ProcessId {
                self.0.id()
            }
            fn requirement(&self, r: Round) -> Predicate {
                self.0.requirement(r)
            }
            fn send(&mut self, r: Round) -> Outgoing<u64> {
                match self.0.send(r) {
                    Outgoing::Broadcast(m) => Outgoing::Multicast {
                        dests: ProcessSet::range(0, self.0.n),
                        msg: m,
                    },
                    other => other,
                }
            }
            fn receive(&mut self, r: Round, heard: &HeardOf<u64>) {
                self.0.receive(r, heard);
            }
            fn output(&self) -> Option<Vec<Option<u64>>> {
                self.0.output()
            }
        }

        let n = 4;
        let mut stacks: Vec<_> = (0..n)
            .map(|i| PconsStack::echo_broadcast(MultiShot(OneShot::new(i, n)), n, 1))
            .collect();
        run_full(&mut stacks, 3);
        assert!(stacks.iter().all(|s| s.output().is_some()));
    }
}
