//! Stitching per-node slot spans into cluster-wide autopsies.
//!
//! Every [`SlotSpan`] timestamp is µs on its node's private recorder
//! clock. This module makes them comparable: a [`ClockEstimate`] maps
//! one node's clock into a shared monitor timebase (offset ±
//! uncertainty, NTP-style), and [`stitch_spans`] joins the mapped
//! spans by slot into [`ClusterSlotSpan`]s — who proposed, how fast
//! the proposal fanned out, how long each node waited for its quorum
//! to form, who the slowest voucher was, and how far apart the decide
//! instants landed across the cluster.
//!
//! Uncertainty is carried, never hidden: cross-node differences
//! (fan-out, decide skew) are only as sharp as the clock estimates
//! behind them, so every stitched span reports the worst contributing
//! `±`. Same-node differences (quorum wait) are offset-free and exact.

use crate::cmd::CmdSpan;
use crate::span::SlotSpan;

/// A mapping from one node's recorder clock into the monitor's
/// timebase, estimated from K request/response round-trips against the
/// node's admin `clock` command (the minimum-RTT sample wins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Monitor µs = node recorder µs + `offset_us`.
    pub offset_us: i64,
    /// Half the winning round-trip: the mapped instant is only known
    /// to ± this many µs.
    pub uncertainty_us: u64,
    /// The recorder epoch the estimate was taken under. A different
    /// epoch id on a later pull means the node restarted and this
    /// estimate is void.
    pub epoch_id: u64,
    /// Round-trips the estimate was distilled from.
    pub samples: u32,
}

impl ClockEstimate {
    /// Maps a node-clock timestamp into the monitor timebase. The
    /// result can be negative (the node's recorder predates the
    /// monitor's epoch).
    #[must_use]
    pub fn map(&self, node_ts_us: u64) -> i64 {
        (node_ts_us as i64).saturating_add(self.offset_us)
    }
}

/// One node's spans plus the clock estimate that makes them mappable —
/// the input unit of [`stitch_spans`].
#[derive(Clone, Debug)]
pub struct NodeSpans {
    /// The node id these spans came from.
    pub node: u64,
    /// How to map this node's timestamps into the monitor timebase.
    pub clock: ClockEstimate,
    /// The spans pulled from this node's admin `spans` command.
    pub spans: Vec<SlotSpan>,
}

/// One node's view of a stitched slot, timestamps mapped into the
/// monitor timebase (except `quorum_wait_us`, which is same-clock and
/// therefore exact).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeSlotView {
    /// The node observing.
    pub node: u64,
    /// Mapped decide instant (monitor µs; may be negative).
    pub decided_ts_us: i64,
    /// The round the commit landed in on this node.
    pub decide_round: Option<u64>,
    /// Mapped arrival of the decide round's first peer frame.
    pub first_heard_ts_us: Option<i64>,
    /// Mapped instant this node's decision quorum completed.
    pub quorum_ts_us: Option<i64>,
    /// First-heard → quorum-complete on this node's own clock:
    /// the concordance wait, free of any clock-offset error.
    pub quorum_wait_us: Option<u64>,
    /// The peer whose message completed this node's quorum.
    pub quorum_peer: Option<u64>,
    /// ± µs on this node's mapped (cross-node) timestamps.
    pub uncertainty_us: u64,
}

/// A slot's life across the cluster: per-node decide observations
/// joined with propose/fan-out attribution and quorum-formation
/// breakdowns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterSlotSpan {
    /// The slot.
    pub slot: u64,
    /// The node that recorded a `Proposed` event for the slot (the
    /// earliest mapped propose wins if several re-proposed).
    pub proposer: Option<u64>,
    /// Mapped propose instant on the proposer.
    pub propose_ts_us: Option<i64>,
    /// Propose → the earliest first-peer-heard across all nodes in the
    /// decide round: network fan-out. Cross-node, so read it ±
    /// `uncertainty_us`.
    pub fanout_us: Option<u64>,
    /// The largest per-node concordance wait (first-heard → quorum).
    pub quorum_wait_max_us: Option<u64>,
    /// Max − min mapped decide instant across nodes (needs ≥ 2 nodes).
    /// Cross-node, so read it ± `uncertainty_us`.
    pub decide_skew_us: Option<u64>,
    /// The quorum-completing peer on the node with the largest
    /// concordance wait — who the cluster was waiting for.
    pub slowest_voucher: Option<u64>,
    /// Worst clock uncertainty among contributing nodes: every
    /// cross-node figure above is only known to ± this many µs.
    pub uncertainty_us: u64,
    /// Per-node observations, ordered by node id.
    pub nodes: Vec<NodeSlotView>,
}

impl ClusterSlotSpan {
    /// Which segment dominated this slot's critical path:
    /// `"fanout"`, `"quorum_wait"`, or `"decide_skew"` (largest of the
    /// figures present; `None` when none are).
    #[must_use]
    pub fn critical_path(&self) -> Option<&'static str> {
        let candidates = [
            ("fanout", self.fanout_us),
            ("quorum_wait", self.quorum_wait_max_us),
            ("decide_skew", self.decide_skew_us),
        ];
        candidates
            .into_iter()
            .filter_map(|(name, v)| v.map(|v| (name, v)))
            .max_by_key(|&(_, v)| v)
            .map(|(name, _)| name)
    }

    /// One JSON object, no trailing newline. Absent figures are
    /// omitted; `uncertainty_us` and the per-node views always appear.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"slot\":{}", self.slot);
        if let Some(p) = self.proposer {
            out.push_str(&format!(",\"proposer\":{p}"));
        }
        if let Some(ts) = self.propose_ts_us {
            out.push_str(&format!(",\"propose_ts_us\":{ts}"));
        }
        if let Some(v) = self.fanout_us {
            out.push_str(&format!(",\"fanout_us\":{v}"));
        }
        if let Some(v) = self.quorum_wait_max_us {
            out.push_str(&format!(",\"quorum_wait_max_us\":{v}"));
        }
        if let Some(v) = self.decide_skew_us {
            out.push_str(&format!(",\"decide_skew_us\":{v}"));
        }
        if let Some(v) = self.slowest_voucher {
            out.push_str(&format!(",\"slowest_voucher\":{v}"));
        }
        if let Some(name) = self.critical_path() {
            out.push_str(&format!(",\"critical_path\":\"{name}\""));
        }
        out.push_str(&format!(",\"uncertainty_us\":{}", self.uncertainty_us));
        out.push_str(",\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"decided_ts_us\":{}",
                n.node, n.decided_ts_us
            ));
            let mut push_u = |name: &str, v: Option<u64>| {
                if let Some(v) = v {
                    out.push_str(&format!(",\"{name}\":{v}"));
                }
            };
            push_u("decide_round", n.decide_round);
            push_u("quorum_wait_us", n.quorum_wait_us);
            push_u("quorum_peer", n.quorum_peer);
            if let Some(ts) = n.first_heard_ts_us {
                out.push_str(&format!(",\"first_heard_ts_us\":{ts}"));
            }
            if let Some(ts) = n.quorum_ts_us {
                out.push_str(&format!(",\"quorum_ts_us\":{ts}"));
            }
            out.push_str(&format!(",\"uncertainty_us\":{}}}", n.uncertainty_us));
        }
        out.push_str("]}");
        out
    }
}

/// Joins per-node spans by slot into [`ClusterSlotSpan`]s, ordered by
/// slot, keeping only slots at least one node *decided* (spans with no
/// `decided_ts_us` cannot anchor a cross-node comparison).
///
/// Holes are expected and tolerated: nodes may be missing entirely
/// (crashed, unreachable, ring wrapped past the slot), and any span
/// field may be `None`. Per-node ordering is preserved by
/// construction — one node's timestamps are all shifted by the same
/// offset, so propose ≤ quorum ≤ decide survives the mapping.
#[must_use]
pub fn stitch_spans(inputs: &[NodeSpans]) -> Vec<ClusterSlotSpan> {
    let mut slots: Vec<u64> = inputs
        .iter()
        .flat_map(|n| n.spans.iter())
        .filter(|s| s.decided_ts_us.is_some())
        .map(|s| s.slot)
        .collect();
    slots.sort_unstable();
    slots.dedup();

    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        let mut span = ClusterSlotSpan {
            slot,
            ..ClusterSlotSpan::default()
        };
        let mut first_heard_min: Option<i64> = None;
        let mut slowest: Option<(u64, u64)> = None; // (wait, voucher)
        let mut decided_min_max: Option<(i64, i64)> = None;
        for node in inputs {
            let Some(s) = node.spans.iter().find(|s| s.slot == slot) else {
                continue;
            };
            // A proposer needs no decide on its own ring to attribute
            // the propose instant.
            if let Some(p) = s.proposed_ts_us {
                let mapped = node.clock.map(p);
                if span.propose_ts_us.is_none_or(|cur| mapped < cur) {
                    span.propose_ts_us = Some(mapped);
                    span.proposer = Some(node.node);
                    span.uncertainty_us = span.uncertainty_us.max(node.clock.uncertainty_us);
                }
            }
            let Some(decided) = s.decided_ts_us else {
                continue;
            };
            let mapped_decided = node.clock.map(decided);
            let quorum_wait = match (s.first_heard_ts_us, s.quorum_ts_us) {
                (Some(h), Some(q)) => Some(q.saturating_sub(h)),
                _ => None,
            };
            let view = NodeSlotView {
                node: node.node,
                decided_ts_us: mapped_decided,
                decide_round: s.decide_round,
                first_heard_ts_us: s.first_heard_ts_us.map(|ts| node.clock.map(ts)),
                quorum_ts_us: s.quorum_ts_us.map(|ts| node.clock.map(ts)),
                quorum_wait_us: quorum_wait,
                quorum_peer: s.quorum_peer,
                uncertainty_us: node.clock.uncertainty_us,
            };
            if let Some(h) = view.first_heard_ts_us {
                first_heard_min = Some(first_heard_min.map_or(h, |cur| cur.min(h)));
            }
            if let (Some(w), Some(peer)) = (quorum_wait, s.quorum_peer) {
                if slowest.is_none_or(|(cur, _)| w > cur) {
                    slowest = Some((w, peer));
                }
            }
            decided_min_max = Some(
                decided_min_max.map_or((mapped_decided, mapped_decided), |(lo, hi)| {
                    (lo.min(mapped_decided), hi.max(mapped_decided))
                }),
            );
            span.uncertainty_us = span.uncertainty_us.max(node.clock.uncertainty_us);
            span.quorum_wait_max_us = match (span.quorum_wait_max_us, quorum_wait) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            span.nodes.push(view);
        }
        if span.nodes.is_empty() {
            continue;
        }
        span.nodes.sort_by_key(|v| v.node);
        span.fanout_us = match (span.propose_ts_us, first_heard_min) {
            // Clock error can pull the mapped first-heard before the
            // propose; clamp at 0 and let uncertainty_us tell the tale.
            (Some(p), Some(h)) => Some(h.saturating_sub(p).max(0) as u64),
            _ => None,
        };
        span.slowest_voucher = slowest.map(|(_, peer)| peer);
        span.decide_skew_us = decided_min_max.and_then(|(lo, hi)| {
            (span.nodes.len() >= 2).then(|| hi.saturating_sub(lo).max(0) as u64)
        });
        out.push(span);
    }
    out
}

/// One node's command spans plus the clock estimate that makes them
/// mappable — the input unit of [`stitch_cmd_spans`].
#[derive(Clone, Debug)]
pub struct NodeCmdSpans {
    /// The node id these spans came from.
    pub node: u64,
    /// How to map this node's timestamps into the monitor timebase.
    pub clock: ClockEstimate,
    /// The spans assembled from this node's command-scoped events.
    pub spans: Vec<CmdSpan>,
}

/// One stitched relay leg: a command shipped out of `from`'s relay
/// chunk and merged into `to`'s proposal stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmdHop {
    /// The node whose `Relayed` stamp starts the leg.
    pub from: u64,
    /// The node whose `RelayMerged` stamp ends it.
    pub to: u64,
    /// Mapped merge instant − mapped relay instant, clamped at 0 when
    /// clock error pulls it negative. Cross-node, so read it ±
    /// `uncertainty_us`.
    pub latency_us: u64,
    /// Worst clock uncertainty of the two endpoints.
    pub uncertainty_us: u64,
}

/// A command's life across the cluster: where it entered, the relay
/// legs it took, where it decided and was acked.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterCmdSpan {
    /// The compact command id.
    pub cmd: u64,
    /// The node that recorded its `Submitted` (earliest mapped submit
    /// wins if a retry hit several gateways).
    pub origin: Option<u64>,
    /// The node that released the client reply.
    pub acked_on: Option<u64>,
    /// The slot the command decided in, when any node learned it.
    pub decided_slot: Option<u64>,
    /// Stitched relay legs, ordered by receiving node.
    pub hops: Vec<CmdHop>,
    /// End-to-end latency. Same-clock (submit and ack on one gateway)
    /// and therefore exact whenever the origin observed the ack;
    /// otherwise mapped cross-node and only as sharp as
    /// `uncertainty_us`.
    pub e2e_us: Option<u64>,
    /// Worst clock uncertainty among contributing nodes — every
    /// cross-node figure above is only known to ± this many µs.
    pub uncertainty_us: u64,
}

impl ClusterCmdSpan {
    /// One JSON object, no trailing newline. Absent figures are
    /// omitted; `uncertainty_us` and the hop list always appear.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"cmd\":{}", self.cmd);
        let mut push = |name: &str, v: Option<u64>| {
            if let Some(v) = v {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
        };
        push("origin", self.origin);
        push("acked_on", self.acked_on);
        push("decided_slot", self.decided_slot);
        push("e2e_us", self.e2e_us);
        out.push_str(&format!(",\"uncertainty_us\":{}", self.uncertainty_us));
        out.push_str(",\"hops\":[");
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"from\":{},\"to\":{},\"latency_us\":{},\"uncertainty_us\":{}}}",
                h.from, h.to, h.latency_us, h.uncertainty_us
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Joins per-node command spans by command id into
/// [`ClusterCmdSpan`]s, ordered by command id, keeping only commands
/// some node *submitted or acked* (a command seen only in transit
/// cannot anchor a client-side story).
///
/// A relay leg is stitched when the *receiving* node recorded a
/// `RelayMerged` naming a sender that also has the command's `Relayed`
/// stamp in its own window: leg latency is the mapped difference,
/// clamped at 0 (clock error can invert it — the per-leg
/// `uncertainty_us` tells the tale rather than hiding it). Merges
/// whose sender's window already wrapped are dropped, not guessed.
#[must_use]
pub fn stitch_cmd_spans(inputs: &[NodeCmdSpans]) -> Vec<ClusterCmdSpan> {
    let mut cmds: Vec<u64> = inputs
        .iter()
        .flat_map(|n| n.spans.iter())
        .filter(|s| s.submitted_ts_us.is_some() || s.acked_ts_us.is_some())
        .map(|s| s.cmd)
        .collect();
    cmds.sort_unstable();
    cmds.dedup();

    fn find(node: &NodeCmdSpans, cmd: u64) -> Option<&CmdSpan> {
        node.spans.iter().find(|s| s.cmd == cmd)
    }
    let mut out = Vec::with_capacity(cmds.len());
    for cmd in cmds {
        let mut span = ClusterCmdSpan {
            cmd,
            ..ClusterCmdSpan::default()
        };
        let mut submit: Option<(i64, u64, u64)> = None; // (mapped, node, raw e2e if acked here)
        let mut ack_mapped: Option<i64> = None;
        for node in inputs {
            let Some(s) = find(node, cmd) else { continue };
            span.uncertainty_us = span.uncertainty_us.max(node.clock.uncertainty_us);
            if let Some(sub) = s.submitted_ts_us {
                let mapped = node.clock.map(sub);
                if submit.is_none_or(|(cur, _, _)| mapped < cur) {
                    submit = Some((mapped, node.node, s.e2e_us.unwrap_or(u64::MAX)));
                    span.origin = Some(node.node);
                }
            }
            if let Some(ack) = s.acked_ts_us {
                if span.acked_on.is_none() {
                    span.acked_on = Some(node.node);
                    ack_mapped = Some(node.clock.map(ack));
                }
            }
            if span.decided_slot.is_none() {
                span.decided_slot = s.slot;
            }
            // Stitch this node's merges back to their senders.
            if let (Some(merged), Some(from)) = (s.merged_ts_us, s.merged_from) {
                let sender = inputs.iter().find(|n| n.node == from);
                let relayed = sender
                    .and_then(|n| find(n, cmd))
                    .and_then(|r| r.relayed_ts_us);
                if let (Some(sender), Some(relayed)) = (sender, relayed) {
                    let lat = node
                        .clock
                        .map(merged)
                        .saturating_sub(sender.clock.map(relayed))
                        .max(0) as u64;
                    span.hops.push(CmdHop {
                        from,
                        to: node.node,
                        latency_us: lat,
                        uncertainty_us: node.clock.uncertainty_us.max(sender.clock.uncertainty_us),
                    });
                }
            }
        }
        span.hops.sort_by_key(|h| (h.to, h.from));
        span.e2e_us = match (submit, ack_mapped, span.origin, span.acked_on) {
            // Submit and ack on the same node: the span's own e2e is
            // same-clock and exact.
            (Some((_, _, e2e)), _, Some(o), Some(a)) if o == a && e2e != u64::MAX => Some(e2e),
            // Split across nodes: mapped difference, uncertainty applies.
            (Some((sub, _, _)), Some(ack), _, _) => Some(ack.saturating_sub(sub).max(0) as u64),
            _ => None,
        };
        out.push(span);
    }
    out
}

/// The `p`-th percentile (0–100, nearest-rank) of `values`; sorts in
/// place. `None` on an empty slice.
#[must_use]
pub fn percentile_us(values: &mut [u64], p: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
    Some(values[rank.clamp(1, values.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(slot: u64, decided: Option<u64>) -> SlotSpan {
        SlotSpan {
            slot,
            decided_ts_us: decided,
            ..SlotSpan::default()
        }
    }

    #[test]
    fn clock_maps_with_negative_offsets() {
        let c = ClockEstimate {
            offset_us: -1_000,
            uncertainty_us: 40,
            epoch_id: 7,
            samples: 8,
        };
        assert_eq!(c.map(400), -600);
        assert_eq!(c.map(1_500), 500);
    }

    #[test]
    fn stitches_decide_skew_and_fanout() {
        let proposer = NodeSpans {
            node: 0,
            clock: ClockEstimate {
                offset_us: 100,
                uncertainty_us: 10,
                ..ClockEstimate::default()
            },
            spans: vec![SlotSpan {
                slot: 4,
                proposed_ts_us: Some(1_000),
                first_heard_ts_us: Some(1_300),
                first_heard_peer: Some(1),
                quorum_ts_us: Some(1_500),
                quorum_peer: Some(2),
                decided_ts_us: Some(1_600),
                decide_round: Some(9),
                ..SlotSpan::default()
            }],
        };
        let follower = NodeSpans {
            node: 1,
            clock: ClockEstimate {
                offset_us: -500,
                uncertainty_us: 25,
                ..ClockEstimate::default()
            },
            spans: vec![SlotSpan {
                slot: 4,
                first_heard_ts_us: Some(2_100),
                first_heard_peer: Some(0),
                quorum_ts_us: Some(2_900),
                quorum_peer: Some(3),
                decided_ts_us: Some(3_000),
                decide_round: Some(9),
                ..SlotSpan::default()
            }],
        };
        let stitched = stitch_spans(&[proposer, follower]);
        assert_eq!(stitched.len(), 1);
        let s = &stitched[0];
        assert_eq!(s.slot, 4);
        assert_eq!(s.proposer, Some(0));
        assert_eq!(s.propose_ts_us, Some(1_100));
        // first heard: node 0 at 1400, node 1 at 1600 → fanout 300.
        assert_eq!(s.fanout_us, Some(300));
        // decides at 1700 (node 0) and 2500 (node 1) → skew 800.
        assert_eq!(s.decide_skew_us, Some(800));
        // waits: node 0 = 200, node 1 = 800 → slowest voucher is node
        // 1's completing peer (3).
        assert_eq!(s.quorum_wait_max_us, Some(800));
        assert_eq!(s.slowest_voucher, Some(3));
        assert_eq!(s.uncertainty_us, 25);
        assert_eq!(s.critical_path(), Some("decide_skew"));
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.nodes[1].quorum_wait_us, Some(800));
    }

    #[test]
    fn missing_nodes_and_undecided_spans_tolerated() {
        let a = NodeSpans {
            node: 0,
            clock: ClockEstimate::default(),
            spans: vec![span(1, Some(50)), span(2, None)],
        };
        let b = NodeSpans {
            node: 1,
            clock: ClockEstimate::default(),
            spans: vec![span(3, Some(70))],
        };
        let stitched = stitch_spans(&[a, b]);
        // Slot 2 was never decided anywhere; slots 1 and 3 each have a
        // single observer — no skew, but the span still exists.
        assert_eq!(stitched.iter().map(|s| s.slot).collect::<Vec<_>>(), [1, 3]);
        assert!(stitched.iter().all(|s| s.decide_skew_us.is_none()));
        assert!(stitch_spans(&[]).is_empty());
    }

    #[test]
    fn json_carries_uncertainty() {
        let stitched = stitch_spans(&[NodeSpans {
            node: 2,
            clock: ClockEstimate {
                offset_us: 0,
                uncertainty_us: 77,
                ..ClockEstimate::default()
            },
            spans: vec![span(9, Some(10))],
        }]);
        let json = stitched[0].to_json();
        assert!(json.contains("\"uncertainty_us\":77"), "{json}");
        assert!(json.contains("\"nodes\":[{\"node\":2"), "{json}");
    }

    #[test]
    fn stitches_relay_hops_with_uncertainty() {
        // Command 42 submitted (and acked) on node 1, relayed to the
        // coordinator node 0, which merged and decided it.
        let origin = NodeCmdSpans {
            node: 1,
            clock: ClockEstimate {
                offset_us: 1_000,
                uncertainty_us: 30,
                ..ClockEstimate::default()
            },
            spans: vec![CmdSpan {
                cmd: 42,
                submitted_ts_us: Some(100),
                relayed_ts_us: Some(150),
                acked_ts_us: Some(900),
                e2e_us: Some(800),
                relay_hops: 1,
                ..CmdSpan::default()
            }],
        };
        let coordinator = NodeCmdSpans {
            node: 0,
            clock: ClockEstimate {
                offset_us: -200,
                uncertainty_us: 10,
                ..ClockEstimate::default()
            },
            spans: vec![CmdSpan {
                cmd: 42,
                merged_ts_us: Some(1_750),
                merged_from: Some(1),
                slot: Some(7),
                relay_hops: 1,
                ..CmdSpan::default()
            }],
        };
        let stitched = stitch_cmd_spans(&[coordinator, origin]);
        assert_eq!(stitched.len(), 1);
        let s = &stitched[0];
        assert_eq!(s.cmd, 42);
        assert_eq!(s.origin, Some(1));
        assert_eq!(s.acked_on, Some(1));
        assert_eq!(s.decided_slot, Some(7));
        // Same-node submit/ack → the exact local e2e survives.
        assert_eq!(s.e2e_us, Some(800));
        assert_eq!(s.hops.len(), 1);
        let h = s.hops[0];
        assert_eq!((h.from, h.to), (1, 0));
        // relayed maps to 150+1000 = 1150; merged to 1750-200 = 1550.
        assert_eq!(h.latency_us, 400);
        assert_eq!(h.uncertainty_us, 30, "worst endpoint uncertainty");
        assert_eq!(s.uncertainty_us, 30);
        let json = s.to_json();
        assert!(json.contains("\"hops\":[{\"from\":1,\"to\":0"), "{json}");
        assert!(json.contains("\"uncertainty_us\":30"), "{json}");
    }

    #[test]
    fn unmatched_merges_and_clock_inversion_tolerated() {
        // A merge whose sender window wrapped produces no hop; a clock
        // estimate that inverts the leg clamps at 0 but keeps the ±.
        let receiver = NodeCmdSpans {
            node: 0,
            clock: ClockEstimate::default(),
            spans: vec![
                CmdSpan {
                    cmd: 1,
                    submitted_ts_us: Some(10),
                    merged_ts_us: Some(20),
                    merged_from: Some(3), // node 3 not in inputs
                    ..CmdSpan::default()
                },
                CmdSpan {
                    cmd: 2,
                    submitted_ts_us: Some(5),
                    merged_ts_us: Some(30),
                    merged_from: Some(1),
                    ..CmdSpan::default()
                },
            ],
        };
        let sender = NodeCmdSpans {
            node: 1,
            clock: ClockEstimate {
                offset_us: 500, // pushes the relay after the merge
                uncertainty_us: 90,
                ..ClockEstimate::default()
            },
            spans: vec![CmdSpan {
                cmd: 2,
                relayed_ts_us: Some(25),
                ..CmdSpan::default()
            }],
        };
        let stitched = stitch_cmd_spans(&[receiver, sender]);
        assert_eq!(stitched.len(), 2);
        assert!(stitched[0].hops.is_empty(), "no sender window, no hop");
        let h = stitched[1].hops[0];
        assert_eq!(h.latency_us, 0, "inverted leg clamps at 0");
        assert_eq!(h.uncertainty_us, 90, "… but the ± is carried");
        // A command seen only in transit anchors nothing.
        let transit_only = NodeCmdSpans {
            node: 2,
            clock: ClockEstimate::default(),
            spans: vec![CmdSpan {
                cmd: 9,
                relayed_ts_us: Some(1),
                ..CmdSpan::default()
            }],
        };
        assert!(stitch_cmd_spans(&[transit_only]).is_empty());
        assert!(stitch_cmd_spans(&[]).is_empty());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut v = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile_us(&mut v, 50.0), Some(50));
        assert_eq!(percentile_us(&mut v, 99.0), Some(100));
        assert_eq!(percentile_us(&mut v, 0.0), Some(10));
        assert_eq!(percentile_us(&mut [], 50.0), None);
        assert_eq!(percentile_us(&mut [42], 99.0), Some(42));
    }
}
