//! Flight recorder for `gencon` nodes: who did what to slot *k*, and when.
//!
//! `gencon-metrics` answers "how fast is each stage on average"; this
//! crate answers the questions aggregates cannot — *where did slot k's
//! 12ms go*, *which peer is the straggler*, and *what happened in the
//! two seconds before this node wedged*:
//!
//! ```text
//! ingest ─ order ─ apply ─ persist ─ ack      threads record into
//!    │       │       │        │       │
//!    ▼       ▼       ▼        ▼       ▼
//!  [ FlightRecorder: fixed-capacity lock-free event ring ]
//!    │                                │
//!    ▼ tail(n)                        ▼ assemble_spans
//!  recent TraceEvents            per-slot SlotSpan breakdowns
//!  (admin `trace`)               (queue-wait vs service per stage)
//! ```
//!
//! * [`FlightRecorder`] — a fixed-capacity ring of structured events
//!   `{ts_us, stage, slot, kind, detail}`. Recording is a handful of
//!   atomic stores guarded by a per-cell sequence lock: any number of
//!   threads record concurrently, the ring wraps by overwriting the
//!   oldest events, and a concurrent overwrite is *detected* (the torn
//!   cell is skipped) rather than surfaced as a mixed-up event.
//! * [`TraceEvent`] / [`Stage`] / [`EventKind`] — the slot lifecycle:
//!   ingested → proposed → round-advance/timeout → decided → applied →
//!   persisted → acked, plus state-transfer and peer-liveness events.
//! * [`assemble_spans`] — joins events by slot into [`SlotSpan`]
//!   latency breakdowns (order / apply / persist / ack segments, with
//!   queue-wait split from service time, plus quorum-formation marks
//!   joined from the decide round), serialized as JSON lines.
//! * [`assemble_cmd_spans`] — joins the command-scoped events
//!   (`Submitted` … `CmdAcked`) with slot spans into per-command
//!   [`CmdSpan`] breakdowns — where the *client's* latency went —
//!   while [`SlowCmdRing`] retains top-K-by-e2e [`CmdExemplar`]s for
//!   the admin `slowest` command, and [`stitch_cmd_spans`] maps relay
//!   hops across nodes into [`ClusterCmdSpan`]s.
//! * [`cluster`] — makes spans comparable *across* nodes: NTP-style
//!   [`ClockEstimate`]s map each node's private recorder clock into a
//!   shared timebase (uncertainty carried, not hidden), and
//!   [`stitch_spans`] joins per-node spans by slot into
//!   [`ClusterSlotSpan`] autopsies — propose fan-out, concordance
//!   wait, decide skew, slowest-voucher attribution.
//! * [`PeerTable`] — shared per-peer health (last-heard round, lag,
//!   written-off flag) the order loop publishes and an admin endpoint
//!   reads live.
//! * [`HashCell`] — a seqlock ring of recently published
//!   `(applied count, state hash)` pairs, the per-node half of
//!   cross-replica divergence auditing.
//! * [`Tracer`] — an optional handle stages thread through their hot
//!   paths; recording through a disabled tracer is a no-op branch.
//!
//! The ring never allocates after construction and never blocks a
//! writer, so it is safe to leave enabled in production: the recorder
//! *is* the crash-dump of the last few seconds of a node's life.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod cmd;
mod hash;
mod peer;
mod ring;
mod span;

pub use cluster::{
    percentile_us, stitch_cmd_spans, stitch_spans, ClockEstimate, ClusterCmdSpan, ClusterSlotSpan,
    CmdHop, NodeCmdSpans, NodeSpans,
};
pub use cmd::{assemble_cmd_spans, CmdExemplar, CmdSpan, SlowCmdRing};
pub use hash::{hash_hex, HashCell};
pub use peer::{PeerRow, PeerTable};
pub use ring::{EventKind, FlightRecorder, Stage, TraceEvent, Tracer};
pub use span::{assemble_spans, SlotSpan};
