//! Joining raw events into per-slot latency breakdowns.

use crate::ring::{EventKind, TraceEvent};

/// Where one slot's latency went, assembled from its lifecycle events.
///
/// Every segment is measured from this node's recorder clock, and every
/// field is `Option` because a tail of the ring may only have *part* of
/// a slot's life (or the slot was decided on a peer, so this node never
/// proposed it). Missing timestamps simply leave segments out of the
/// JSON line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotSpan {
    /// The slot this span describes.
    pub slot: u64,
    /// When the slot was committed (recorder µs), the span's anchor.
    pub decided_ts_us: Option<u64>,
    /// The round the commit landed in (the `Decided` event's detail).
    pub decide_round: Option<u64>,
    /// When this node proposed the slot (recorder µs) — absolute, so a
    /// cross-node stitcher can map it into a cluster timebase.
    pub proposed_ts_us: Option<u64>,
    /// When the first peer frame of the decide round arrived
    /// (recorder µs), and which peer sent it — network fan-out.
    pub first_heard_ts_us: Option<u64>,
    /// Peer id behind `first_heard_ts_us`.
    pub first_heard_peer: Option<u64>,
    /// When the TD-th concordant message of the decide round landed
    /// (recorder µs) — the quorum was complete from here on.
    pub quorum_ts_us: Option<u64>,
    /// Peer id whose message completed the quorum (this node's own id
    /// when buffered frames already held a quorum at round entry).
    pub quorum_peer: Option<u64>,
    /// Proposed → decided: consensus rounds plus proposal queueing.
    pub order_us: Option<u64>,
    /// Decided → handed to the apply stage, i.e. apply queue wait.
    pub apply_wait_us: Option<u64>,
    /// Time inside the state-machine apply call.
    pub apply_svc_us: Option<u64>,
    /// Decided → handed to the persist stage, i.e. persist queue wait.
    pub persist_wait_us: Option<u64>,
    /// Time inside the group commit (append + fsync) that covered it.
    pub persist_svc_us: Option<u64>,
    /// Decided → reply released to the client (end-to-end post-decide).
    pub ack_us: Option<u64>,
    /// Portion of `ack_us` the reply sat parked behind the durability
    /// gate.
    pub ack_gate_us: Option<u64>,
}

impl SlotSpan {
    /// One JSON object, no trailing newline; absent segments are
    /// omitted: `{"slot":7,"order_us":120,"apply_wait_us":33,…}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"slot\":{}", self.slot);
        let mut push = |name: &str, v: Option<u64>| {
            if let Some(v) = v {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
        };
        push("decided_ts_us", self.decided_ts_us);
        push("decide_round", self.decide_round);
        push("proposed_ts_us", self.proposed_ts_us);
        push("first_heard_ts_us", self.first_heard_ts_us);
        push("first_heard_peer", self.first_heard_peer);
        push("quorum_ts_us", self.quorum_ts_us);
        push("quorum_peer", self.quorum_peer);
        push("order_us", self.order_us);
        push("apply_wait_us", self.apply_wait_us);
        push("apply_svc_us", self.apply_svc_us);
        push("persist_wait_us", self.persist_wait_us);
        push("persist_svc_us", self.persist_svc_us);
        push("ack_us", self.ack_us);
        push("ack_gate_us", self.ack_gate_us);
        out.push('}');
        out
    }
}

#[derive(Clone, Copy, Default)]
struct SlotMarks {
    proposed: Option<u64>,
    decided: Option<(u64, u64)>, // (ts, round)
    apply_queued: Option<u64>,
    applied: Option<(u64, u64)>, // (ts, service µs)
    persist_queued: Option<u64>,
    persisted: Option<(u64, u64)>, // (ts, service µs)
    acked: Option<(u64, u64)>,     // (ts, gate-wait µs)
}

#[derive(Clone, Copy, Default)]
struct RoundMarks {
    first_heard: Option<(u64, u64)>, // (ts, peer)
    quorum: Option<(u64, u64)>,      // (ts, peer)
}

/// Joins `events` by slot into latency breakdowns, one [`SlotSpan`] per
/// slot that was *decided* inside the window, ordered by slot.
///
/// For each lifecycle kind the **first** occurrence per slot wins
/// (re-proposals and re-acks do not stretch the span). Slots whose
/// decide fell outside the window are dropped — a partial tail would
/// otherwise fabricate negative or absurd segments.
///
/// Round-scoped quorum telemetry (`HeardFrom`, `QuorumReached`) is
/// gathered per round and joined onto every slot whose `Decided` event
/// named that round, so each span also carries *when* and *through
/// whom* its decision quorum formed.
#[must_use]
pub fn assemble_spans(events: &[TraceEvent]) -> Vec<SlotSpan> {
    let mut marks: Vec<(u64, SlotMarks)> = Vec::new();
    let mut rounds: Vec<(u64, RoundMarks)> = Vec::new();
    fn at<M: Default>(marks: &mut Vec<(u64, M)>, key: u64) -> usize {
        match marks.binary_search_by_key(&key, |(s, _)| *s) {
            Ok(i) => i,
            Err(i) => {
                marks.insert(i, (key, M::default()));
                i
            }
        }
    }
    for ev in events {
        match ev.kind {
            EventKind::HeardFrom => {
                let i = at(&mut rounds, ev.slot);
                let r = &mut rounds[i].1;
                r.first_heard = r.first_heard.or(Some((ev.ts_us, ev.detail)));
                continue;
            }
            EventKind::QuorumReached => {
                let i = at(&mut rounds, ev.slot);
                let r = &mut rounds[i].1;
                r.quorum = r.quorum.or(Some((ev.ts_us, ev.detail)));
                continue;
            }
            EventKind::Proposed
            | EventKind::Decided
            | EventKind::ApplyQueued
            | EventKind::Applied
            | EventKind::PersistQueued
            | EventKind::Persisted
            | EventKind::Acked => {}
            _ => continue,
        }
        let i = at(&mut marks, ev.slot);
        let m = &mut marks[i].1;
        match ev.kind {
            EventKind::Proposed => m.proposed = m.proposed.or(Some(ev.ts_us)),
            EventKind::Decided => m.decided = m.decided.or(Some((ev.ts_us, ev.detail))),
            EventKind::ApplyQueued => m.apply_queued = m.apply_queued.or(Some(ev.ts_us)),
            EventKind::Applied => m.applied = m.applied.or(Some((ev.ts_us, ev.detail))),
            EventKind::PersistQueued => m.persist_queued = m.persist_queued.or(Some(ev.ts_us)),
            EventKind::Persisted => m.persisted = m.persisted.or(Some((ev.ts_us, ev.detail))),
            EventKind::Acked => m.acked = m.acked.or(Some((ev.ts_us, ev.detail))),
            _ => unreachable!(),
        }
    }
    marks
        .into_iter()
        .filter_map(|(slot, m)| {
            let (decided, round) = m.decided?;
            let rm = rounds
                .binary_search_by_key(&round, |(r, _)| *r)
                .ok()
                .map_or_else(RoundMarks::default, |i| rounds[i].1);
            Some(SlotSpan {
                slot,
                decided_ts_us: Some(decided),
                decide_round: Some(round),
                proposed_ts_us: m.proposed,
                first_heard_ts_us: rm.first_heard.map(|(ts, _)| ts),
                first_heard_peer: rm.first_heard.map(|(_, peer)| peer),
                quorum_ts_us: rm.quorum.map(|(ts, _)| ts),
                quorum_peer: rm.quorum.map(|(_, peer)| peer),
                order_us: m.proposed.map(|p| decided.saturating_sub(p)),
                apply_wait_us: m.apply_queued.map(|q| q.saturating_sub(decided)),
                apply_svc_us: m.applied.map(|(_, svc)| svc),
                persist_wait_us: m.persist_queued.map(|q| q.saturating_sub(decided)),
                persist_svc_us: m.persisted.map(|(_, svc)| svc),
                ack_us: m.acked.map(|(ts, _)| ts.saturating_sub(decided)),
                ack_gate_us: m.acked.map(|(_, gate)| gate),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{EventKind, Stage, TraceEvent};

    fn ev(ts_us: u64, kind: EventKind, slot: u64, detail: u64) -> TraceEvent {
        let stage = match kind {
            EventKind::Proposed | EventKind::Decided => Stage::Order,
            EventKind::ApplyQueued | EventKind::Applied => Stage::Apply,
            EventKind::PersistQueued | EventKind::Persisted => Stage::Persist,
            EventKind::Acked => Stage::Ack,
            _ => Stage::Order,
        };
        TraceEvent {
            ts_us,
            stage,
            kind,
            slot,
            detail,
        }
    }

    #[test]
    fn full_lifecycle_breaks_down() {
        let events = vec![
            ev(100, EventKind::Proposed, 7, 0),
            ev(250, EventKind::Decided, 7, 3),
            ev(260, EventKind::ApplyQueued, 7, 1),
            ev(280, EventKind::Applied, 7, 15),
            ev(255, EventKind::PersistQueued, 7, 1),
            ev(900, EventKind::Persisted, 7, 400),
            ev(950, EventKind::Acked, 7, 620),
        ];
        let spans = assemble_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = spans[0];
        assert_eq!(s.slot, 7);
        assert_eq!(s.decide_round, Some(3));
        assert_eq!(s.proposed_ts_us, Some(100));
        assert_eq!(s.order_us, Some(150));
        assert_eq!(s.apply_wait_us, Some(10));
        assert_eq!(s.apply_svc_us, Some(15));
        assert_eq!(s.persist_wait_us, Some(5));
        assert_eq!(s.persist_svc_us, Some(400));
        assert_eq!(s.ack_us, Some(700));
        assert_eq!(s.ack_gate_us, Some(620));
    }

    #[test]
    fn undecided_slots_are_dropped() {
        let events = vec![
            ev(10, EventKind::Proposed, 1, 0),
            ev(20, EventKind::Applied, 2, 5), // decide fell off the ring
            ev(30, EventKind::Decided, 3, 0),
        ];
        let spans = assemble_spans(&events);
        assert_eq!(spans.iter().map(|s| s.slot).collect::<Vec<_>>(), vec![3]);
        assert_eq!(spans[0].order_us, None);
    }

    #[test]
    fn first_occurrence_wins_and_slots_sort() {
        let events = vec![
            ev(50, EventKind::Decided, 9, 0),
            ev(10, EventKind::Decided, 4, 0),
            ev(60, EventKind::Acked, 4, 0),
            ev(99, EventKind::Acked, 4, 0), // re-ack must not stretch
        ];
        let spans = assemble_spans(&events);
        assert_eq!(spans.iter().map(|s| s.slot).collect::<Vec<_>>(), vec![4, 9]);
        assert_eq!(spans[0].ack_us, Some(50));
    }

    #[test]
    fn json_omits_missing_segments() {
        let spans = assemble_spans(&[ev(10, EventKind::Decided, 2, 0)]);
        assert_eq!(
            spans[0].to_json(),
            "{\"slot\":2,\"decided_ts_us\":10,\"decide_round\":0}"
        );
        let full = SlotSpan {
            slot: 1,
            decided_ts_us: Some(5),
            order_us: Some(2),
            ..SlotSpan::default()
        };
        assert_eq!(
            full.to_json(),
            "{\"slot\":1,\"decided_ts_us\":5,\"order_us\":2}"
        );
    }

    #[test]
    fn quorum_telemetry_joins_by_decide_round() {
        // Two slots decided in round 5, one in round 6 with no quorum
        // events in the window — the join must hit the former and leave
        // the latter's quorum fields empty.
        let events = vec![
            ev(100, EventKind::HeardFrom, 5, 2),
            ev(130, EventKind::HeardFrom, 5, 0),
            ev(140, EventKind::QuorumReached, 5, 0),
            ev(150, EventKind::Decided, 8, 5),
            ev(151, EventKind::Decided, 9, 5),
            ev(400, EventKind::Decided, 10, 6),
        ];
        let spans = assemble_spans(&events);
        assert_eq!(spans.len(), 3);
        for s in &spans[..2] {
            assert_eq!(s.decide_round, Some(5));
            assert_eq!(s.first_heard_ts_us, Some(100));
            assert_eq!(s.first_heard_peer, Some(2));
            assert_eq!(s.quorum_ts_us, Some(140));
            assert_eq!(s.quorum_peer, Some(0));
        }
        assert_eq!(spans[2].decide_round, Some(6));
        assert_eq!(spans[2].quorum_ts_us, None);
        assert_eq!(spans[2].first_heard_peer, None);
    }
}
