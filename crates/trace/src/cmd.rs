//! Joining command-scoped events into per-command latency breakdowns,
//! plus the slow-command exemplar ring.
//!
//! Slot spans ([`crate::span`]) describe the consensus machinery; this
//! module describes what a *client* felt. The command-scoped
//! [`EventKind`]s (`Submitted` … `CmdAcked`) key every stamp by the
//! compact command id (carried in the event's `slot` field), and
//! [`assemble_cmd_spans`] joins them with the already-assembled
//! [`SlotSpan`]s through the decided slot (`CmdAcked`'s detail) into a
//! [`CmdSpan`]: gateway queue wait, batch-formation wait, ordering,
//! durable-gate wait, ack, relay hops, bounces and the end-to-end
//! figure.
//!
//! [`SlowCmdRing`] keeps the top-K commands by e2e under a per-slot
//! sequence lock so the ack hot path can offer exemplars without
//! blocking, and the admin `slowest` command can read them without
//! stopping the writers.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::ring::{EventKind, TraceEvent};
use crate::span::SlotSpan;

/// One command's life through this node, assembled from its
/// command-scoped events and the slot span it landed in.
///
/// Every timestamp is µs on this node's recorder clock; every field is
/// `Option` because the ring tail may hold only part of the command's
/// life (and relay-path commands leave different marks on the origin
/// and the coordinator). Derived segments are only present when both
/// endpoints are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmdSpan {
    /// The compact command id (`gencon_load::encode_cmd` namespacing).
    pub cmd: u64,
    /// The consensus slot the command was decided in, when known
    /// (`CmdAcked`'s detail, falling back to `Batched`'s).
    pub slot: Option<u64>,
    /// When the gateway read the submit frame (recorder µs).
    pub submitted_ts_us: Option<u64>,
    /// When the command entered the replica's propose queue.
    pub queued_ts_us: Option<u64>,
    /// When the command was drained into a proposed batch.
    pub batched_ts_us: Option<u64>,
    /// When the reply was released to the client.
    pub acked_ts_us: Option<u64>,
    /// When this node first shipped the command in a relay chunk.
    pub relayed_ts_us: Option<u64>,
    /// When this node first merged the command from a peer's relay.
    pub merged_ts_us: Option<u64>,
    /// The peer the first merged relay came from.
    pub merged_from: Option<u64>,
    /// Submit frame read → propose queue: gateway queueing.
    pub queue_wait_us: Option<u64>,
    /// Propose queue → batch drain: batch-formation wait.
    pub batch_wait_us: Option<u64>,
    /// Batch drain → decided (slot-span join): consensus ordering.
    pub order_us: Option<u64>,
    /// Portion of the ack the reply sat parked behind the durability
    /// gate (the slot span's `ack_gate_us`).
    pub persist_gate_wait_us: Option<u64>,
    /// Decided (slot-span join) → reply released.
    pub ack_us: Option<u64>,
    /// Submit frame read → reply released: what the client felt.
    pub e2e_us: Option<u64>,
    /// Relay legs this node observed for the command (shipped out plus
    /// merged in).
    pub relay_hops: u32,
    /// `Backpressure`/`Redirect` bounces the gateway issued for it.
    pub bounces: u32,
}

impl CmdSpan {
    /// One JSON object, no trailing newline; absent segments are
    /// omitted, counters always appear.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"cmd\":{}", self.cmd);
        let mut push = |name: &str, v: Option<u64>| {
            if let Some(v) = v {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
        };
        push("slot", self.slot);
        push("submitted_ts_us", self.submitted_ts_us);
        push("queued_ts_us", self.queued_ts_us);
        push("batched_ts_us", self.batched_ts_us);
        push("acked_ts_us", self.acked_ts_us);
        push("relayed_ts_us", self.relayed_ts_us);
        push("merged_ts_us", self.merged_ts_us);
        push("merged_from", self.merged_from);
        push("queue_wait_us", self.queue_wait_us);
        push("batch_wait_us", self.batch_wait_us);
        push("order_us", self.order_us);
        push("persist_gate_wait_us", self.persist_gate_wait_us);
        push("ack_us", self.ack_us);
        push("e2e_us", self.e2e_us);
        out.push_str(&format!(
            ",\"relay_hops\":{},\"bounces\":{}}}",
            self.relay_hops, self.bounces
        ));
        out
    }
}

#[derive(Clone, Copy, Default)]
struct CmdMarks {
    submitted: Option<u64>,
    queued: Option<u64>,
    batched: Option<(u64, u64)>, // (ts, proposed slot)
    acked: Option<(u64, u64)>,   // (ts, decided slot)
    relayed: Option<u64>,
    merged: Option<(u64, u64)>, // (ts, sender peer)
    relay_hops: u32,
    bounces: u32,
}

/// Joins command-scoped `events` by command id into latency
/// breakdowns, one [`CmdSpan`] per command seen, ordered by command id,
/// joined with `slot_spans` (sorted by slot, as [`crate::span::assemble_spans`]
/// returns them) through the decided slot.
///
/// For each timestamp kind the **first** occurrence per command wins
/// (retries do not stretch the span); `Relayed`/`RelayMerged`/`Bounced`
/// occurrences are *counted* beyond the first. Commands whose slot
/// never decided inside the window (or decided on a peer) simply lack
/// the slot-anchored segments — a partial view is still a view.
#[must_use]
pub fn assemble_cmd_spans(events: &[TraceEvent], slot_spans: &[SlotSpan]) -> Vec<CmdSpan> {
    let mut marks: Vec<(u64, CmdMarks)> = Vec::new();
    fn at(marks: &mut Vec<(u64, CmdMarks)>, key: u64) -> usize {
        match marks.binary_search_by_key(&key, |(c, _)| *c) {
            Ok(i) => i,
            Err(i) => {
                marks.insert(i, (key, CmdMarks::default()));
                i
            }
        }
    }
    for ev in events {
        match ev.kind {
            EventKind::Submitted
            | EventKind::CmdQueued
            | EventKind::Batched
            | EventKind::Relayed
            | EventKind::RelayMerged
            | EventKind::Bounced
            | EventKind::CmdAcked => {}
            _ => continue,
        }
        let i = at(&mut marks, ev.slot); // cmd-scoped events carry the cmd id here
        let m = &mut marks[i].1;
        match ev.kind {
            EventKind::Submitted => m.submitted = m.submitted.or(Some(ev.ts_us)),
            EventKind::CmdQueued => m.queued = m.queued.or(Some(ev.ts_us)),
            EventKind::Batched => m.batched = m.batched.or(Some((ev.ts_us, ev.detail))),
            EventKind::Relayed => {
                m.relayed = m.relayed.or(Some(ev.ts_us));
                m.relay_hops = m.relay_hops.saturating_add(1);
            }
            EventKind::RelayMerged => {
                m.merged = m.merged.or(Some((ev.ts_us, ev.detail)));
                m.relay_hops = m.relay_hops.saturating_add(1);
            }
            EventKind::Bounced => m.bounces = m.bounces.saturating_add(1),
            EventKind::CmdAcked => m.acked = m.acked.or(Some((ev.ts_us, ev.detail))),
            _ => unreachable!(),
        }
    }
    marks
        .into_iter()
        .map(|(cmd, m)| {
            let slot = m.acked.map(|(_, s)| s).or(m.batched.map(|(_, s)| s));
            let span = slot.and_then(|s| {
                slot_spans
                    .binary_search_by_key(&s, |sp| sp.slot)
                    .ok()
                    .map(|i| slot_spans[i])
            });
            let decided = span.and_then(|sp| sp.decided_ts_us);
            let submitted = m.submitted;
            let acked_ts = m.acked.map(|(ts, _)| ts);
            CmdSpan {
                cmd,
                slot,
                submitted_ts_us: submitted,
                queued_ts_us: m.queued,
                batched_ts_us: m.batched.map(|(ts, _)| ts),
                acked_ts_us: acked_ts,
                relayed_ts_us: m.relayed,
                merged_ts_us: m.merged.map(|(ts, _)| ts),
                merged_from: m.merged.map(|(_, from)| from),
                queue_wait_us: match (submitted, m.queued) {
                    (Some(s), Some(q)) => Some(q.saturating_sub(s)),
                    _ => None,
                },
                batch_wait_us: match (m.queued, m.batched) {
                    (Some(q), Some((b, _))) => Some(b.saturating_sub(q)),
                    _ => None,
                },
                order_us: match (m.batched, decided) {
                    (Some((b, _)), Some(d)) => Some(d.saturating_sub(b)),
                    _ => None,
                },
                persist_gate_wait_us: span.and_then(|sp| sp.ack_gate_us),
                ack_us: match (decided, acked_ts) {
                    (Some(d), Some(a)) => Some(a.saturating_sub(d)),
                    _ => None,
                },
                e2e_us: match (submitted, acked_ts) {
                    (Some(s), Some(a)) => Some(a.saturating_sub(s)),
                    _ => None,
                },
                relay_hops: m.relay_hops,
                bounces: m.bounces,
            }
        })
        .collect()
}

/// One slow-command exemplar: enough to find the command again in a
/// pulled trace (and to stitch its relay hops cluster-wide).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmdExemplar {
    /// The compact command id.
    pub cmd: u64,
    /// End-to-end latency, submit frame read → reply released (µs).
    pub e2e_us: u64,
    /// The slot the command decided in.
    pub slot: u64,
    /// Submit instant on this node's recorder clock (µs) — mappable
    /// into the monitor timebase by a clock estimate.
    pub submitted_ts_us: u64,
    /// Relay legs the gateway's trace observed for the command.
    pub relay_hops: u32,
}

impl CmdExemplar {
    /// One JSON object, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cmd\":{},\"e2e_us\":{},\"slot\":{},\"submitted_ts_us\":{},\"relay_hops\":{}}}",
            self.cmd, self.e2e_us, self.slot, self.submitted_ts_us, self.relay_hops
        )
    }
}

/// Exemplar slots retained — the "top-K by e2e" the admin `slowest`
/// command can surface.
const SLOW_SLOTS: usize = 16;

/// One exemplar under a per-slot sequence lock. Unlike [`crate::HashCell`],
/// whose global ticket assigns each writer a private slot, *any* ack
/// thread may target *any* slot here (whichever currently holds the
/// minimum), so the sequence word doubles as a try-lock: a writer
/// claims the slot by CAS-ing the even sequence to odd, re-verifies the
/// displacement decision inside the lock, and publishes with the next
/// even value. Readers use the standard seqlock protocol.
#[derive(Default)]
struct SlowSlot {
    /// 0 = never written; odd = write in progress.
    seq: AtomicU64,
    cmd: AtomicU64,
    e2e_us: AtomicU64,
    slot: AtomicU64,
    submitted_ts_us: AtomicU64,
    relay_hops: AtomicU32,
}

/// A bounded lock-free ring of the slowest commands seen (top-K by
/// end-to-end latency). Clones share the ring; offering never blocks
/// readers and never allocates, so it is safe on the ack hot path.
///
/// Each slot's e2e only ever grows (displacement is re-verified inside
/// the per-slot lock), so a rejected offer had `K` residents at least
/// as slow at decision time — the ring holds a true top-K modulo ties.
#[derive(Clone)]
pub struct SlowCmdRing {
    slots: Arc<Vec<SlowSlot>>,
}

impl Default for SlowCmdRing {
    fn default() -> Self {
        SlowCmdRing::new()
    }
}

impl std::fmt::Debug for SlowCmdRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowCmdRing")
            .field("capacity", &SLOW_SLOTS)
            .finish()
    }
}

impl SlowCmdRing {
    /// An empty ring (capacity [`SlowCmdRing::capacity`]).
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOW_SLOTS);
        slots.resize_with(SLOW_SLOTS, SlowSlot::default);
        SlowCmdRing {
            slots: Arc::new(slots),
        }
    }

    /// Exemplars the ring can hold (the K of top-K).
    #[must_use]
    pub fn capacity(&self) -> usize {
        SLOW_SLOTS
    }

    /// Offers an exemplar; it is kept iff it is slower than the current
    /// fastest resident (or an empty slot remains). Safe from any
    /// number of concurrent threads.
    pub fn offer(&self, ex: CmdExemplar) {
        loop {
            // Scan for the displacement victim: an empty slot, else the
            // current minimum e2e. Unlocked reads — the decision is
            // re-verified inside the per-slot lock below.
            let mut victim = 0usize;
            let mut victim_e2e = u64::MAX;
            let mut victim_empty = false;
            for (i, s) in self.slots.iter().enumerate() {
                if s.seq.load(Ordering::Acquire) == 0 {
                    victim = i;
                    victim_empty = true;
                    break;
                }
                let e2e = s.e2e_us.load(Ordering::Relaxed);
                if e2e < victim_e2e {
                    victim_e2e = e2e;
                    victim = i;
                }
            }
            if !victim_empty && ex.e2e_us <= victim_e2e {
                return; // K residents at least this slow — not a top-K entry
            }
            let s = &self.slots[victim];
            let seq = s.seq.load(Ordering::Acquire);
            if seq % 2 == 1 {
                std::hint::spin_loop();
                continue; // another writer holds the slot; rescan
            }
            if s.seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue; // lost the claim race; rescan
            }
            // Inside the lock: the slot may have grown since the scan.
            if seq != 0 && ex.e2e_us <= s.e2e_us.load(Ordering::Relaxed) {
                s.seq.store(seq, Ordering::Release); // payload untouched
                continue; // victim no longer the minimum; rescan
            }
            s.cmd.store(ex.cmd, Ordering::Relaxed);
            s.e2e_us.store(ex.e2e_us, Ordering::Relaxed);
            s.slot.store(ex.slot, Ordering::Relaxed);
            s.submitted_ts_us
                .store(ex.submitted_ts_us, Ordering::Relaxed);
            s.relay_hops.store(ex.relay_hops, Ordering::Relaxed);
            s.seq.store(seq + 2, Ordering::Release);
            return;
        }
    }

    /// The up-to-`n` slowest exemplars, descending by e2e. Torn slots
    /// (a writer lapped us repeatedly) are skipped.
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<CmdExemplar> {
        let mut out = Vec::new();
        for s in self.slots.iter() {
            for _ in 0..8 {
                let before = s.seq.load(Ordering::Acquire);
                if before == 0 {
                    break;
                }
                if before % 2 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let ex = CmdExemplar {
                    cmd: s.cmd.load(Ordering::Relaxed),
                    e2e_us: s.e2e_us.load(Ordering::Relaxed),
                    slot: s.slot.load(Ordering::Relaxed),
                    submitted_ts_us: s.submitted_ts_us.load(Ordering::Relaxed),
                    relay_hops: s.relay_hops.load(Ordering::Relaxed),
                };
                if s.seq.load(Ordering::Acquire) == before {
                    out.push(ex);
                    break;
                }
            }
        }
        out.sort_by(|a, b| b.e2e_us.cmp(&a.e2e_us).then(a.cmd.cmp(&b.cmd)));
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Stage;
    use crate::span::assemble_spans;

    fn ev(ts_us: u64, kind: EventKind, slot: u64, detail: u64) -> TraceEvent {
        TraceEvent {
            ts_us,
            stage: Stage::Ack,
            kind,
            slot,
            detail,
        }
    }

    #[test]
    fn full_command_life_breaks_down() {
        let cmd = 0x0001_0002_0000_0003u64;
        let slot_spans = assemble_spans(&[
            ev(300, EventKind::Decided, 40, 2),
            ev(520, EventKind::Acked, 40, 75),
        ]);
        let events = vec![
            ev(100, EventKind::Submitted, cmd, 1),
            ev(110, EventKind::CmdQueued, cmd, 3),
            ev(150, EventKind::Batched, cmd, 40),
            ev(530, EventKind::CmdAcked, cmd, 40),
        ];
        let spans = assemble_cmd_spans(&events, &slot_spans);
        assert_eq!(spans.len(), 1);
        let s = spans[0];
        assert_eq!(s.cmd, cmd);
        assert_eq!(s.slot, Some(40));
        assert_eq!(s.queue_wait_us, Some(10));
        assert_eq!(s.batch_wait_us, Some(40));
        assert_eq!(s.order_us, Some(150)); // batched 150 → decided 300
        assert_eq!(s.persist_gate_wait_us, Some(75));
        assert_eq!(s.ack_us, Some(230)); // decided 300 → acked 530
        assert_eq!(s.e2e_us, Some(430));
        assert_eq!(s.relay_hops, 0);
        assert_eq!(s.bounces, 0);
        // Segments tile the end-to-end exactly when every mark landed.
        assert_eq!(
            s.queue_wait_us.unwrap()
                + s.batch_wait_us.unwrap()
                + s.order_us.unwrap()
                + s.ack_us.unwrap(),
            s.e2e_us.unwrap()
        );
    }

    #[test]
    fn relay_bounce_counts_and_missing_slot_spans() {
        let cmd = 9u64;
        let events = vec![
            ev(10, EventKind::Submitted, cmd, 0),
            ev(12, EventKind::Bounced, cmd, 0),
            ev(14, EventKind::Bounced, cmd, 1),
            ev(20, EventKind::CmdQueued, cmd, 1),
            ev(30, EventKind::Relayed, cmd, 3),
            ev(95, EventKind::CmdAcked, cmd, 77), // slot 77 span not in window
        ];
        let spans = assemble_cmd_spans(&events, &[]);
        let s = spans[0];
        assert_eq!(s.slot, Some(77));
        assert_eq!(s.bounces, 2);
        assert_eq!(s.relay_hops, 1);
        assert_eq!(s.relayed_ts_us, Some(30));
        assert_eq!(s.e2e_us, Some(85));
        assert_eq!(s.order_us, None, "no slot span, no order segment");
        assert_eq!(s.ack_us, None);
    }

    #[test]
    fn first_occurrence_wins_and_cmds_sort() {
        let events = vec![
            ev(50, EventKind::Submitted, 8, 0),
            ev(90, EventKind::Submitted, 8, 0), // retry must not move it
            ev(10, EventKind::Submitted, 3, 0),
            ev(70, EventKind::CmdAcked, 3, 5),
        ];
        let spans = assemble_cmd_spans(&events, &[]);
        assert_eq!(spans.iter().map(|s| s.cmd).collect::<Vec<_>>(), vec![3, 8]);
        assert_eq!(spans[1].submitted_ts_us, Some(50));
        assert_eq!(spans[0].e2e_us, Some(60));
    }

    #[test]
    fn merged_relay_marks_the_sender() {
        let events = vec![ev(44, EventKind::RelayMerged, 6, 2)];
        let spans = assemble_cmd_spans(&events, &[]);
        assert_eq!(spans[0].merged_ts_us, Some(44));
        assert_eq!(spans[0].merged_from, Some(2));
        assert_eq!(spans[0].relay_hops, 1);
        assert_eq!(spans[0].e2e_us, None);
    }

    #[test]
    fn json_omits_missing_counts_counters_always() {
        let spans = assemble_cmd_spans(&[ev(5, EventKind::Submitted, 2, 0)], &[]);
        assert_eq!(
            spans[0].to_json(),
            "{\"cmd\":2,\"submitted_ts_us\":5,\"relay_hops\":0,\"bounces\":0}"
        );
        let ex = CmdExemplar {
            cmd: 7,
            e2e_us: 1_200,
            slot: 3,
            submitted_ts_us: 44,
            relay_hops: 2,
        };
        assert_eq!(
            ex.to_json(),
            "{\"cmd\":7,\"e2e_us\":1200,\"slot\":3,\"submitted_ts_us\":44,\"relay_hops\":2}"
        );
    }

    #[test]
    fn ring_keeps_the_slowest() {
        let ring = SlowCmdRing::new();
        assert!(ring.top(4).is_empty());
        for i in 1..=40u64 {
            ring.offer(CmdExemplar {
                cmd: i,
                e2e_us: i * 10,
                slot: i,
                submitted_ts_us: i,
                relay_hops: 0,
            });
        }
        let top = ring.top(4);
        assert_eq!(
            top.iter().map(|e| e.e2e_us).collect::<Vec<_>>(),
            vec![400, 390, 380, 370]
        );
        let all = ring.top(usize::MAX);
        assert_eq!(all.len(), ring.capacity());
        // The K slowest of 40 offers are e2e 250..=400.
        assert!(all.iter().all(|e| e.e2e_us > 240));
    }

    #[test]
    fn ring_ignores_fast_commands_once_full() {
        let ring = SlowCmdRing::new();
        for i in 0..SLOW_SLOTS as u64 {
            ring.offer(CmdExemplar {
                cmd: i,
                e2e_us: 1_000 + i,
                slot: 0,
                submitted_ts_us: 0,
                relay_hops: 0,
            });
        }
        ring.offer(CmdExemplar {
            cmd: 99,
            e2e_us: 5,
            slot: 0,
            submitted_ts_us: 0,
            relay_hops: 0,
        });
        assert!(ring.top(usize::MAX).iter().all(|e| e.cmd != 99));
    }

    #[test]
    fn concurrent_offers_keep_true_top_k() {
        let ring = SlowCmdRing::new();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    // Interleaved e2e values: thread t offers t+4k for
                    // k = 0..5000, so the global top-16 is exactly
                    // 19_984..20_000 regardless of interleaving.
                    for k in 0..5_000u64 {
                        let e2e = t + 4 * k;
                        ring.offer(CmdExemplar {
                            cmd: e2e,
                            e2e_us: e2e,
                            slot: k,
                            submitted_ts_us: k,
                            relay_hops: t as u32,
                        });
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let top = ring.top(usize::MAX);
        let mut e2es: Vec<u64> = top.iter().map(|e| e.e2e_us).collect();
        e2es.sort_unstable();
        assert_eq!(e2es, (19_984..20_000).collect::<Vec<u64>>());
        // Payload consistency: cmd mirrors e2e by construction.
        assert!(top.iter().all(|e| e.cmd == e.e2e_us), "torn exemplar");
    }
}
