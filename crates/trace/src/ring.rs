//! The lock-free event ring and its vocabulary of stages and kinds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which pipeline stage emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Frame decode/auth and the ingest queue.
    Ingest,
    /// The single-threaded consensus round loop.
    Order,
    /// The gateway apply stage.
    Apply,
    /// The gateway ack stage.
    Ack,
    /// The durable persist stage (WAL append + fsync).
    Persist,
    /// Chunked snapshot state transfer.
    Transfer,
    /// Per-peer liveness bookkeeping.
    Peer,
}

impl Stage {
    fn from_u8(v: u8) -> Option<Stage> {
        Some(match v {
            0 => Stage::Ingest,
            1 => Stage::Order,
            2 => Stage::Apply,
            3 => Stage::Ack,
            4 => Stage::Persist,
            5 => Stage::Transfer,
            6 => Stage::Peer,
            _ => return None,
        })
    }

    /// Stable lowercase name used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Order => "order",
            Stage::Apply => "apply",
            Stage::Ack => "ack",
            Stage::Persist => "persist",
            Stage::Transfer => "transfer",
            Stage::Peer => "peer",
        }
    }
}

/// What happened. The slot lifecycle kinds carry the slot number in
/// [`TraceEvent::slot`]; round- and peer-scoped kinds reuse the field
/// for the round or peer id (documented per kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A client frame was decoded and enqueued (`slot` = 0, `detail` =
    /// ingest queue depth after the enqueue).
    Ingested,
    /// A frame was shed because the ingest queue was full (`detail` =
    /// queue capacity).
    Shed,
    /// This node first proposed a value for `slot`.
    Proposed,
    /// The round loop advanced (`slot` = new round, `detail` = the
    /// adaptive collect deadline armed for it, in µs).
    RoundAdvance,
    /// A collect deadline expired (`slot` = round, `detail` = the
    /// adaptive deadline that expired, in µs).
    Timeout,
    /// `slot` was committed by consensus (`detail` = round).
    Decided,
    /// `slot` was enqueued for the apply stage (`detail` = apply queue
    /// depth after the enqueue).
    ApplyQueued,
    /// `slot` was applied to the state machine (`detail` = service µs).
    Applied,
    /// `slot` was enqueued for the persist stage (`detail` = persist
    /// queue depth after the enqueue).
    PersistQueued,
    /// `slot` became durable — its batch was appended and fsynced
    /// (`detail` = service µs for the group commit that covered it).
    Persisted,
    /// The reply for `slot` was released to the client (`detail` = µs
    /// the ack was parked waiting for the durability gate).
    Acked,
    /// This node broadcast a snapshot request (`slot` = its committed
    /// watermark, `detail` = the highest slot peers have referenced).
    SnapshotRequested,
    /// This node served a snapshot manifest (`slot` = boundary,
    /// `detail` = the requesting peer's id).
    ManifestServed,
    /// This node served one snapshot chunk (`slot` = boundary,
    /// `detail` = chunk index).
    ChunkServed,
    /// This node fetched one snapshot chunk (`slot` = boundary,
    /// `detail` = chunk index).
    ChunkFetched,
    /// A fetched snapshot was installed (`slot` = boundary, `detail` =
    /// encoded state size in bytes).
    SnapshotInstalled,
    /// A peer fell silent past the liveness grace (`slot` = peer id,
    /// `detail` = last round it was heard in).
    PeerWrittenOff,
    /// A written-off peer spoke again and was re-enrolled (`slot` =
    /// peer id, `detail` = the round it resurfaced in).
    PeerReEnrolled,
    /// First frame received from a sender during a round's collect
    /// window (`slot` = round, `detail` = the peer id heard from).
    HeardFrom,
    /// The TD-th concordant round message landed — the decision
    /// quorum is complete (`slot` = round, `detail` = the peer id
    /// whose message completed it; this node's own id when buffered
    /// frames already held a quorum at round entry).
    QuorumReached,
    /// A client command arrived at the gateway's submission drain
    /// (`slot` = the compact command id, `detail` = the source
    /// connection id). Command-scoped kinds reuse the `slot` field for
    /// the command id; `assemble_cmd_spans` joins them back to slots
    /// through [`EventKind::CmdAcked`]'s detail.
    Submitted,
    /// The command entered the replica's proposal queue (`slot` = cmd
    /// id, `detail` = queue depth after the submit).
    CmdQueued,
    /// The command was drained from the queue into a batch this node
    /// proposed (`slot` = cmd id, `detail` = the consensus slot the
    /// batch was proposed for).
    Batched,
    /// The command left this node inside an outgoing relay chunk
    /// (`slot` = cmd id, `detail` = the number of peers it went to).
    Relayed,
    /// The command arrived inside a peer's relay chunk (`slot` = cmd
    /// id, `detail` = the sending peer's id).
    RelayMerged,
    /// The command bounced back to its client (`slot` = cmd id,
    /// `detail` = 0 for backpressure, 1 for redirect).
    Bounced,
    /// The command's committed reply was released to the client
    /// (`slot` = cmd id, `detail` = the consensus slot it decided in).
    CmdAcked,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Ingested,
            1 => EventKind::Shed,
            2 => EventKind::Proposed,
            3 => EventKind::RoundAdvance,
            4 => EventKind::Timeout,
            5 => EventKind::Decided,
            6 => EventKind::ApplyQueued,
            7 => EventKind::Applied,
            8 => EventKind::PersistQueued,
            9 => EventKind::Persisted,
            10 => EventKind::Acked,
            11 => EventKind::SnapshotRequested,
            12 => EventKind::ManifestServed,
            13 => EventKind::ChunkServed,
            14 => EventKind::ChunkFetched,
            15 => EventKind::SnapshotInstalled,
            16 => EventKind::PeerWrittenOff,
            17 => EventKind::PeerReEnrolled,
            18 => EventKind::HeardFrom,
            19 => EventKind::QuorumReached,
            20 => EventKind::Submitted,
            21 => EventKind::CmdQueued,
            22 => EventKind::Batched,
            23 => EventKind::Relayed,
            24 => EventKind::RelayMerged,
            25 => EventKind::Bounced,
            26 => EventKind::CmdAcked,
            _ => return None,
        })
    }

    /// Stable lowercase name used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Ingested => "ingested",
            EventKind::Shed => "shed",
            EventKind::Proposed => "proposed",
            EventKind::RoundAdvance => "round_advance",
            EventKind::Timeout => "timeout",
            EventKind::Decided => "decided",
            EventKind::ApplyQueued => "apply_queued",
            EventKind::Applied => "applied",
            EventKind::PersistQueued => "persist_queued",
            EventKind::Persisted => "persisted",
            EventKind::Acked => "acked",
            EventKind::SnapshotRequested => "snapshot_requested",
            EventKind::ManifestServed => "manifest_served",
            EventKind::ChunkServed => "chunk_served",
            EventKind::ChunkFetched => "chunk_fetched",
            EventKind::SnapshotInstalled => "snapshot_installed",
            EventKind::PeerWrittenOff => "peer_written_off",
            EventKind::PeerReEnrolled => "peer_re_enrolled",
            EventKind::HeardFrom => "heard_from",
            EventKind::QuorumReached => "quorum_reached",
            EventKind::Submitted => "submitted",
            EventKind::CmdQueued => "cmd_queued",
            EventKind::Batched => "batched",
            EventKind::Relayed => "relayed",
            EventKind::RelayMerged => "relay_merged",
            EventKind::Bounced => "bounced",
            EventKind::CmdAcked => "cmd_acked",
        }
    }
}

/// One recorded event, decoded out of the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// The stage that recorded the event.
    pub stage: Stage,
    /// What happened.
    pub kind: EventKind,
    /// The slot the event concerns (or round / peer id — see
    /// [`EventKind`]).
    pub slot: u64,
    /// Kind-specific payload (queue depth, service µs, chunk index…).
    pub detail: u64,
}

impl TraceEvent {
    /// One JSON object, no trailing newline:
    /// `{"ts_us":…,"stage":"…","kind":"…","slot":…,"detail":…}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts_us\":{},\"stage\":\"{}\",\"kind\":\"{}\",\"slot\":{},\"detail\":{}}}",
            self.ts_us,
            self.stage.as_str(),
            self.kind.as_str(),
            self.slot,
            self.detail
        )
    }
}

/// One ring cell: a sequence word plus the four event fields.
///
/// The sequence word of the cell holding ticket `t` is `2·t + 1` while
/// a writer is mid-write and `2·t + 2` once published; readers accept a
/// cell only if they observe the *published* value for the exact ticket
/// they expect both before and after reading the fields, so an event is
/// either decoded whole or skipped — never torn.
#[derive(Default)]
struct Cell {
    seq: AtomicU64,
    ts_us: AtomicU64,
    tag: AtomicU64, // stage in bits 8.., kind in bits 0..8
    slot: AtomicU64,
    detail: AtomicU64,
}

struct Ring {
    cells: Vec<Cell>,
    mask: u64,
    next: AtomicU64,
    epoch: Instant,
    epoch_id: u64,
}

/// A fixed-capacity, lock-free, multi-writer flight recorder.
///
/// Clones share the same ring. Capacity is rounded up to a power of
/// two (minimum 64); once full, new events overwrite the oldest.
/// Everything runs on `SeqCst` atomics — a recording is ~7 atomic ops,
/// cheap enough to leave on under full load (see the overhead guard
/// test in `gencon-load`).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (rounded up to a
    /// power of two, minimum 64).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        let mut cells = Vec::with_capacity(cap);
        cells.resize_with(cap, Cell::default);
        FlightRecorder {
            inner: Arc::new(Ring {
                cells,
                mask: (cap - 1) as u64,
                next: AtomicU64::new(0),
                epoch: Instant::now(),
                epoch_id: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_micros() as u64),
            }),
        }
    }

    /// Number of events the ring retains.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.cells.len()
    }

    /// Total events ever recorded (including those since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.next.load(Ordering::SeqCst)
    }

    /// Microseconds since the recorder was created — the clock every
    /// event timestamp is on.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// An id for this recorder's clock epoch (wall-clock µs sampled at
    /// construction). Two readings of `now_us` are only comparable when
    /// taken under the same epoch id: a changed id means the process —
    /// and therefore the `Instant` epoch behind `now_us` — restarted,
    /// invalidating any previously estimated clock offset.
    #[must_use]
    pub fn epoch_id(&self) -> u64 {
        self.inner.epoch_id
    }

    /// Records one event. Never blocks; wraps by overwriting the
    /// oldest event.
    pub fn record(&self, stage: Stage, kind: EventKind, slot: u64, detail: u64) {
        let ring = &self.inner;
        let ts = ring.epoch.elapsed().as_micros() as u64;
        let t = ring.next.fetch_add(1, Ordering::SeqCst);
        let cell = &ring.cells[(t & ring.mask) as usize];
        cell.seq.store(2 * t + 1, Ordering::SeqCst);
        cell.ts_us.store(ts, Ordering::SeqCst);
        cell.tag
            .store(((stage as u64) << 8) | kind as u64 & 0xff, Ordering::SeqCst);
        cell.slot.store(slot, Ordering::SeqCst);
        cell.detail.store(detail, Ordering::SeqCst);
        cell.seq.store(2 * t + 2, Ordering::SeqCst);
    }

    /// The most recent ≤ `n` events, oldest first (ordered by
    /// timestamp, claim order breaking ties).
    ///
    /// Non-destructive: the ring keeps recording while and after the
    /// tail is taken. Cells a concurrent writer is overwriting are
    /// skipped, so every returned event is internally consistent.
    #[must_use]
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let ring = &self.inner;
        let total = ring.next.load(Ordering::SeqCst);
        let window = (n as u64).min(total).min(ring.cells.len() as u64);
        let mut out = Vec::with_capacity(window as usize);
        for t in (total - window)..total {
            let cell = &ring.cells[(t & ring.mask) as usize];
            if cell.seq.load(Ordering::SeqCst) != 2 * t + 2 {
                continue; // not yet published, or already overwritten
            }
            let ts_us = cell.ts_us.load(Ordering::SeqCst);
            let tag = cell.tag.load(Ordering::SeqCst);
            let slot = cell.slot.load(Ordering::SeqCst);
            let detail = cell.detail.load(Ordering::SeqCst);
            if cell.seq.load(Ordering::SeqCst) != 2 * t + 2 {
                continue; // a writer lapped us mid-read
            }
            let stage = Stage::from_u8((tag >> 8) as u8);
            let kind = EventKind::from_u8(tag as u8);
            if let (Some(stage), Some(kind)) = (stage, kind) {
                out.push((
                    t,
                    TraceEvent {
                        ts_us,
                        stage,
                        kind,
                        slot,
                        detail,
                    },
                ));
            }
        }
        out.sort_by_key(|(t, ev)| (ev.ts_us, *t));
        out.into_iter().map(|(_, ev)| ev).collect()
    }
}

/// An optional recording handle stages carry on their hot paths.
///
/// A `Tracer` built from `None` is a no-op: [`Tracer::rec`] is a single
/// branch. This lets every pipeline stage take tracing unconditionally
/// without the caller paying for it when disabled.
#[derive(Clone, Debug, Default)]
pub struct Tracer(Option<FlightRecorder>);

impl Tracer {
    /// A tracer recording into `recorder`, or a no-op for `None`.
    #[must_use]
    pub fn new(recorder: Option<FlightRecorder>) -> Self {
        Tracer(recorder)
    }

    /// A no-op tracer.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Whether events actually land anywhere.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event if enabled.
    pub fn rec(&self, stage: Stage, kind: EventKind, slot: u64, detail: u64) {
        if let Some(r) = &self.0 {
            r.record(stage, kind, slot, detail);
        }
    }

    /// Microseconds on the recorder's clock (0 when disabled) — for
    /// stages that measure a duration before recording it.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.0.as_ref().map_or(0, FlightRecorder::now_us)
    }

    /// The underlying recorder, if enabled.
    #[must_use]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.0.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_tails_in_order() {
        let rec = FlightRecorder::new(64);
        for slot in 0..10 {
            rec.record(Stage::Order, EventKind::Decided, slot, slot * 2);
        }
        let tail = rec.tail(10);
        assert_eq!(tail.len(), 10);
        for (i, ev) in tail.iter().enumerate() {
            assert_eq!(ev.slot, i as u64);
            assert_eq!(ev.detail, 2 * i as u64);
            assert_eq!(ev.stage, Stage::Order);
            assert_eq!(ev.kind, EventKind::Decided);
        }
        assert!(tail.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn wraparound_keeps_only_the_suffix() {
        let rec = FlightRecorder::new(64); // min capacity
        for slot in 0..200 {
            rec.record(Stage::Apply, EventKind::Applied, slot, 0);
        }
        let tail = rec.tail(1000);
        assert_eq!(tail.len(), 64);
        let slots: Vec<u64> = tail.iter().map(|e| e.slot).collect();
        assert_eq!(slots, (136..200).collect::<Vec<u64>>());
        assert_eq!(rec.recorded(), 200);
    }

    #[test]
    fn tail_n_smaller_than_retained() {
        let rec = FlightRecorder::new(64);
        for slot in 0..50 {
            rec.record(Stage::Persist, EventKind::Persisted, slot, 7);
        }
        let tail = rec.tail(5);
        let slots: Vec<u64> = tail.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![45, 46, 47, 48, 49]);
    }

    #[test]
    fn every_stage_and_kind_roundtrips() {
        let stages = [
            Stage::Ingest,
            Stage::Order,
            Stage::Apply,
            Stage::Ack,
            Stage::Persist,
            Stage::Transfer,
            Stage::Peer,
        ];
        let kinds = [
            EventKind::Ingested,
            EventKind::Shed,
            EventKind::Proposed,
            EventKind::RoundAdvance,
            EventKind::Timeout,
            EventKind::Decided,
            EventKind::ApplyQueued,
            EventKind::Applied,
            EventKind::PersistQueued,
            EventKind::Persisted,
            EventKind::Acked,
            EventKind::SnapshotRequested,
            EventKind::ManifestServed,
            EventKind::ChunkServed,
            EventKind::ChunkFetched,
            EventKind::SnapshotInstalled,
            EventKind::PeerWrittenOff,
            EventKind::PeerReEnrolled,
            EventKind::HeardFrom,
            EventKind::QuorumReached,
            EventKind::Submitted,
            EventKind::CmdQueued,
            EventKind::Batched,
            EventKind::Relayed,
            EventKind::RelayMerged,
            EventKind::Bounced,
            EventKind::CmdAcked,
        ];
        let rec = FlightRecorder::new(stages.len() * kinds.len());
        for stage in stages {
            for kind in kinds {
                rec.record(stage, kind, 1, 2);
            }
        }
        let tail = rec.tail(usize::MAX);
        assert_eq!(tail.len(), stages.len() * kinds.len());
        let mut it = tail.iter();
        for stage in stages {
            for kind in kinds {
                let ev = it.next().unwrap();
                assert_eq!((ev.stage, ev.kind), (stage, kind));
            }
        }
    }

    #[test]
    fn json_shape() {
        let ev = TraceEvent {
            ts_us: 12,
            stage: Stage::Ack,
            kind: EventKind::Acked,
            slot: 3,
            detail: 450,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ts_us\":12,\"stage\":\"ack\",\"kind\":\"acked\",\"slot\":3,\"detail\":450}"
        );
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.rec(Stage::Order, EventKind::Decided, 1, 1); // must not panic
        assert_eq!(t.now_us(), 0);
        assert!(t.recorder().is_none());
    }

    #[test]
    fn concurrent_writers_never_tear() {
        use std::thread;
        let rec = FlightRecorder::new(256);
        let writers = 4;
        let per_writer = 5_000u64;
        thread::scope(|s| {
            for w in 0..writers {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..per_writer {
                        // slot and detail carry the same tag so a torn
                        // read (fields from two writers) is detectable.
                        let tag = (w as u64) << 32 | i;
                        rec.record(Stage::Order, EventKind::Decided, tag, tag ^ u64::MAX);
                    }
                });
            }
        });
        let tail = rec.tail(usize::MAX);
        assert!(!tail.is_empty() && tail.len() <= 256);
        for ev in &tail {
            assert_eq!(ev.slot, ev.detail ^ u64::MAX, "torn event: {ev:?}");
        }
        assert_eq!(rec.recorded(), writers as u64 * per_writer);
    }
}
