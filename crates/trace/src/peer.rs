//! Shared per-peer health the order loop publishes and admin reads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const NEVER: u64 = u64::MAX;

#[derive(Default)]
struct PeerCell {
    last_heard_round: AtomicU64,
    ahead_slot: AtomicU64,
    written_off: AtomicBool,
    heard: AtomicBool,
}

/// One peer's health as seen by this node, snapshotted for display.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerRow {
    /// The peer's process id.
    pub peer: u64,
    /// The highest round a frame from this peer was seen in
    /// (`u64::MAX` rendered as `null` when never heard).
    pub last_heard_round: u64,
    /// `current_round - last_heard_round` (0 when never heard — the
    /// peer is fully unknown, not lagging).
    pub lag_rounds: u64,
    /// The highest committed-slot watermark this peer has advertised.
    pub ahead_slot: u64,
    /// Whether the liveness rule has written the peer off.
    pub written_off: bool,
}

impl PeerRow {
    /// One JSON object, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let last = if self.last_heard_round == NEVER {
            "null".to_string()
        } else {
            self.last_heard_round.to_string()
        };
        format!(
            "{{\"peer\":{},\"last_heard_round\":{},\"lag_rounds\":{},\"ahead_slot\":{},\"written_off\":{}}}",
            self.peer, last, self.lag_rounds, self.ahead_slot, self.written_off
        )
    }
}

/// Lock-free per-peer health table shared between the order loop
/// (writer) and the admin endpoint (reader). Clones share the table.
#[derive(Clone, Default)]
pub struct PeerTable {
    cells: Arc<Vec<PeerCell>>,
}

impl std::fmt::Debug for PeerTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerTable")
            .field("peers", &self.cells.len())
            .finish()
    }
}

impl PeerTable {
    /// A table for `n` peers (process ids `0..n`), all unheard.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let cell = PeerCell::default();
            cell.last_heard_round.store(NEVER, Ordering::Relaxed);
            cells.push(cell);
        }
        PeerTable {
            cells: Arc::new(cells),
        }
    }

    /// Number of peers tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table tracks no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Records that a frame from `peer` was seen in `round`; clears the
    /// written-off flag (hearing a peer re-enrolls it).
    pub fn heard(&self, peer: usize, round: u64) {
        if let Some(cell) = self.cells.get(peer) {
            if cell.heard.load(Ordering::Relaxed) {
                cell.last_heard_round.fetch_max(round, Ordering::Relaxed);
            } else {
                cell.last_heard_round.store(round, Ordering::Relaxed);
                cell.heard.store(true, Ordering::Relaxed);
            }
            cell.written_off.store(false, Ordering::Relaxed);
        }
    }

    /// Records that `peer` advertised committed slots through `slot`.
    pub fn ahead(&self, peer: usize, slot: u64) {
        if let Some(cell) = self.cells.get(peer) {
            cell.ahead_slot.fetch_max(slot, Ordering::Relaxed);
        }
    }

    /// Marks `peer` written off by the liveness rule.
    pub fn write_off(&self, peer: usize) {
        if let Some(cell) = self.cells.get(peer) {
            cell.written_off.store(true, Ordering::Relaxed);
        }
    }

    /// Whether `peer` is currently written off.
    #[must_use]
    pub fn is_written_off(&self, peer: usize) -> bool {
        self.cells
            .get(peer)
            .is_some_and(|c| c.written_off.load(Ordering::Relaxed))
    }

    /// Snapshots every peer against `current_round`, ordered by id.
    #[must_use]
    pub fn rows(&self, current_round: u64) -> Vec<PeerRow> {
        self.cells
            .iter()
            .enumerate()
            .map(|(peer, cell)| {
                let last = cell.last_heard_round.load(Ordering::Relaxed);
                let heard = cell.heard.load(Ordering::Relaxed);
                PeerRow {
                    peer: peer as u64,
                    last_heard_round: if heard { last } else { NEVER },
                    lag_rounds: if heard {
                        current_round.saturating_sub(last)
                    } else {
                        0
                    },
                    ahead_slot: cell.ahead_slot.load(Ordering::Relaxed),
                    written_off: cell.written_off.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_last_heard_and_lag() {
        let table = PeerTable::new(3);
        table.heard(1, 10);
        table.heard(1, 14);
        table.heard(1, 12); // out-of-order frame must not regress
        table.ahead(1, 40);
        let rows = table.rows(20);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].last_heard_round, 14);
        assert_eq!(rows[1].lag_rounds, 6);
        assert_eq!(rows[1].ahead_slot, 40);
        assert!(!rows[1].written_off);
        // Peer 0 was never heard: no lag, null last round.
        assert_eq!(rows[0].last_heard_round, u64::MAX);
        assert_eq!(rows[0].lag_rounds, 0);
    }

    #[test]
    fn write_off_and_re_enroll() {
        let table = PeerTable::new(2);
        table.heard(0, 5);
        table.write_off(0);
        assert!(table.is_written_off(0));
        assert!(table.rows(30)[0].written_off);
        table.heard(0, 31); // speaking again re-enrolls
        assert!(!table.is_written_off(0));
    }

    #[test]
    fn out_of_range_peer_is_ignored() {
        let table = PeerTable::new(1);
        table.heard(9, 1);
        table.write_off(9);
        table.ahead(9, 1);
        assert!(!table.is_written_off(9));
        assert_eq!(table.rows(1).len(), 1);
    }

    #[test]
    fn row_json_renders_null_for_unheard() {
        let table = PeerTable::new(1);
        assert_eq!(
            table.rows(5)[0].to_json(),
            "{\"peer\":0,\"last_heard_round\":null,\"lag_rounds\":0,\"ahead_slot\":0,\"written_off\":false}"
        );
    }
}
