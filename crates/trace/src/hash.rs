//! The published state-hash cell: lock-free cross-node audit evidence.
//!
//! Every replica applies the identical command sequence, so its
//! application state hash at a given *applied-command count* is a pure
//! function of the log prefix — two honest nodes publishing a hash for
//! the same count MUST agree, and a mismatch is hard evidence one of
//! them diverged (the Basilic-style "deceitful fault" audit record).
//!
//! [`HashCell`] is the publication side: a small seqlock ring of the
//! most recent `(applied_count, sha256)` pairs. The apply/persist path
//! publishes at deterministic boundaries (the gateway at applied-count
//! multiples, the durable layer at each snapshot-boundary fold); the
//! admin endpoint's `hash` command snapshots it without blocking the
//! writer, and `gencon-mon` intersects the rings across nodes to check
//! agreement at the highest *common* published count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Published pairs retained; a reader can compare against peers within
/// this many publications of skew.
const SLOTS: usize = 8;

/// One published pair under a sequence lock: `seq` is odd while the
/// writer is mid-update, and changes across every update, so a reader
/// that sees the same even `seq` before and after its copy has an
/// untorn pair.
#[derive(Default)]
struct HashSlot {
    /// 0 = never written; odd = write in progress.
    seq: AtomicU64,
    applied: AtomicU64,
    words: [AtomicU64; 4],
}

struct Inner {
    slots: Vec<HashSlot>,
    /// Publication ticket counter (slot = ticket % SLOTS).
    next: AtomicU64,
}

/// A lock-free ring of the last few published `(applied count, state
/// hash)` pairs. Clones share the cell; publishing never blocks and
/// never allocates, so it is safe on the apply hot path (it only runs
/// at boundaries anyway).
#[derive(Clone)]
pub struct HashCell {
    inner: Arc<Inner>,
}

impl Default for HashCell {
    fn default() -> Self {
        HashCell::new()
    }
}

impl std::fmt::Debug for HashCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashCell")
            .field("published", &self.inner.next.load(Ordering::Relaxed))
            .finish()
    }
}

impl HashCell {
    /// An empty cell (nothing published yet).
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, HashSlot::default);
        HashCell {
            inner: Arc::new(Inner {
                slots,
                next: AtomicU64::new(0),
            }),
        }
    }

    /// Pairs published over the cell's lifetime (≥ retained pairs).
    #[must_use]
    pub fn published(&self) -> u64 {
        self.inner.next.load(Ordering::Relaxed)
    }

    /// Publishes the state hash at `applied` commands, overwriting the
    /// oldest retained pair.
    pub fn publish(&self, applied: u64, hash: [u8; 32]) {
        let ticket = self.inner.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.inner.slots[usize::try_from(ticket % SLOTS as u64).expect("small")];
        // Odd sequence marks the write in progress; Acquire/Release
        // ordering publishes the payload with the closing (even) store.
        let open = ticket * 2 + 1;
        slot.seq.store(open, Ordering::Release);
        slot.applied.store(applied, Ordering::Relaxed);
        for (i, word) in slot.words.iter().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&hash[i * 8..(i + 1) * 8]);
            word.store(u64::from_le_bytes(w), Ordering::Relaxed);
        }
        slot.seq.store(open + 1, Ordering::Release);
    }

    /// Reads one slot, `None` if never written or torn by a concurrent
    /// overwrite (the writer lapped us — the pair is stale anyway).
    fn read_slot(slot: &HashSlot) -> Option<(u64, [u8; 32])> {
        for _ in 0..4 {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                return None;
            }
            let applied = slot.applied.load(Ordering::Relaxed);
            let mut hash = [0u8; 32];
            for (i, word) in slot.words.iter().enumerate() {
                hash[i * 8..(i + 1) * 8]
                    .copy_from_slice(&word.load(Ordering::Relaxed).to_le_bytes());
            }
            if slot.seq.load(Ordering::Acquire) == before {
                return Some((applied, hash));
            }
        }
        None
    }

    /// Every intact retained pair, ascending by applied count.
    #[must_use]
    pub fn recent(&self) -> Vec<(u64, [u8; 32])> {
        let mut out: Vec<(u64, [u8; 32])> = self
            .inner
            .slots
            .iter()
            .filter_map(HashCell::read_slot)
            .collect();
        out.sort_by_key(|(applied, _)| *applied);
        out.dedup_by_key(|(applied, _)| *applied);
        out
    }

    /// The newest published pair, if any.
    #[must_use]
    pub fn latest(&self) -> Option<(u64, [u8; 32])> {
        self.recent().into_iter().next_back()
    }
}

/// Lowercase hex of a published hash (the admin/report encoding).
#[must_use]
pub fn hash_hex(hash: &[u8; 32]) -> String {
    hash.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(b: u8) -> [u8; 32] {
        [b; 32]
    }

    #[test]
    fn publishes_and_reads_back_in_order() {
        let cell = HashCell::new();
        assert!(cell.latest().is_none());
        assert!(cell.recent().is_empty());
        cell.publish(512, h(1));
        cell.publish(1024, h(2));
        assert_eq!(cell.latest(), Some((1024, h(2))));
        assert_eq!(cell.recent(), vec![(512, h(1)), (1024, h(2))]);
        assert_eq!(cell.published(), 2);
    }

    #[test]
    fn ring_retains_only_the_newest_pairs() {
        let cell = HashCell::new();
        for i in 1..=20u64 {
            cell.publish(i * 100, h(i as u8));
        }
        let recent = cell.recent();
        assert_eq!(recent.len(), 8, "ring capacity");
        assert_eq!(recent.first(), Some(&(1_300, h(13))));
        assert_eq!(cell.latest(), Some((2_000, h(20))));
    }

    #[test]
    fn concurrent_reads_never_tear() {
        let cell = HashCell::new();
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                for i in 1..=50_000u64 {
                    // The hash encodes the count, so a mixed pair is
                    // detectable.
                    let mut hash = [0u8; 32];
                    hash[..8].copy_from_slice(&i.to_le_bytes());
                    hash[24..].copy_from_slice(&i.to_le_bytes());
                    cell.publish(i, hash);
                }
            })
        };
        let mut seen = 0u64;
        while !writer.is_finished() {
            for (applied, hash) in cell.recent() {
                let head = u64::from_le_bytes(hash[..8].try_into().unwrap());
                let tail = u64::from_le_bytes(hash[24..].try_into().unwrap());
                assert_eq!(head, applied, "torn pair");
                assert_eq!(tail, applied, "torn hash");
                seen += 1;
            }
        }
        writer.join().unwrap();
        assert!(seen > 0, "reader observed published pairs");
        assert_eq!(cell.latest(), {
            let mut hash = [0u8; 32];
            hash[..8].copy_from_slice(&50_000u64.to_le_bytes());
            hash[24..].copy_from_slice(&50_000u64.to_le_bytes());
            Some((50_000, hash))
        });
    }

    #[test]
    fn hex_encoding_is_stable() {
        let mut hash = [0u8; 32];
        hash[0] = 0xab;
        hash[31] = 0x01;
        let hex = hash_hex(&hash);
        assert_eq!(hex.len(), 64);
        assert!(hex.starts_with("ab"));
        assert!(hex.ends_with("01"));
    }
}
