//! Property tests for command spans and the slow-command exemplar
//! ring: lifecycle causality survives assembly, the segment sum equals
//! the end-to-end time, the ring keeps the true top-K under concurrent
//! writers, and no event soup can panic the assembler.

use proptest::prelude::*;

use gencon_trace::{
    assemble_cmd_spans, assemble_spans, CmdExemplar, EventKind, SlowCmdRing, Stage, TraceEvent,
};

/// A well-formed single-command lifecycle at strictly ordered
/// timestamps, plus the decided slot span anchoring its order segment.
fn lifecycle(
    cmd: u64,
    slot: u64,
    gaps: [u64; 5],
) -> (Vec<TraceEvent>, Vec<gencon_trace::SlotSpan>) {
    let ev = |ts_us, stage, kind, slot, detail| TraceEvent {
        ts_us,
        stage,
        kind,
        slot,
        detail,
    };
    let submitted = 100;
    let queued = submitted + gaps[0];
    let batched = queued + gaps[1];
    let decided = batched + gaps[2];
    let acked = decided + gaps[3] + gaps[4];
    let events = vec![
        ev(submitted, Stage::Ingest, EventKind::Submitted, cmd, 1),
        ev(queued, Stage::Ingest, EventKind::CmdQueued, cmd, 4),
        ev(batched, Stage::Order, EventKind::Batched, cmd, slot),
        ev(batched, Stage::Order, EventKind::Proposed, slot, 1),
        ev(decided, Stage::Order, EventKind::Decided, slot, 1),
        ev(acked, Stage::Ack, EventKind::CmdAcked, cmd, slot),
    ];
    let slots = assemble_spans(&events);
    (events, slots)
}

proptest! {
    /// Causality survives assembly: for any well-formed lifecycle,
    /// `submitted ≤ queued ≤ batched ≤ decided ≤ acked` in the span's
    /// own timestamps, and every segment is the matching difference.
    #[test]
    fn lifecycle_causality_holds(
        cmd in 1u64..u64::MAX,
        slot in 0u64..1 << 40,
        gaps in proptest::collection::vec(0u64..100_000, 5),
    ) {
        let gaps = [gaps[0], gaps[1], gaps[2], gaps[3], gaps[4]];
        let (events, slots) = lifecycle(cmd, slot, gaps);
        let spans = assemble_cmd_spans(&events, &slots);
        prop_assert_eq!(spans.len(), 1);
        let s = &spans[0];
        prop_assert_eq!(s.cmd, cmd);
        prop_assert_eq!(s.slot, Some(slot));
        let submitted = s.submitted_ts_us.unwrap();
        let queued = s.queued_ts_us.unwrap();
        let batched = s.batched_ts_us.unwrap();
        let acked = s.acked_ts_us.unwrap();
        prop_assert!(submitted <= queued);
        prop_assert!(queued <= batched);
        prop_assert!(batched <= acked);
        prop_assert_eq!(s.queue_wait_us, Some(gaps[0]));
        prop_assert_eq!(s.batch_wait_us, Some(gaps[1]));
        prop_assert_eq!(s.order_us, Some(gaps[2]));
        prop_assert_eq!(s.ack_us, Some(gaps[3] + gaps[4]));
        prop_assert_eq!(s.e2e_us, Some(gaps.iter().sum::<u64>()));
    }

    /// The segments tile the span exactly: queue wait + batch wait +
    /// order + ack sums to e2e whenever all five stamps are present
    /// (the stamps share one clock, so there is no rounding slack to
    /// hide in).
    #[test]
    fn segment_sum_equals_e2e(
        cmd in 1u64..u64::MAX,
        slot in 0u64..1 << 40,
        gaps in proptest::collection::vec(0u64..1_000_000, 5),
    ) {
        let gaps = [gaps[0], gaps[1], gaps[2], gaps[3], gaps[4]];
        let (events, slots) = lifecycle(cmd, slot, gaps);
        let spans = assemble_cmd_spans(&events, &slots);
        let s = &spans[0];
        let sum = s.queue_wait_us.unwrap()
            + s.batch_wait_us.unwrap()
            + s.order_us.unwrap()
            + s.ack_us.unwrap();
        prop_assert_eq!(Some(sum), s.e2e_us);
    }

    /// Concurrent writers offering distinct e2e values: the ring ends
    /// holding exactly the K slowest of everything offered. (Per-slot
    /// values only ever grow, and an offer is dropped only after
    /// verifying K residents at least as slow exist — so no top-K entry
    /// can be lost to a race.)
    #[test]
    fn exemplar_ring_holds_true_top_k_under_concurrency(
        writers in 2usize..5,
        per_writer in 1usize..40,
        seed in 0u64..1 << 30,
    ) {
        let ring = SlowCmdRing::new();
        // Distinct e2e values, deterministically shuffled across writers.
        let mut all: Vec<u64> = (0..writers * per_writer)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) % 1_000_003 * 64 + i as u64)
            .collect();
        std::thread::scope(|s| {
            for w in 0..writers {
                let ring = ring.clone();
                let chunk: Vec<u64> =
                    all[w * per_writer..(w + 1) * per_writer].to_vec();
                s.spawn(move || {
                    for e2e in chunk {
                        ring.offer(CmdExemplar {
                            cmd: e2e, // cmd mirrors e2e: lets the check catch torn slots
                            e2e_us: e2e,
                            slot: e2e / 2,
                            submitted_ts_us: e2e / 3,
                            relay_hops: (e2e % 7) as u32,
                        });
                    }
                });
            }
        });
        let top = ring.top(ring.capacity());
        all.sort_unstable_by(|a, b| b.cmp(a));
        let expect: Vec<u64> = all.iter().copied().take(ring.capacity()).collect();
        let got: Vec<u64> = top.iter().map(|e| e.e2e_us).collect();
        prop_assert_eq!(got, expect);
        for e in &top {
            prop_assert_eq!(e.cmd, e.e2e_us);
            prop_assert_eq!(e.slot, e.e2e_us / 2);
        }
    }

    /// Random event soup — arbitrary kinds, ids, details, timestamps —
    /// joined against whatever slot spans the soup itself yields (and
    /// against none at all) never panics, and every produced span
    /// renders to JSON.
    #[test]
    fn random_soup_never_panics(
        raw in proptest::collection::vec(
            (0u64..1 << 20, 0usize..27, 0u64..64, 0u64..1 << 20),
            0..400,
        ),
    ) {
        let kinds = [
            EventKind::Ingested, EventKind::Shed, EventKind::Proposed,
            EventKind::RoundAdvance, EventKind::Timeout, EventKind::Decided,
            EventKind::ApplyQueued, EventKind::Applied, EventKind::PersistQueued,
            EventKind::Persisted, EventKind::Acked, EventKind::SnapshotRequested,
            EventKind::ManifestServed, EventKind::ChunkServed, EventKind::ChunkFetched,
            EventKind::SnapshotInstalled, EventKind::PeerWrittenOff,
            EventKind::PeerReEnrolled, EventKind::HeardFrom, EventKind::QuorumReached,
            EventKind::Submitted, EventKind::CmdQueued, EventKind::Batched,
            EventKind::Relayed, EventKind::RelayMerged, EventKind::Bounced,
            EventKind::CmdAcked,
        ];
        let events: Vec<TraceEvent> = raw
            .iter()
            .map(|&(ts_us, k, slot, detail)| TraceEvent {
                ts_us,
                stage: Stage::Order,
                kind: kinds[k % kinds.len()],
                slot,
                detail,
            })
            .collect();
        let slots = assemble_spans(&events);
        for with_slots in [&slots[..], &[]] {
            let spans = assemble_cmd_spans(&events, with_slots);
            for s in &spans {
                let j = s.to_json();
                prop_assert!(j.starts_with('{') && j.ends_with('}'), "{}", j);
            }
        }
    }
}
