//! Property tests for the flight recorder: wraparound never tears an
//! event, `tail` returns a time-ordered suffix, and concurrent writers
//! cannot corrupt each other's records.

use proptest::prelude::*;

use gencon_trace::{assemble_spans, EventKind, FlightRecorder, Stage, TraceEvent};

fn kinds() -> impl Strategy<Value = EventKind> {
    (0usize..7).prop_map(|i| {
        [
            EventKind::Proposed,
            EventKind::Decided,
            EventKind::ApplyQueued,
            EventKind::Applied,
            EventKind::PersistQueued,
            EventKind::Persisted,
            EventKind::Acked,
        ][i]
    })
}

proptest! {
    /// However many events are pushed through however small a ring,
    /// `tail` returns exactly the newest `min(n, capacity, written)`
    /// events, in order, each one intact.
    #[test]
    fn tail_is_an_ordered_intact_suffix(
        cap in 1usize..700,
        total in 0u64..3000,
        take in 0usize..4000,
    ) {
        let rec = FlightRecorder::new(cap);
        for i in 0..total {
            // slot = i and detail = i * 3 + 1 lets the suffix check
            // also prove no event was torn or duplicated.
            rec.record(Stage::Order, EventKind::Decided, i, i * 3 + 1);
        }
        let tail = rec.tail(take);
        let expect = (take as u64).min(total).min(rec.capacity() as u64);
        prop_assert_eq!(tail.len() as u64, expect);
        for (j, ev) in tail.iter().enumerate() {
            let i = total - expect + j as u64;
            prop_assert_eq!(ev.slot, i);
            prop_assert_eq!(ev.detail, i * 3 + 1);
        }
        for w in tail.windows(2) {
            prop_assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    /// Concurrent writers hammering a deliberately tiny ring: every
    /// event that comes back out decodes whole (slot/detail invariants
    /// hold), timestamps are non-decreasing, and the total count is
    /// exact.
    #[test]
    fn concurrent_wraparound_never_tears(
        writers in 1usize..5,
        per_writer in 1u64..2000,
        cap in 1usize..300,
    ) {
        let rec = FlightRecorder::new(cap);
        std::thread::scope(|s| {
            for w in 0..writers {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..per_writer {
                        let tag = ((w as u64) << 32) | i;
                        rec.record(Stage::Persist, EventKind::Persisted, tag, !tag);
                    }
                });
            }
        });
        prop_assert_eq!(rec.recorded(), writers as u64 * per_writer);
        let tail = rec.tail(usize::MAX);
        prop_assert!(tail.len() <= rec.capacity());
        for ev in &tail {
            prop_assert_eq!(ev.detail, !ev.slot);
            let (w, i) = (ev.slot >> 32, ev.slot & 0xffff_ffff);
            prop_assert!((w as usize) < writers && i < per_writer);
            prop_assert_eq!(ev.stage, Stage::Persist);
            prop_assert_eq!(ev.kind, EventKind::Persisted);
        }
        for w in tail.windows(2) {
            prop_assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    /// Span assembly never panics on arbitrary event soup, only emits
    /// decided slots, and keeps slots sorted and unique.
    #[test]
    fn spans_from_arbitrary_events_are_sane(
        events in proptest::collection::vec(
            (0u64..500, kinds(), 0u64..40, 0u64..1000), 0..300)
    ) {
        let evs: Vec<TraceEvent> = events
            .iter()
            .map(|&(ts_us, kind, slot, detail)| TraceEvent {
                ts_us,
                stage: Stage::Order,
                kind,
                slot,
                detail,
            })
            .collect();
        let spans = assemble_spans(&evs);
        for w in spans.windows(2) {
            prop_assert!(w[0].slot < w[1].slot);
        }
        for s in &spans {
            prop_assert!(s.decided_ts_us.is_some());
            prop_assert!(evs.iter().any(|e| e.kind == EventKind::Decided && e.slot == s.slot));
            let json = s.to_json();
            prop_assert!(json.starts_with(&format!("{{\"slot\":{}", s.slot)));
            prop_assert!(json.ends_with('}'));
        }
    }
}
