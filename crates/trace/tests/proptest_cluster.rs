//! Property tests for the cluster stitcher: random per-node clock
//! offsets, partial/wrapped rings and missing nodes must never panic
//! the stitch, and causally-consistent inputs must stay causal after
//! the clock mapping (propose ≤ quorum ≤ decide per node — one node's
//! timestamps all shift by the same offset).

use proptest::prelude::*;

use gencon_trace::{
    assemble_spans, stitch_spans, ClockEstimate, EventKind, NodeSpans, SlotSpan, Stage, TraceEvent,
};

/// Clock estimates with offsets on both sides of zero (the node's
/// recorder may predate or postdate the monitor's epoch).
fn clock() -> impl Strategy<Value = ClockEstimate> {
    (0u64..4_000_000, 0u64..5_000, 1u32..16).prop_map(|(off, unc, samples)| ClockEstimate {
        offset_us: off as i64 - 2_000_000,
        uncertainty_us: unc,
        epoch_id: 1,
        samples,
    })
}

/// One node's slot observations, causal on its own clock:
/// `(slot, base µs, heard→quorum µs, quorum→decide µs, field mask,
/// peer)`. Mask bits gate which fields the span actually carries
/// (1 = proposed, 2 = first-heard, 4 = quorum, 8 = decided), so every
/// combination of holes gets exercised.
fn observations() -> impl Strategy<Value = Vec<(u64, u64, u64, u64, u8, u64)>> {
    proptest::collection::vec(
        (
            0u64..24,
            0u64..1_000_000,
            0u64..20_000,
            0u64..20_000,
            0u8..16,
            0u64..8,
        ),
        0..32,
    )
}

/// Builds one node's span list from generated observations, keeping
/// the first occurrence of each slot (the stitcher joins by first
/// match too, so assertions can reconstruct exactly what it saw).
fn build_spans(obs: &[(u64, u64, u64, u64, u8, u64)]) -> Vec<SlotSpan> {
    let mut spans: Vec<SlotSpan> = Vec::new();
    for &(slot, base, d1, d2, mask, peer) in obs {
        if spans.iter().any(|s| s.slot == slot) {
            continue;
        }
        let heard = base + d1;
        let quorum = heard + d2;
        let decided = quorum + (d1 >> 1);
        spans.push(SlotSpan {
            slot,
            proposed_ts_us: (mask & 1 != 0).then_some(base),
            first_heard_ts_us: (mask & 2 != 0).then_some(heard),
            first_heard_peer: (mask & 2 != 0).then_some(peer),
            quorum_ts_us: (mask & 4 != 0).then_some(quorum),
            quorum_peer: (mask & 4 != 0).then_some((peer + 1) % 8),
            decided_ts_us: (mask & 8 != 0).then_some(decided),
            decide_round: (mask & 8 != 0).then_some(slot + 100),
            ..SlotSpan::default()
        });
    }
    spans
}

proptest! {
    /// Causal per-node inputs stay causal after mapping, per-node
    /// quorum waits are exact (offset-free), and the cross-node
    /// aggregates (propose attribution, fan-out, decide skew,
    /// uncertainty) match a straight recomputation from the inputs.
    #[test]
    fn stitched_views_respect_causality(
        nodes in proptest::collection::vec((clock(), observations()), 1..5)
    ) {
        let inputs: Vec<NodeSpans> = nodes
            .iter()
            .enumerate()
            .map(|(id, (clock, obs))| NodeSpans {
                node: id as u64,
                clock: *clock,
                spans: build_spans(obs),
            })
            .collect();
        let stitched = stitch_spans(&inputs);

        // Exactly the decided slots come out, in strictly ascending
        // order.
        let mut expect: Vec<u64> = inputs
            .iter()
            .flat_map(|n| n.spans.iter())
            .filter(|s| s.decided_ts_us.is_some())
            .map(|s| s.slot)
            .collect();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<u64> = stitched.iter().map(|s| s.slot).collect();
        prop_assert_eq!(got, expect);

        for span in &stitched {
            let at = |node: u64| {
                inputs[node as usize].spans.iter().find(|s| s.slot == span.slot).unwrap()
            };
            for w in span.nodes.windows(2) {
                prop_assert!(w[0].node < w[1].node);
            }
            for view in &span.nodes {
                let input = at(view.node);
                let clock = inputs[view.node as usize].clock;
                // Only deciders get a per-node view, and its mapped
                // timeline is still causal: heard ≤ quorum ≤ decide.
                prop_assert_eq!(
                    Some(view.decided_ts_us),
                    input.decided_ts_us.map(|ts| clock.map(ts))
                );
                if let (Some(h), Some(q)) = (view.first_heard_ts_us, view.quorum_ts_us) {
                    prop_assert!(h <= q && q <= view.decided_ts_us);
                    // Same-clock difference: exact, no offset error.
                    prop_assert_eq!(
                        view.quorum_wait_us,
                        Some((q - h) as u64)
                    );
                } else {
                    prop_assert!(view.quorum_wait_us.is_none());
                }
                prop_assert!(span.uncertainty_us >= view.uncertainty_us);
            }

            // Propose attribution: the earliest mapped propose among
            // every node that retained the slot (decided or not).
            let expect_propose = inputs
                .iter()
                .filter_map(|n| {
                    n.spans
                        .iter()
                        .find(|s| s.slot == span.slot)
                        .and_then(|s| s.proposed_ts_us)
                        .map(|ts| n.clock.map(ts))
                })
                .min();
            prop_assert_eq!(span.propose_ts_us, expect_propose);

            // Fan-out: propose → earliest mapped first-heard among the
            // deciding views, clamped at zero when clock error inverts
            // the pair.
            let heard_min = span.nodes.iter().filter_map(|v| v.first_heard_ts_us).min();
            let expect_fanout = match (span.propose_ts_us, heard_min) {
                (Some(p), Some(h)) => Some(h.saturating_sub(p).max(0) as u64),
                _ => None,
            };
            prop_assert_eq!(span.fanout_us, expect_fanout);

            // Decide skew needs two observers and is exactly max − min
            // of the mapped decide instants.
            if span.nodes.len() < 2 {
                prop_assert!(span.decide_skew_us.is_none());
            } else {
                let lo = span.nodes.iter().map(|v| v.decided_ts_us).min().unwrap();
                let hi = span.nodes.iter().map(|v| v.decided_ts_us).max().unwrap();
                prop_assert_eq!(span.decide_skew_us, Some((hi - lo) as u64));
            }

            let json = span.to_json();
            prop_assert!(json.starts_with(&format!("{{\"slot\":{}", span.slot)));
            prop_assert!(json.ends_with('}'));
            prop_assert!(json.contains("\"uncertainty_us\":"));
        }
    }

    /// Arbitrary event soup through the real `assemble_spans` →
    /// `stitch_spans` pipeline, with rings wrapped at random points
    /// (only a suffix of each node's events survives) and whole nodes
    /// missing: never panics, keeps slots sorted and unique, and only
    /// emits slots some surviving node actually decided.
    #[test]
    fn wrapped_rings_and_missing_nodes_never_panic(
        nodes in proptest::collection::vec(
            (
                clock(),
                proptest::collection::vec(
                    (0u64..100_000, 0usize..8, 0u64..40, 0u64..50),
                    0..200,
                ),
                0usize..1_000,
                any::<bool>(),
            ),
            1..5,
        )
    ) {
        let kinds = [
            EventKind::Proposed,
            EventKind::RoundAdvance,
            EventKind::Timeout,
            EventKind::Decided,
            EventKind::Applied,
            EventKind::Acked,
            EventKind::HeardFrom,
            EventKind::QuorumReached,
        ];
        let mut inputs: Vec<NodeSpans> = Vec::new();
        let mut survivors: Vec<Vec<TraceEvent>> = Vec::new();
        for (id, (clock, events, wrap, present)) in nodes.iter().enumerate() {
            if !present {
                continue;
            }
            let evs: Vec<TraceEvent> = events
                .iter()
                .map(|&(ts_us, kind, slot, detail)| TraceEvent {
                    ts_us,
                    stage: Stage::Order,
                    kind: kinds[kind],
                    slot,
                    detail,
                })
                .collect();
            // The ring wrapped: only the newest suffix survives.
            let evs = evs[(wrap % (evs.len() + 1)).min(evs.len())..].to_vec();
            inputs.push(NodeSpans {
                node: id as u64,
                clock: *clock,
                spans: assemble_spans(&evs),
            });
            survivors.push(evs);
        }
        let stitched = stitch_spans(&inputs);

        for w in stitched.windows(2) {
            prop_assert!(w[0].slot < w[1].slot);
        }
        for span in &stitched {
            prop_assert!(!span.nodes.is_empty());
            for w in span.nodes.windows(2) {
                prop_assert!(w[0].node < w[1].node);
            }
            // Someone who survived the wrap really decided this slot.
            prop_assert!(survivors.iter().any(|evs| evs
                .iter()
                .any(|e| e.kind == EventKind::Decided && e.slot == span.slot)));
            let json = span.to_json();
            prop_assert!(json.ends_with('}'), "{}", json);
        }
    }
}
