//! Property tests for the application layer: determinism (any kv command
//! stream applied in slot order yields the identical `state_hash()` on
//! every replica, however the slots were batched), fold/restore
//! roundtrips, conservation under random bank traffic, and restore
//! robustness (truncated/corrupted folds are rejected without panicking
//! and leave the state untouched).

use proptest::prelude::*;

use gencon_app::{App, BankApp, BankCmd, BankOp, Folder, KvApp, KvCmd, KvOp};

fn kv_ops() -> impl Strategy<Value = KvOp> {
    let key = proptest::collection::vec(any::<u8>(), 0..6);
    let val_a = proptest::collection::vec(any::<u8>(), 0..10);
    let val_b = proptest::collection::vec(any::<u8>(), 0..10);
    (0u8..4, key, val_a, val_b).prop_map(|(variant, key, a, b)| match variant {
        0 => KvOp::Put { key, value: a },
        1 => KvOp::Get { key },
        2 => KvOp::Del { key },
        _ => KvOp::Cas {
            key,
            expect: a,
            swap: b,
        },
    })
}

/// A stream of unique-id kv commands plus a random (non-decreasing) slot
/// assignment — i.e. a random batching of the same shared sequence.
fn kv_streams() -> impl Strategy<Value = Vec<(KvCmd, u64)>> {
    proptest::collection::vec((kv_ops(), 0u64..4), 0..48).prop_map(|entries| {
        let mut slot = 0u64;
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (op, gap))| {
                slot += gap; // gaps of 0 keep commands in one batch/slot
                (KvCmd { id: i as u64, op }, slot)
            })
            .collect()
    })
}

fn bank_cmds() -> impl Strategy<Value = Vec<BankCmd>> {
    proptest::collection::vec((0u8..2, 0u64..5, 0u64..5, 0u64..1_000), 0..64).prop_map(|ops| {
        ops.into_iter()
            .enumerate()
            .map(|(i, (variant, a, b, amount))| BankCmd {
                id: i as u64,
                op: if variant == 0 {
                    BankOp::Mint { account: a, amount }
                } else {
                    BankOp::Transfer {
                        from: a,
                        to: b,
                        amount,
                    }
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The determinism contract: replicas applying the shared sequence in
    /// slot order end with the identical state hash — and so does a
    /// replica that instead restored a fold taken at any point and then
    /// applied the remainder.
    #[test]
    fn kv_replicas_agree_on_state_hash(stream in kv_streams(), cut_frac in 0usize..100) {
        let mut a = KvApp::default();
        let mut b = KvApp::default();
        for (offset, (cmd, slot)) in stream.iter().enumerate() {
            let ra = a.apply(*slot, offset as u64, cmd);
            let rb = b.apply(*slot, offset as u64, cmd);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.state_hash(), b.state_hash());

        // Fold at an arbitrary cut, restore into a third replica, apply
        // the tail: same final hash (fold is a faithful state capture).
        let cut = (cut_frac * stream.len()) / 100;
        let mut prefix = KvApp::default();
        for (offset, (cmd, slot)) in stream[..cut].iter().enumerate() {
            prefix.apply(*slot, offset as u64, cmd);
        }
        let mut c = KvApp::default();
        c.restore(&prefix.fold_snapshot()).expect("own fold restores");
        for (offset, (cmd, slot)) in stream[cut..].iter().enumerate() {
            c.apply(*slot, (cut + offset) as u64, cmd);
        }
        prop_assert_eq!(c.state_hash(), a.state_hash());
    }

    /// Folding at a boundary is independent of the fold-cut history: a
    /// folder that folded at many intermediate cuts produces the
    /// byte-identical `FoldedState` as one that jumped straight there.
    #[test]
    fn folder_output_is_cut_history_independent(
        stream in kv_streams(),
        mid_frac in 0u64..100,
        horizon in 1u64..8,
    ) {
        let applied: Vec<KvCmd> = stream.iter().map(|(c, _)| c.clone()).collect();
        let slots: Vec<u64> = stream.iter().map(|(_, s)| *s).collect();
        let top = slots.last().map_or(0, |s| s + 1);
        let mid = (mid_frac * top) / 100;

        let mut staged = Folder::<KvApp>::default();
        staged.absorb(&applied, &slots, 0, mid);
        let _ = staged.fold(horizon);
        staged.absorb(&applied, &slots, 0, top);

        let mut direct = Folder::<KvApp>::default();
        direct.absorb(&applied, &slots, 0, top);

        prop_assert_eq!(staged.fold(horizon), direct.fold(horizon));
    }

    /// Conservation: any interleaving of mints and transfers keeps
    /// Σ balances == minted, on the live app and across fold/restore.
    #[test]
    fn bank_conserves_under_random_traffic(cmds in bank_cmds()) {
        let mut bank = BankApp::default();
        for (offset, cmd) in cmds.iter().enumerate() {
            bank.apply(offset as u64 / 3, offset as u64, cmd);
            prop_assert!(bank.conserved());
        }
        let mut back = BankApp::default();
        back.restore(&bank.fold_snapshot()).expect("own fold restores");
        prop_assert!(back.conserved());
        prop_assert_eq!(back.state_hash(), bank.state_hash());
    }

    /// Restore robustness: every strict truncation of a valid fold is
    /// rejected, arbitrary corruption never panics, and a failed restore
    /// leaves the state untouched.
    #[test]
    fn truncated_or_corrupted_folds_never_panic_or_corrupt(
        stream in kv_streams(),
        cut in 0usize..4_096,
        pos in 0usize..4_096,
        flip in 1u8..=255,
    ) {
        let mut kv = KvApp::default();
        for (offset, (cmd, slot)) in stream.iter().enumerate() {
            kv.apply(*slot, offset as u64, cmd);
        }
        let folded = kv.fold_snapshot();
        let before = kv.state_hash();

        if !folded.is_empty() {
            let cut = cut % folded.len();
            prop_assert!(kv.restore(&folded[..cut]).is_err(), "strict prefix rejected");
            prop_assert_eq!(kv.state_hash(), before);

            let mut corrupted = folded.clone();
            let pos = pos % corrupted.len();
            corrupted[pos] ^= flip;
            // Corruption may or may not decode; it must never panic, and
            // on failure the state is untouched.
            if kv.restore(&corrupted).is_err() {
                prop_assert_eq!(kv.state_hash(), before);
            }
            // A clean restore always works afterwards.
            kv.restore(&folded).expect("valid fold restores");
            prop_assert_eq!(kv.state_hash(), before);
        }
    }
}
