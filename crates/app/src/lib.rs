//! Pluggable replicated state machines for `gencon` — the application
//! layer of the SMR stack.
//!
//! Everything below this crate agrees on a *log*; this crate is what the
//! log **means**. An [`App`] deterministically applies each committed
//! command, produces the [`App::Reply`] a client gets back with its
//! commit ack, and — the part that unlocks production scale — **folds**
//! its entire state into a compact snapshot: `fold_snapshot()` is
//! O(live state), not O(history), so periodic durability snapshots and
//! laggard state transfer stop paying for the log's age (PR 4 snapshotted
//! the full applied history and capped out near 1M commands; see
//! `LogApp` for that mode, preserved as just another `App`).
//!
//! Three applications ship:
//!
//! * [`KvApp`] — an ordered key-value store (put/get/del/cas) whose
//!   state is the live key set: the workhorse for end-to-end service
//!   benchmarks (experiment E11);
//! * [`BankApp`] — accounts with mint/transfer and a conservation
//!   invariant (`Σ balances == minted`), the cross-node consistency
//!   canary: any divergence in apply order breaks the invariant loudly;
//! * [`LogApp`] — the append-everything state machine: its folded state
//!   *is* the applied history, reproducing the pre-application-layer
//!   behavior (and its O(history) snapshot cost) for comparison and for
//!   tests that assert on raw logs.
//!
//! [`Applier`] and [`Folder`] are the two drive modes the server stack
//! uses: an `Applier` runs *live* (applies every command the moment it
//! flattens, for client replies), a `Folder` lags at snapshot-boundary
//! cuts so every replica folds the byte-identical
//! [`FoldedState`](gencon_net::FoldedState) for `b + 1`-vouched chunked
//! state transfer.
//!
//! # Determinism contract
//!
//! For every `App`: `apply` must be a pure function of (current state,
//! slot, offset, command); `fold_snapshot` must be a pure function of the
//! state (identical states fold to identical bytes — iteration order
//! must be canonical); `restore(fold_snapshot())` must reproduce the
//! state exactly. [`App::state_hash`] (SHA-256 over the folded bytes by
//! default) is the cross-replica agreement check built on that contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod fold;
mod kv;
mod log;

pub use bank::{BankApp, BankCmd, BankOp, BankReply};
pub use fold::{Applier, Folder};
pub use kv::{KvApp, KvCmd, KvOp, KvReply};
pub use log::LogApp;

use gencon_net::wire::{Wire, WireError};
use gencon_types::{CmdKey, Value};

/// Why an [`App::restore`] rejected a folded state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppError {
    /// The state bytes do not decode as this application's fold format.
    Decode(WireError),
    /// The bytes decode but violate an application invariant.
    Invalid(&'static str),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Decode(e) => write!(f, "undecodable app state: {e}"),
            AppError::Invalid(why) => write!(f, "invalid app state: {why}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<WireError> for AppError {
    fn from(e: WireError) -> Self {
        AppError::Decode(e)
    }
}

/// A replicated state machine: the deterministic meaning of the log.
///
/// `Default` is the genesis state — every replica starts identical and
/// all state is a function of the applied command sequence (seeding
/// happens through commands, e.g. [`BankOp::Mint`]). See the crate docs
/// for the determinism contract.
pub trait App: Clone + Default + Send + 'static {
    /// The command type clients submit (must be globally unique per
    /// logical request — carry a client-assigned id — because the SMR
    /// layer deduplicates retries by value). The [`CmdKey`] bound
    /// exposes that id to the per-command trace.
    type Cmd: Value + Wire + CmdKey;

    /// What a client gets back with its commit ack.
    type Reply: Clone + PartialEq + Eq + std::fmt::Debug + Send + Wire + 'static;

    /// A short label for experiment rows and CLI flags.
    const NAME: &'static str;

    /// Applies the command committed in `slot` at absolute log `offset`,
    /// returning the client-visible reply. Must be deterministic.
    fn apply(&mut self, slot: u64, offset: u64, cmd: &Self::Cmd) -> Self::Reply;

    /// Folds the **entire current state** into compact, canonical bytes
    /// — O(live state). Identical states must fold identically.
    fn fold_snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a previously folded one.
    ///
    /// # Errors
    ///
    /// [`AppError`] when the bytes are not a valid fold; the state must
    /// be left untouched in that case.
    fn restore(&mut self, state: &[u8]) -> Result<(), AppError>;

    /// Deterministic hash of the state — the cross-replica agreement
    /// check. Default: SHA-256 over [`App::fold_snapshot`].
    fn state_hash(&self) -> [u8; 32] {
        gencon_crypto::sha256(&self.fold_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = AppError::from(WireError::UnexpectedEof);
        assert!(e.to_string().contains("undecodable"));
        assert!(AppError::Invalid("sum").to_string().contains("invalid"));
    }
}
