//! The key-value application: an ordered map with put/get/del/cas.
//!
//! The canonical "real service" state machine: its folded state is the
//! **live key set** — overwrite the same keys for a billion commands and
//! the snapshot stays the size of the keyspace, which is exactly the
//! O(state)-not-O(history) property the chunked-transfer stack exists to
//! exploit.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gencon_net::wire::{Wire, WireError};

use crate::{App, AppError};

/// A key-value operation (without the uniqueness id; see [`KvCmd`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum KvOp {
    /// Sets `key` to `value`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Reads `key` (replicated read: linearized through the log).
    Get {
        /// The key.
        key: Vec<u8>,
    },
    /// Deletes `key`.
    Del {
        /// The key.
        key: Vec<u8>,
    },
    /// Sets `key` to `swap` iff its current value equals `expect`.
    Cas {
        /// The key.
        key: Vec<u8>,
        /// Required current value.
        expect: Vec<u8>,
        /// New value on match.
        swap: Vec<u8>,
    },
}

/// One client command: a [`KvOp`] plus a globally unique request id
/// (the SMR layer dedups retries by command value, so two logically
/// distinct requests must never compare equal).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KvCmd {
    /// Globally unique request id (namespace it per client, e.g. with
    /// `gencon_load::encode_cmd`).
    pub id: u64,
    /// The operation.
    pub op: KvOp,
}

/// What a [`KvOp`] returns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KvReply {
    /// A put landed; `replaced` tells whether the key existed.
    Stored {
        /// Whether an older value was overwritten.
        replaced: bool,
    },
    /// A get's result (`None` for a missing key).
    Value(Option<Vec<u8>>),
    /// Whether the deleted key existed.
    Deleted(bool),
    /// Whether the compare-and-swap matched.
    Swapped(bool),
}

impl Wire for KvOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            KvOp::Put { key, value } => {
                buf.put_u8(1);
                key.encode(buf);
                value.encode(buf);
            }
            KvOp::Get { key } => {
                buf.put_u8(2);
                key.encode(buf);
            }
            KvOp::Del { key } => {
                buf.put_u8(3);
                key.encode(buf);
            }
            KvOp::Cas { key, expect, swap } => {
                buf.put_u8(4);
                key.encode(buf);
                expect.encode(buf);
                swap.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(KvOp::Put {
                key: Vec::<u8>::decode(buf)?,
                value: Vec::<u8>::decode(buf)?,
            }),
            2 => Ok(KvOp::Get {
                key: Vec::<u8>::decode(buf)?,
            }),
            3 => Ok(KvOp::Del {
                key: Vec::<u8>::decode(buf)?,
            }),
            4 => Ok(KvOp::Cas {
                key: Vec::<u8>::decode(buf)?,
                expect: Vec::<u8>::decode(buf)?,
                swap: Vec::<u8>::decode(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for KvCmd {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.op.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(KvCmd {
            id: u64::decode(buf)?,
            op: KvOp::decode(buf)?,
        })
    }
}

impl gencon_types::CmdKey for KvCmd {
    fn cmd_key(&self) -> u64 {
        self.id
    }
}

impl Wire for KvReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            KvReply::Stored { replaced } => {
                buf.put_u8(1);
                replaced.encode(buf);
            }
            KvReply::Value(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            KvReply::Deleted(hit) => {
                buf.put_u8(3);
                hit.encode(buf);
            }
            KvReply::Swapped(hit) => {
                buf.put_u8(4);
                hit.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(KvReply::Stored {
                replaced: bool::decode(buf)?,
            }),
            2 => Ok(KvReply::Value(Option::<Vec<u8>>::decode(buf)?)),
            3 => Ok(KvReply::Deleted(bool::decode(buf)?)),
            4 => Ok(KvReply::Swapped(bool::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// The ordered key-value store (see the module docs).
#[derive(Clone, Default, Debug)]
pub struct KvApp {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl KvApp {
    /// Live keys currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads a key directly (local, not linearized — tests and stats).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.map.get(key)
    }
}

impl App for KvApp {
    type Cmd = KvCmd;
    type Reply = KvReply;

    const NAME: &'static str = "kv";

    fn apply(&mut self, _slot: u64, _offset: u64, cmd: &KvCmd) -> KvReply {
        match &cmd.op {
            KvOp::Put { key, value } => KvReply::Stored {
                replaced: self.map.insert(key.clone(), value.clone()).is_some(),
            },
            KvOp::Get { key } => KvReply::Value(self.map.get(key).cloned()),
            KvOp::Del { key } => KvReply::Deleted(self.map.remove(key).is_some()),
            KvOp::Cas { key, expect, swap } => match self.map.get_mut(key) {
                Some(current) if current == expect => {
                    current.clone_from(swap);
                    KvReply::Swapped(true)
                }
                _ => KvReply::Swapped(false),
            },
        }
    }

    fn fold_snapshot(&self) -> Vec<u8> {
        // BTreeMap iteration is key-ordered: canonical bytes for a given
        // state, whatever the command history that produced it.
        let mut buf = BytesMut::new();
        (self.map.len() as u32).encode(&mut buf);
        for (k, v) in &self.map {
            k.encode(&mut buf);
            v.encode(&mut buf);
        }
        buf.freeze().to_vec()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), AppError> {
        let mut buf = Bytes::from(state.to_vec());
        let len = u32::decode(&mut buf)? as usize;
        if len > buf.remaining() {
            return Err(AppError::Decode(WireError::TooLong(len)));
        }
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = Vec::<u8>::decode(&mut buf)?;
            let v = Vec::<u8>::decode(&mut buf)?;
            map.insert(k, v);
        }
        if buf.remaining() > 0 {
            return Err(AppError::Decode(WireError::TooLong(buf.remaining())));
        }
        self.map = map;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(id: u64, key: &[u8], value: &[u8]) -> KvCmd {
        KvCmd {
            id,
            op: KvOp::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        }
    }

    #[test]
    fn ops_apply_and_reply() {
        let mut kv = KvApp::default();
        assert_eq!(
            kv.apply(0, 0, &put(1, b"a", b"1")),
            KvReply::Stored { replaced: false }
        );
        assert_eq!(
            kv.apply(0, 1, &put(2, b"a", b"2")),
            KvReply::Stored { replaced: true }
        );
        assert_eq!(
            kv.apply(
                1,
                2,
                &KvCmd {
                    id: 3,
                    op: KvOp::Get { key: b"a".to_vec() }
                }
            ),
            KvReply::Value(Some(b"2".to_vec()))
        );
        assert_eq!(
            kv.apply(
                1,
                3,
                &KvCmd {
                    id: 4,
                    op: KvOp::Cas {
                        key: b"a".to_vec(),
                        expect: b"2".to_vec(),
                        swap: b"3".to_vec()
                    }
                }
            ),
            KvReply::Swapped(true)
        );
        assert_eq!(
            kv.apply(
                1,
                4,
                &KvCmd {
                    id: 5,
                    op: KvOp::Cas {
                        key: b"a".to_vec(),
                        expect: b"2".to_vec(),
                        swap: b"9".to_vec()
                    }
                }
            ),
            KvReply::Swapped(false)
        );
        assert_eq!(
            kv.apply(
                2,
                5,
                &KvCmd {
                    id: 6,
                    op: KvOp::Del { key: b"a".to_vec() }
                }
            ),
            KvReply::Deleted(true)
        );
        assert!(kv.is_empty());
    }

    #[test]
    fn fold_is_live_state_not_history() {
        let mut kv = KvApp::default();
        for i in 0..1_000u64 {
            kv.apply(i, i, &put(i, b"hot", format!("{i}").as_bytes()));
        }
        assert_eq!(kv.len(), 1);
        let folded = kv.fold_snapshot();
        assert!(folded.len() < 64, "1000 overwrites fold to one live key");
        let mut back = KvApp::default();
        back.restore(&folded).unwrap();
        assert_eq!(back.state_hash(), kv.state_hash());
        assert_eq!(back.get(b"hot"), Some(&b"999".to_vec()));
    }

    #[test]
    fn restore_rejects_garbage_and_leaves_state_alone() {
        let mut kv = KvApp::default();
        kv.apply(0, 0, &put(1, b"k", b"v"));
        let before = kv.state_hash();
        assert!(kv.restore(&[0xFF; 3]).is_err());
        let folded = kv.fold_snapshot();
        for cut in 0..folded.len() {
            assert!(kv.restore(&folded[..cut]).is_err());
        }
        let mut padded = folded.clone();
        padded.push(0);
        assert!(kv.restore(&padded).is_err());
        assert_eq!(kv.state_hash(), before, "failed restore is a no-op");
    }

    #[test]
    fn commands_roundtrip_on_the_wire() {
        for cmd in [
            put(7, b"k", b"v"),
            KvCmd {
                id: 8,
                op: KvOp::Get { key: b"k".to_vec() },
            },
            KvCmd {
                id: 9,
                op: KvOp::Del { key: vec![] },
            },
            KvCmd {
                id: 10,
                op: KvOp::Cas {
                    key: b"k".to_vec(),
                    expect: vec![],
                    swap: b"x".to_vec(),
                },
            },
        ] {
            let mut buf = cmd.to_bytes();
            assert_eq!(KvCmd::decode(&mut buf).unwrap(), cmd);
        }
        for reply in [
            KvReply::Stored { replaced: true },
            KvReply::Value(None),
            KvReply::Value(Some(b"v".to_vec())),
            KvReply::Deleted(false),
            KvReply::Swapped(true),
        ] {
            let mut buf = reply.to_bytes();
            assert_eq!(KvReply::decode(&mut buf).unwrap(), reply);
        }
    }
}
