//! The append-everything application: the state *is* the history.
//!
//! `LogApp` reproduces the pre-application-layer behavior (PR 4), where a
//! snapshot enumerated every applied `(command, slot)` pair: its folded
//! state grows with the log, so snapshots cost O(history) — the mode the
//! compact applications exist to escape, preserved both for comparison
//! (experiment E11 plots the two curves against each other) and for
//! every test that asserts on raw applied logs.

use gencon_net::wire_sync::{decode_state, encode_state};
use gencon_net::Wire;
use gencon_types::{CmdKey, Value};

use crate::{App, AppError};

/// The full-history state machine (see the module docs). The reply to
/// each command is its absolute log offset.
#[derive(Clone, Debug)]
pub struct LogApp<V> {
    log: Vec<(V, u64)>,
}

impl<V> Default for LogApp<V> {
    fn default() -> Self {
        LogApp { log: Vec::new() }
    }
}

impl<V: Value + Wire> LogApp<V> {
    /// The applied `(command, slot)` pairs, in apply order.
    #[must_use]
    pub fn log(&self) -> &[(V, u64)] {
        &self.log
    }

    /// Applied commands held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether nothing has been applied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Deterministic hash of the first `n` applied pairs (`None` until
    /// `n` commands have been applied) — the cross-replica agreement
    /// check over a *prefix*, which this full-history app can answer even
    /// after restoring from a snapshot (compact apps cannot rewind).
    #[must_use]
    pub fn prefix_hash(&self, n: usize) -> Option<[u8; 32]> {
        (self.log.len() >= n).then(|| gencon_crypto::sha256(&encode_state(&self.log[..n])))
    }
}

impl<V: Value + Wire + CmdKey> App for LogApp<V> {
    type Cmd = V;
    type Reply = u64;

    const NAME: &'static str = "log";

    fn apply(&mut self, slot: u64, offset: u64, cmd: &V) -> u64 {
        debug_assert_eq!(offset as usize, self.log.len(), "applies arrive in order");
        self.log.push((cmd.clone(), slot));
        offset
    }

    fn fold_snapshot(&self) -> Vec<u8> {
        encode_state(&self.log)
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), AppError> {
        self.log = decode_state(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_the_history() {
        let mut app = LogApp::<u64>::default();
        for i in 0..10u64 {
            assert_eq!(app.apply(i / 2, i, &(i * 11)), i);
        }
        assert_eq!(app.len(), 10);
        let folded = app.fold_snapshot();
        let mut back = LogApp::<u64>::default();
        back.restore(&folded).unwrap();
        assert_eq!(back.log(), app.log());
        assert_eq!(back.state_hash(), app.state_hash());
        // The fold grows with history — the O(history) mode, on purpose.
        let small = LogApp::<u64>::default().fold_snapshot();
        assert!(folded.len() > small.len());
    }

    #[test]
    fn prefix_hash_survives_restore() {
        let mut app = LogApp::<u64>::default();
        for i in 0..8u64 {
            app.apply(i, i, &i);
        }
        let h5 = app.prefix_hash(5).unwrap();
        let mut restored = LogApp::<u64>::default();
        restored.restore(&app.fold_snapshot()).unwrap();
        assert_eq!(restored.prefix_hash(5).unwrap(), h5);
        assert!(app.prefix_hash(9).is_none());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut app = LogApp::<u64>::default();
        app.apply(0, 0, &7);
        let folded = app.fold_snapshot();
        for cut in 0..folded.len() {
            assert!(app.restore(&folded[..cut]).is_err());
        }
        assert_eq!(app.log(), &[(7, 0)], "failed restore is a no-op");
    }
}
