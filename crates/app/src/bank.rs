//! The bank application: accounts, mint and transfer, with a
//! conservation invariant.
//!
//! The cross-node consistency canary: every transfer conserves the total
//! (`Σ balances == minted` — debug-asserted after every apply, verified
//! on every restore, and exposed via [`BankApp::conserved`] for release
//! checks), so *any* apply-order divergence between replicas — the
//! failure mode the whole consensus stack exists to prevent — breaks
//! the invariant or the state hash loudly instead of silently
//! corrupting values. This is the
//! multi-valued-consensus shape of Liang & Vaidya's setting: the decided
//! values are operations on shared state, not opaque blobs.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gencon_net::wire::{Wire, WireError};

use crate::{App, AppError};

/// A bank operation (without the uniqueness id; see [`BankCmd`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BankOp {
    /// Creates money in `account` — the genesis/seed operation, so the
    /// `Default` (empty) state plus the command stream determines
    /// everything.
    Mint {
        /// The credited account.
        account: u64,
        /// The amount.
        amount: u64,
    },
    /// Moves `amount` from `from` to `to` (rejected, not partially
    /// applied, when funds are missing).
    Transfer {
        /// The debited account.
        from: u64,
        /// The credited account.
        to: u64,
        /// The amount.
        amount: u64,
    },
}

/// One client command: a [`BankOp`] plus a globally unique request id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BankCmd {
    /// Globally unique request id.
    pub id: u64,
    /// The operation.
    pub op: BankOp,
}

/// What a [`BankOp`] returns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BankReply {
    /// The operation applied; the debited (transfer) or credited (mint)
    /// account's new balance.
    Ok {
        /// New balance of the primary account.
        balance: u64,
    },
    /// Transfer rejected: the source balance is short.
    Insufficient,
    /// Rejected: the credited balance (or the minted total) would
    /// overflow.
    Overflow,
}

impl Wire for BankOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BankOp::Mint { account, amount } => {
                buf.put_u8(1);
                account.encode(buf);
                amount.encode(buf);
            }
            BankOp::Transfer { from, to, amount } => {
                buf.put_u8(2);
                from.encode(buf);
                to.encode(buf);
                amount.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(BankOp::Mint {
                account: u64::decode(buf)?,
                amount: u64::decode(buf)?,
            }),
            2 => Ok(BankOp::Transfer {
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
                amount: u64::decode(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for BankCmd {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.op.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(BankCmd {
            id: u64::decode(buf)?,
            op: BankOp::decode(buf)?,
        })
    }
}

impl gencon_types::CmdKey for BankCmd {
    fn cmd_key(&self) -> u64 {
        self.id
    }
}

impl Wire for BankReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BankReply::Ok { balance } => {
                buf.put_u8(1);
                balance.encode(buf);
            }
            BankReply::Insufficient => buf.put_u8(2),
            BankReply::Overflow => buf.put_u8(3),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(BankReply::Ok {
                balance: u64::decode(buf)?,
            }),
            2 => Ok(BankReply::Insufficient),
            3 => Ok(BankReply::Overflow),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// The bank state machine (see the module docs).
#[derive(Clone, Default, Debug)]
pub struct BankApp {
    accounts: BTreeMap<u64, u64>,
    minted: u64,
}

impl BankApp {
    /// Total money ever minted — must equal [`BankApp::total`] always.
    #[must_use]
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Sum of all balances.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.accounts.values().sum()
    }

    /// Whether the conservation invariant holds.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.total() == self.minted
    }

    /// One account's balance (0 for unknown accounts).
    #[must_use]
    pub fn balance(&self, account: u64) -> u64 {
        self.accounts.get(&account).copied().unwrap_or(0)
    }

    /// Accounts with a nonzero balance.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether no account holds money.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }
}

impl App for BankApp {
    type Cmd = BankCmd;
    type Reply = BankReply;

    const NAME: &'static str = "bank";

    fn apply(&mut self, _slot: u64, _offset: u64, cmd: &BankCmd) -> BankReply {
        let reply = match cmd.op {
            BankOp::Mint { account, amount } => {
                let (Some(new_balance), Some(new_minted)) = (
                    self.balance(account).checked_add(amount),
                    self.minted.checked_add(amount),
                ) else {
                    return BankReply::Overflow;
                };
                // Zero-balance accounts are never stored (canonical
                // state: the fold must not depend on rejected history).
                if new_balance > 0 {
                    self.accounts.insert(account, new_balance);
                }
                self.minted = new_minted;
                BankReply::Ok {
                    balance: new_balance,
                }
            }
            BankOp::Transfer { from, to, amount } => {
                if self.balance(from) < amount {
                    return BankReply::Insufficient;
                }
                if from == to {
                    return BankReply::Ok {
                        balance: self.balance(from),
                    };
                }
                let Some(credited) = self.balance(to).checked_add(amount) else {
                    return BankReply::Overflow;
                };
                let debited = self.balance(from) - amount;
                if debited == 0 {
                    self.accounts.remove(&from);
                } else {
                    self.accounts.insert(from, debited);
                }
                if credited > 0 {
                    self.accounts.insert(to, credited);
                }
                BankReply::Ok { balance: debited }
            }
        };
        debug_assert!(self.conserved(), "apply broke conservation");
        reply
    }

    fn fold_snapshot(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.minted.encode(&mut buf);
        (self.accounts.len() as u32).encode(&mut buf);
        for (account, balance) in &self.accounts {
            account.encode(&mut buf);
            balance.encode(&mut buf);
        }
        buf.freeze().to_vec()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), AppError> {
        let mut buf = Bytes::from(state.to_vec());
        let minted = u64::decode(&mut buf)?;
        let len = u32::decode(&mut buf)? as usize;
        if len > buf.remaining() {
            return Err(AppError::Decode(WireError::TooLong(len)));
        }
        let mut accounts = BTreeMap::new();
        let mut total: u64 = 0;
        for _ in 0..len {
            let account = u64::decode(&mut buf)?;
            let balance = u64::decode(&mut buf)?;
            total = total
                .checked_add(balance)
                .ok_or(AppError::Invalid("balance sum overflows"))?;
            accounts.insert(account, balance);
        }
        if buf.remaining() > 0 {
            return Err(AppError::Decode(WireError::TooLong(buf.remaining())));
        }
        if total != minted {
            return Err(AppError::Invalid(
                "conservation violated: Σ balances ≠ minted",
            ));
        }
        self.accounts = accounts;
        self.minted = minted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mint(id: u64, account: u64, amount: u64) -> BankCmd {
        BankCmd {
            id,
            op: BankOp::Mint { account, amount },
        }
    }

    fn xfer(id: u64, from: u64, to: u64, amount: u64) -> BankCmd {
        BankCmd {
            id,
            op: BankOp::Transfer { from, to, amount },
        }
    }

    #[test]
    fn transfers_conserve_the_total() {
        let mut bank = BankApp::default();
        bank.apply(0, 0, &mint(1, 1, 100));
        bank.apply(0, 1, &mint(2, 2, 50));
        assert_eq!(
            bank.apply(1, 2, &xfer(3, 1, 2, 30)),
            BankReply::Ok { balance: 70 }
        );
        assert_eq!(
            bank.apply(1, 3, &xfer(4, 2, 3, 80)),
            BankReply::Ok { balance: 0 }
        );
        assert_eq!(bank.apply(2, 4, &xfer(5, 2, 1, 1)), BankReply::Insufficient);
        assert!(bank.conserved());
        assert_eq!(bank.total(), 150);
        assert_eq!(bank.balance(3), 80);
        assert_eq!(bank.len(), 2, "emptied account 2 is dropped");
    }

    #[test]
    fn overflow_is_rejected_not_wrapped() {
        let mut bank = BankApp::default();
        bank.apply(0, 0, &mint(1, 1, u64::MAX - 5));
        // Minting past the total-supply cap is rejected wholesale: no
        // balance moved, no supply created.
        assert_eq!(bank.apply(0, 1, &mint(2, 2, 10)), BankReply::Overflow);
        assert_eq!(bank.balance(2), 0);
        assert_eq!(
            bank.apply(0, 2, &mint(3, 2, 3)),
            BankReply::Ok { balance: 3 }
        );
        assert_eq!(bank.minted(), u64::MAX - 2);
        assert!(bank.conserved());
    }

    #[test]
    fn self_transfer_is_a_no_op() {
        let mut bank = BankApp::default();
        bank.apply(0, 0, &mint(1, 7, 10));
        assert_eq!(
            bank.apply(0, 1, &xfer(2, 7, 7, 5)),
            BankReply::Ok { balance: 10 }
        );
        assert!(bank.conserved());
    }

    #[test]
    fn fold_restore_roundtrips_and_checks_conservation() {
        let mut bank = BankApp::default();
        for i in 0..20u64 {
            bank.apply(i, i, &mint(i, i % 5, i * 3));
        }
        bank.apply(20, 20, &xfer(100, 1, 2, 5));
        let folded = bank.fold_snapshot();
        let mut back = BankApp::default();
        back.restore(&folded).unwrap();
        assert_eq!(back.state_hash(), bank.state_hash());
        assert!(back.conserved());

        // A fold with a violated invariant is refused.
        let mut tampered = bank.clone();
        tampered.minted += 1;
        let bad = tampered.fold_snapshot();
        assert_eq!(
            back.restore(&bad),
            Err(AppError::Invalid(
                "conservation violated: Σ balances ≠ minted"
            ))
        );
        for cut in 0..folded.len() {
            assert!(back.restore(&folded[..cut]).is_err());
        }
    }

    #[test]
    fn commands_and_replies_roundtrip_on_the_wire() {
        for cmd in [mint(1, 2, 3), xfer(4, 5, 6, 7)] {
            let mut buf = cmd.to_bytes();
            assert_eq!(BankCmd::decode(&mut buf).unwrap(), cmd);
        }
        for reply in [
            BankReply::Ok { balance: 9 },
            BankReply::Insufficient,
            BankReply::Overflow,
        ] {
            let mut buf = reply.to_bytes();
            assert_eq!(BankReply::decode(&mut buf).unwrap(), reply);
        }
    }
}
