//! The two drive modes that connect an [`App`] to the replicated log.
//!
//! * [`Applier`] — the **live** instance: applies every command the
//!   moment the SMR layer flattens it, producing the client replies and
//!   (optionally) capturing the state hash at an exact applied-command
//!   count for cross-node agreement checks.
//! * [`Folder`] — the **snapshot** instance: lags behind, absorbing
//!   commands only up to slot-boundary cuts, so that at a given cut every
//!   replica's folder holds the byte-identical state. Its
//!   [`FoldedState`] — app fold + applied count + the live dedup window —
//!   is the unit of durability and of `b + 1`-vouched chunked state
//!   transfer.
//!
//! Both take the replica's retained applied suffix as plain slices
//! (`applied`, `slots`, absolute `base` offset), so this crate stays
//! independent of the SMR types.

use std::collections::VecDeque;

use gencon_net::FoldedState;

use crate::{App, AppError};

/// The live application instance (see the module docs).
#[derive(Clone, Debug)]
pub struct Applier<A: App> {
    app: A,
    /// Absolute applied-command offset the app has consumed.
    cursor: u64,
    /// Capture [`App::state_hash`] when `cursor` reaches exactly this.
    hash_target: Option<u64>,
    captured: Option<[u8; 32]>,
}

impl<A: App> Default for Applier<A> {
    fn default() -> Self {
        Applier::new(A::default())
    }
}

impl<A: App> Applier<A> {
    /// Wraps an app (usually `A::default()`, or a recovered instance).
    pub fn new(app: A) -> Self {
        Applier {
            app,
            cursor: 0,
            hash_target: None,
            captured: None,
        }
    }

    /// Starts the applier at a nonzero absolute offset (recovery: the
    /// app already covers `cursor` commands).
    #[must_use]
    pub fn resume(app: A, cursor: u64) -> Self {
        let mut a = Applier::new(app);
        a.cursor = cursor;
        a
    }

    /// Arms the state-hash capture: when the applier has applied exactly
    /// `target` commands, [`Applier::captured_hash`] becomes the app's
    /// state hash at that point — deterministic across replicas, since
    /// the command sequence is shared.
    #[must_use]
    pub fn with_hash_target(mut self, target: u64) -> Self {
        self.hash_target = Some(target);
        self.maybe_capture();
        self
    }

    /// Absolute applied offset consumed so far.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The wrapped app.
    #[must_use]
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The state hash captured at the hash target, if reached exactly.
    #[must_use]
    pub fn captured_hash(&self) -> Option<[u8; 32]> {
        self.captured
    }

    /// Applies the next command (absolute offset `cursor`), returning the
    /// client reply. Commands must be fed in log order.
    pub fn apply(&mut self, slot: u64, cmd: &A::Cmd) -> A::Reply {
        let reply = self.app.apply(slot, self.cursor, cmd);
        self.cursor += 1;
        self.maybe_capture();
        reply
    }

    /// Applies every not-yet-consumed command of the replica's retained
    /// suffix (`applied`/`slots` starting at absolute offset `base`) up
    /// to absolute offset `limit`, invoking `on_reply(cmd, slot, offset,
    /// reply)` for each.
    pub fn track(
        &mut self,
        applied: &[A::Cmd],
        slots: &[u64],
        base: u64,
        limit: u64,
        mut on_reply: impl FnMut(&A::Cmd, u64, u64, A::Reply),
    ) {
        debug_assert!(base <= self.cursor, "compaction ran past the applier");
        while self.cursor < limit {
            let i = usize::try_from(self.cursor - base).expect("suffix index fits");
            let Some(cmd) = applied.get(i) else { break };
            let slot = slots[i];
            let offset = self.cursor;
            let reply = self.apply(slot, cmd);
            on_reply(cmd, slot, offset, reply);
        }
    }

    /// Replaces the state with a transferred/recovered [`FoldedState`]:
    /// the app restores its fold and the cursor jumps to the fold's
    /// applied count.
    ///
    /// # Errors
    ///
    /// Propagates [`AppError`] from the app's restore (state unchanged).
    pub fn restore(&mut self, fs: &FoldedState<A::Cmd>) -> Result<(), AppError> {
        self.app.restore(&fs.app)?;
        self.cursor = fs.applied_len;
        self.maybe_capture();
        Ok(())
    }

    fn maybe_capture(&mut self) {
        if self.captured.is_none() && self.hash_target == Some(self.cursor) {
            self.captured = Some(self.app.state_hash());
        }
    }
}

/// The snapshot-folding instance (see the module docs).
#[derive(Clone, Debug)]
pub struct Folder<A: App> {
    app: A,
    /// Commands folded so far (absolute count).
    applied_len: u64,
    /// Every slot below this has been folded.
    covered_slot: u64,
    /// `(command, applied_slot)` entries within the dedup horizon of the
    /// last cut — carried in the folded state so an installer's dedup
    /// decisions match replicas that flattened slot by slot.
    window: VecDeque<(A::Cmd, u64)>,
}

impl<A: App> Default for Folder<A> {
    fn default() -> Self {
        Folder::new(A::default())
    }
}

impl<A: App> Folder<A> {
    /// Wraps an app (usually `A::default()`, or a recovered instance).
    pub fn new(app: A) -> Self {
        Folder {
            app,
            applied_len: 0,
            covered_slot: 0,
            window: VecDeque::new(),
        }
    }

    /// Commands folded so far.
    #[must_use]
    pub fn applied_len(&self) -> u64 {
        self.applied_len
    }

    /// Every slot below this is folded — the next fold's cut must not be
    /// below it (the fold cannot rewind).
    #[must_use]
    pub fn covered_slot(&self) -> u64 {
        self.covered_slot
    }

    /// The wrapped app.
    #[must_use]
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The folded state's hash.
    #[must_use]
    pub fn state_hash(&self) -> [u8; 32] {
        self.app.state_hash()
    }

    /// Absorbs the applied commands with slots in `[covered_slot, cut)`
    /// from the replica's retained suffix (`applied`/`slots` starting at
    /// absolute offset `base`; `slots` is non-decreasing). Idempotent per
    /// offset: already-folded commands are skipped by offset arithmetic.
    pub fn absorb(&mut self, applied: &[A::Cmd], slots: &[u64], base: u64, cut: u64) {
        debug_assert!(base <= self.applied_len, "compaction ran past the folder");
        if cut < self.covered_slot {
            return;
        }
        let start = usize::try_from(self.applied_len - base).expect("suffix index fits");
        for i in start..applied.len() {
            if slots[i] >= cut {
                break;
            }
            self.app.apply(slots[i], self.applied_len, &applied[i]);
            self.window.push_back((applied[i].clone(), slots[i]));
            self.applied_len += 1;
        }
        self.covered_slot = cut;
    }

    /// Folds the current (cut-aligned) state, pruning the dedup window to
    /// `horizon` slots behind the cut. Every replica folding the same cut
    /// with the same horizon produces byte-identical output.
    #[must_use]
    pub fn fold(&mut self, horizon: u64) -> FoldedState<A::Cmd> {
        while let Some((_, slot)) = self.window.front() {
            if slot + horizon >= self.covered_slot {
                break;
            }
            self.window.pop_front();
        }
        FoldedState {
            applied_len: self.applied_len,
            dedup: self.window.iter().cloned().collect(),
            app: self.app.fold_snapshot(),
        }
    }

    /// Replaces the folder's state with a transferred/recovered
    /// [`FoldedState`] covering every slot below `upto_slot`.
    ///
    /// # Errors
    ///
    /// Propagates [`AppError`] from the app's restore (state unchanged).
    pub fn restore(&mut self, fs: &FoldedState<A::Cmd>, upto_slot: u64) -> Result<(), AppError> {
        self.app.restore(&fs.app)?;
        self.applied_len = fs.applied_len;
        self.covered_slot = upto_slot;
        self.window = fs.dedup.iter().cloned().collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvApp, KvCmd, KvOp, KvReply};

    fn put(id: u64, key: u8, value: u64) -> KvCmd {
        KvCmd {
            id,
            op: KvOp::Put {
                key: vec![key],
                value: value.to_le_bytes().to_vec(),
            },
        }
    }

    /// A little applied log: 10 commands over slots 0..5.
    fn sample() -> (Vec<KvCmd>, Vec<u64>) {
        let applied: Vec<KvCmd> = (0..10u64).map(|i| put(i, (i % 3) as u8, i)).collect();
        let slots: Vec<u64> = (0..10u64).map(|i| i / 2).collect();
        (applied, slots)
    }

    #[test]
    fn applier_tracks_in_order_and_captures_hash() {
        let (applied, slots) = sample();
        let mut applier = Applier::<KvApp>::default().with_hash_target(7);
        let mut replies = Vec::new();
        applier.track(&applied, &slots, 0, 4, |_, _, off, r| {
            replies.push((off, r))
        });
        assert_eq!(applier.cursor(), 4);
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0], (0, KvReply::Stored { replaced: false }));
        assert_eq!(replies[3], (3, KvReply::Stored { replaced: true }));
        assert!(applier.captured_hash().is_none());
        // Continue past the target; the hash snaps at exactly 7.
        applier.track(&applied, &slots, 0, 10, |_, _, _, _| {});
        let captured = applier.captured_hash().expect("hit 7 exactly");
        let mut reference = KvApp::default();
        for i in 0..7 {
            reference.apply(slots[i], i as u64, &applied[i]);
        }
        assert_eq!(captured, reference.state_hash());
        assert_ne!(captured, applier.app().state_hash(), "state moved on");
    }

    #[test]
    fn folder_folds_identically_regardless_of_cut_history() {
        let (applied, slots) = sample();
        // Folder 1 folds at cut 2, then 4; folder 2 folds straight at 4.
        let mut f1 = Folder::<KvApp>::default();
        f1.absorb(&applied, &slots, 0, 2);
        let _ = f1.fold(100);
        f1.absorb(&applied, &slots, 0, 4);
        let s1 = f1.fold(100);
        let mut f2 = Folder::<KvApp>::default();
        f2.absorb(&applied, &slots, 0, 4);
        let s2 = f2.fold(100);
        assert_eq!(s1, s2, "fold at a cut is independent of fold history");
        assert_eq!(s1.applied_len, 8, "slots 0..4 hold 8 commands");
    }

    #[test]
    fn folder_window_respects_the_horizon() {
        let (applied, slots) = sample();
        let mut f = Folder::<KvApp>::default();
        f.absorb(&applied, &slots, 0, 5);
        // Horizon 2: only commands applied in slots 3 and 4 stay.
        let fs = f.fold(2);
        assert_eq!(fs.dedup.len(), 4);
        assert!(fs.dedup.iter().all(|(_, s)| *s + 2 >= 5));
        // A huge horizon keeps everything.
        let mut f2 = Folder::<KvApp>::default();
        f2.absorb(&applied, &slots, 0, 5);
        assert_eq!(f2.fold(1_000).dedup.len(), 10);
    }

    #[test]
    fn folder_survives_compaction_of_the_absorbed_prefix() {
        let (applied, slots) = sample();
        let mut f = Folder::<KvApp>::default();
        f.absorb(&applied, &slots, 0, 3);
        assert_eq!(f.applied_len(), 6);
        // The replica compacted the first 4 commands away (base 4); the
        // folder picks up from offset 6 unharmed.
        f.absorb(&applied[4..], &slots[4..], 4, 5);
        assert_eq!(f.applied_len(), 10);
        let mut reference = Folder::<KvApp>::default();
        reference.absorb(&applied, &slots, 0, 5);
        assert_eq!(f.fold(100), reference.fold(100));
    }

    #[test]
    fn restore_roundtrips_applier_and_folder() {
        let (applied, slots) = sample();
        let mut f = Folder::<KvApp>::default();
        f.absorb(&applied, &slots, 0, 5);
        let fs = f.fold(3);

        let mut fresh = Folder::<KvApp>::default();
        fresh.restore(&fs, 5).unwrap();
        assert_eq!(fresh.applied_len(), 10);
        assert_eq!(fresh.covered_slot(), 5);
        assert_eq!(fresh.state_hash(), f.state_hash());
        assert_eq!(fresh.fold(3), f.fold(3));

        let mut applier = Applier::<KvApp>::default().with_hash_target(10);
        applier.restore(&fs).unwrap();
        assert_eq!(applier.cursor(), 10);
        assert_eq!(
            applier.captured_hash(),
            Some(f.state_hash()),
            "a restore landing exactly on the target captures"
        );
    }
}
