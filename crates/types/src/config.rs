//! System configuration: the parameters n, f and b of §2.1.

use std::error::Error;
use std::fmt;

use crate::process::{ProcessSet, MAX_PROCESSES};

/// The system model parameters of §2.1: `n` processes, at most `f` faulty
/// (honest, i.e. crash-prone) processes and at most `b` Byzantine processes.
///
/// `Config` also carries the `unanimity` switch: the optional Unanimity
/// property of §2.3 only makes sense with Byzantine processes and influences
/// lines 8–9 of the class-3 FLV (Algorithm 4).
///
/// ```
/// use gencon_types::Config;
/// # fn main() -> Result<(), gencon_types::ConfigError> {
/// let cfg = Config::new(7, 2, 1)?; // n = 7, f = 2 crash, b = 1 Byzantine
/// assert_eq!(cfg.honest_minimum(), 6);   // n - b
/// assert_eq!(cfg.correct_minimum(), 4);  // n - b - f
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    n: usize,
    f: usize,
    b: usize,
    unanimity: bool,
}

impl Config {
    /// Creates a configuration with `n` processes, at most `f` crash-faulty
    /// and at most `b` Byzantine processes. Unanimity is disabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n == 0`, `n > MAX_PROCESSES`, or
    /// `f + b >= n` (at least one correct process must exist).
    pub fn new(n: usize, f: usize, b: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n > MAX_PROCESSES {
            return Err(ConfigError::TooManyProcesses { n });
        }
        if f + b >= n {
            return Err(ConfigError::NoCorrectProcess { n, f, b });
        }
        Ok(Config {
            n,
            f,
            b,
            unanimity: false,
        })
    }

    /// Convenience constructor for the benign fault model (`b = 0`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Config::new`].
    pub fn benign(n: usize, f: usize) -> Result<Self, ConfigError> {
        Config::new(n, f, 0)
    }

    /// Convenience constructor for the Byzantine fault model (`f = 0`), the
    /// setting of FaB Paxos, PBFT and MQB in the paper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Config::new`].
    pub fn byzantine(n: usize, b: usize) -> Result<Self, ConfigError> {
        Config::new(n, 0, b)
    }

    /// Enables or disables the Unanimity property of §2.3.
    #[must_use]
    pub fn with_unanimity(mut self, unanimity: bool) -> Self {
        self.unanimity = unanimity;
        self
    }

    /// Total number of processes (|Π|).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of faulty honest (crash-prone) processes.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// Maximum number of Byzantine processes.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Whether Unanimity must be ensured.
    #[must_use]
    pub fn unanimity(&self) -> bool {
        self.unanimity
    }

    /// Minimum number of honest processes: `n - b` (|H| lower bound).
    #[must_use]
    pub fn honest_minimum(&self) -> usize {
        self.n - self.b
    }

    /// Minimum number of correct processes: `n - b - f` (|C| lower bound).
    ///
    /// This is also the upper bound the paper imposes on `TD`
    /// (`TD ≤ n − b − f`, §3.2) so that decisions never have to wait for
    /// faulty or Byzantine processes.
    #[must_use]
    pub fn correct_minimum(&self) -> usize {
        self.n - self.b - self.f
    }

    /// The set Π of all processes, with ids `0..n`.
    #[must_use]
    pub fn all_processes(&self) -> ProcessSet {
        ProcessSet::range(0, self.n)
    }

    /// Validates a decision threshold against the termination requirement
    /// `TD ≤ n − b − f` of §3.2.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ThresholdUnreachable`] when `td` could block
    /// termination, and [`ConfigError::ThresholdZero`] for a zero threshold.
    pub fn validate_threshold(&self, td: usize) -> Result<(), ConfigError> {
        if td == 0 {
            return Err(ConfigError::ThresholdZero);
        }
        if td > self.correct_minimum() {
            return Err(ConfigError::ThresholdUnreachable {
                td,
                max: self.correct_minimum(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} f={} b={}{}",
            self.n,
            self.f,
            self.b,
            if self.unanimity { " +unanimity" } else { "" }
        )
    }
}

/// Error constructing or validating a [`Config`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `n` was zero.
    NoProcesses,
    /// `n` exceeds [`MAX_PROCESSES`].
    TooManyProcesses {
        /// Requested number of processes.
        n: usize,
    },
    /// `f + b >= n`: no process would be guaranteed correct.
    NoCorrectProcess {
        /// Total processes.
        n: usize,
        /// Crash-faulty bound.
        f: usize,
        /// Byzantine bound.
        b: usize,
    },
    /// The decision threshold was zero.
    ThresholdZero,
    /// The decision threshold exceeds `n - b - f` and could wait forever
    /// (violates `TD ≤ n − b − f` of §3.2).
    ThresholdUnreachable {
        /// Requested threshold.
        td: usize,
        /// Maximum admissible threshold (`n − b − f`).
        max: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoProcesses => write!(f, "a system needs at least one process"),
            ConfigError::TooManyProcesses { n } => {
                write!(f, "{n} processes exceed the supported maximum of {MAX_PROCESSES}")
            }
            ConfigError::NoCorrectProcess { n, f: ff, b } => write!(
                f,
                "f + b must be smaller than n (got n={n}, f={ff}, b={b}): at least one correct process is required"
            ),
            ConfigError::ThresholdZero => write!(f, "decision threshold must be positive"),
            ConfigError::ThresholdUnreachable { td, max } => write!(
                f,
                "decision threshold {td} exceeds n - b - f = {max} and would violate termination (TD ≤ n − b − f)"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        let c = Config::new(4, 0, 1).unwrap();
        assert_eq!((c.n(), c.f(), c.b()), (4, 0, 1));
        assert_eq!(c.honest_minimum(), 3);
        assert_eq!(c.correct_minimum(), 3);
        assert!(!c.unanimity());
        assert!(c.with_unanimity(true).unanimity());
    }

    #[test]
    fn benign_and_byzantine_shortcuts() {
        assert_eq!(Config::benign(3, 1).unwrap().b(), 0);
        assert_eq!(Config::byzantine(4, 1).unwrap().f(), 0);
    }

    #[test]
    fn rejects_empty_system() {
        assert_eq!(Config::new(0, 0, 0), Err(ConfigError::NoProcesses));
    }

    #[test]
    fn rejects_all_faulty() {
        assert!(matches!(
            Config::new(3, 2, 1),
            Err(ConfigError::NoCorrectProcess { .. })
        ));
        assert!(Config::new(4, 2, 1).is_ok());
    }

    #[test]
    fn rejects_oversized_system() {
        assert!(matches!(
            Config::new(MAX_PROCESSES + 1, 0, 0),
            Err(ConfigError::TooManyProcesses { .. })
        ));
        assert!(Config::new(MAX_PROCESSES, 0, 0).is_ok());
    }

    #[test]
    fn threshold_validation() {
        let c = Config::new(5, 1, 1).unwrap(); // n-b-f = 3
        assert!(c.validate_threshold(3).is_ok());
        assert_eq!(
            c.validate_threshold(4),
            Err(ConfigError::ThresholdUnreachable { td: 4, max: 3 })
        );
        assert_eq!(c.validate_threshold(0), Err(ConfigError::ThresholdZero));
    }

    #[test]
    fn all_processes_set() {
        let c = Config::new(3, 0, 0).unwrap();
        let s = c.all_processes();
        assert_eq!(s.len(), 3);
        assert_eq!(s, ProcessSet::range(0, 3));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = Config::new(3, 2, 1).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("n=3"));
        assert!(msg.contains("correct"));
        assert_eq!(Config::new(5, 0, 0).unwrap().to_string(), "n=5 f=0 b=0");
    }
}
