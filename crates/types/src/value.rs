//! The consensus value abstraction.

use std::fmt::Debug;
use std::hash::Hash;

/// A value that processes can propose and decide on.
///
/// The generic algorithm needs values to be comparable for equality (to count
/// identical votes), hashable (to tally votes efficiently), totally ordered
/// (line 11 of Algorithm 1 *chooses deterministically* among received values —
/// we pick the minimum) and cheaply clonable.
///
/// `Value` is automatically implemented for every type satisfying the bounds,
/// including `bool` (binary consensus, §6), integers, `String` and
/// `Vec<u8>` payloads.
///
/// ```
/// fn assert_value<V: gencon_types::Value>() {}
/// assert_value::<bool>();
/// assert_value::<u64>();
/// assert_value::<String>();
/// assert_value::<Vec<u8>>();
/// ```
pub trait Value: Clone + Eq + Ord + Hash + Debug + Send + 'static {}

impl<T> Value for T where T: Clone + Eq + Ord + Hash + Debug + Send + 'static {}

/// A command that carries a compact, client-namespaced tracing id.
///
/// The per-command trace (`gencon-trace`'s `Submitted`…`CmdAcked`
/// events) keys every stamp by a `u64` so the hot path never hashes or
/// serialises the command itself. Client-side id construction
/// (`gencon_load::encode_cmd`) already packs `(replica, client, seq)`
/// into a unique `u64`; command types simply expose it here. For plain
/// `u64` commands the command *is* its own key.
pub trait CmdKey {
    /// The compact id trace events are keyed by.
    fn cmd_key(&self) -> u64;
}

impl CmdKey for u64 {
    fn cmd_key(&self) -> u64 {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn takes_value<V: Value>(v: V) -> V {
        v
    }

    #[test]
    fn common_types_are_values() {
        assert!(takes_value(true));
        assert_eq!(takes_value(42u64), 42);
        assert_eq!(takes_value("cmd".to_string()), "cmd");
        assert_eq!(takes_value(vec![1u8, 2]), vec![1, 2]);
        assert_eq!(takes_value((1u32, "a".to_string())), (1, "a".to_string()));
    }
}
