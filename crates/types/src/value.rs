//! The consensus value abstraction.

use std::fmt::Debug;
use std::hash::Hash;

/// A value that processes can propose and decide on.
///
/// The generic algorithm needs values to be comparable for equality (to count
/// identical votes), hashable (to tally votes efficiently), totally ordered
/// (line 11 of Algorithm 1 *chooses deterministically* among received values —
/// we pick the minimum) and cheaply clonable.
///
/// `Value` is automatically implemented for every type satisfying the bounds,
/// including `bool` (binary consensus, §6), integers, `String` and
/// `Vec<u8>` payloads.
///
/// ```
/// fn assert_value<V: gencon_types::Value>() {}
/// assert_value::<bool>();
/// assert_value::<u64>();
/// assert_value::<String>();
/// assert_value::<Vec<u8>>();
/// ```
pub trait Value: Clone + Eq + Ord + Hash + Debug + Send + 'static {}

impl<T> Value for T where T: Clone + Eq + Ord + Hash + Debug + Send + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn takes_value<V: Value>(v: V) -> V {
        v
    }

    #[test]
    fn common_types_are_values() {
        assert!(takes_value(true));
        assert_eq!(takes_value(42u64), 42);
        assert_eq!(takes_value("cmd".to_string()), "cmd");
        assert_eq!(takes_value(vec![1u8, 2]), vec![1, 2]);
        assert_eq!(takes_value((1u32, "a".to_string())), (1, "a".to_string()));
    }
}
