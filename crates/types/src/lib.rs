//! Foundation types for the `gencon` consensus framework.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: [`ProcessId`] and [`ProcessSet`] (the set Π of the paper),
//! [`Round`]/[`Phase`]/[`RoundKind`] (the closed-round structure of §3.1),
//! [`Config`] (the system parameters n, f, b of §2.1) and the exact integer
//! quorum arithmetic used by every threshold condition in the paper.
//!
//! # Example
//!
//! ```
//! use gencon_types::{Config, ProcessId, ProcessSet};
//!
//! # fn main() -> Result<(), gencon_types::ConfigError> {
//! // A Byzantine system with n = 4, b = 1 (PBFT's n = 3b + 1).
//! let cfg = Config::byzantine(4, 1)?;
//! assert_eq!(cfg.n(), 4);
//! assert!(cfg.honest_minimum() == 3);
//!
//! let all: ProcessSet = cfg.all_processes();
//! assert_eq!(all.len(), 4);
//! assert!(all.contains(ProcessId::new(2)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod process;
pub mod quorum;
mod round;
mod value;

pub use batch::Batch;
pub use config::{Config, ConfigError};
pub use process::{ProcessId, ProcessSet, ProcessSetIter, MAX_PROCESSES};
pub use round::{Phase, Round, RoundKind};
pub use value::{CmdKey, Value};
