//! Batches of client commands proposed as one consensus value.
//!
//! Running one consensus instance per client command wastes the fixed
//! per-instance round cost. The standard amortization is to let a replica
//! drain its pending queue into a [`Batch`] and decide the whole batch in a
//! single slot: per-command cost collapses by the batch size while the
//! per-slot Agreement argument is untouched (a batch is just a value).
//!
//! `Batch<V>` derives everything the [`Value`](crate::Value) bounds need, so
//! the blanket implementation makes it a first-class consensus value:
//!
//! ```
//! fn assert_value<V: gencon_types::Value>() {}
//! assert_value::<gencon_types::Batch<u64>>();
//! ```
//!
//! The `Ord` implementation is lexicographic over the command vector
//! **except that the empty batch sorts last**: `ChoicePolicy::
//! DeterministicMin` then always prefers a real proposal over the no-op
//! filler, so replicas whose queues drained cannot starve the loaded ones
//! by winning slots with empty batches. (Any deterministic total order
//! keeps the paper's tie-break argument; this one also keeps the log
//! useful under partial load.)

/// An ordered batch of client commands, decided as a single consensus value.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Batch<V> {
    commands: Vec<V>,
}

impl<V: Ord> Ord for Batch<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.commands.is_empty(), other.commands.is_empty()) {
            (true, true) => Ordering::Equal,
            // Empty (no-op) batches are the *greatest* values: a real
            // proposal always wins a DeterministicMin tie-break.
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.commands.cmp(&other.commands),
        }
    }
}

impl<V: Ord> PartialOrd for Batch<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<V> Batch<V> {
    /// Creates a batch from the given commands (order is preserved into the
    /// applied log).
    #[must_use]
    pub fn new(commands: Vec<V>) -> Self {
        Batch { commands }
    }

    /// The empty batch — the no-op a replica proposes when its queue is
    /// empty but the slot must still fill.
    #[must_use]
    pub fn empty() -> Self {
        Batch {
            commands: Vec::new(),
        }
    }

    /// The batched commands, in proposal order.
    #[must_use]
    pub fn commands(&self) -> &[V] {
        &self.commands
    }

    /// Number of commands in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the batch is a no-op.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Consumes the batch, yielding its commands.
    #[must_use]
    pub fn into_commands(self) -> Vec<V> {
        self.commands
    }

    /// Iterates over the commands.
    pub fn iter(&self) -> std::slice::Iter<'_, V> {
        self.commands.iter()
    }
}

impl<V> From<Vec<V>> for Batch<V> {
    fn from(commands: Vec<V>) -> Self {
        Batch::new(commands)
    }
}

impl<V> IntoIterator for Batch<V> {
    type Item = V;
    type IntoIter = std::vec::IntoIter<V>;

    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

impl<'a, V> IntoIterator for &'a Batch<V> {
    type Item = &'a V;
    type IntoIter = std::slice::Iter<'a, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.commands.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let b = Batch::new(vec![3u64, 1, 2]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.commands(), &[3, 1, 2]);
        assert_eq!(b.clone().into_commands(), vec![3, 1, 2]);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![3, 1, 2]);
        let e: Batch<u64> = Batch::empty();
        assert!(e.is_empty());
        assert_eq!(e, Batch::default());
    }

    #[test]
    fn empty_batch_sorts_last() {
        let noop: Batch<u64> = Batch::empty();
        let real = Batch::new(vec![0u64]);
        assert!(real < noop, "a real proposal must win DeterministicMin");
        assert_eq!(noop.cmp(&Batch::empty()), std::cmp::Ordering::Equal);
        assert!(Batch::new(vec![1u64]) < Batch::new(vec![2u64]));
        assert!(Batch::new(vec![1u64]) < Batch::new(vec![1u64, 0]));
        assert!(Batch::new(vec![u64::MAX]) < noop);
    }

    #[test]
    fn batch_is_a_value() {
        fn assert_value<V: crate::Value>() {}
        assert_value::<Batch<u64>>();
        assert_value::<Batch<String>>();
    }

    #[test]
    fn iteration() {
        let b = Batch::from(vec![1u64, 2]);
        let by_ref: Vec<u64> = (&b).into_iter().copied().collect();
        assert_eq!(by_ref, vec![1, 2]);
        let owned: Vec<u64> = b.into_iter().collect();
        assert_eq!(owned, vec![1, 2]);
    }
}
