//! Process identifiers and sets of processes.

use std::fmt;

/// Maximum number of processes supported by [`ProcessSet`].
///
/// The paper's experiments never exceed a few dozen processes; 256 leaves
/// ample headroom while keeping [`ProcessSet`] a cheap, `Copy`, inline bitset.
pub const MAX_PROCESSES: usize = 256;

const WORDS: usize = MAX_PROCESSES / 64;

/// Identifier of a process in Π.
///
/// Identifiers are dense indices `0..n`. They are assigned at configuration
/// time and never change during an execution.
///
/// ```
/// use gencon_types::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} exceeds MAX_PROCESSES ({MAX_PROCESSES})"
        );
        ProcessId(index as u32)
    }

    /// Returns the dense index of this process (usable to index `Vec`s of
    /// per-process data).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.index()
    }
}

/// A set of processes (a subset of Π), e.g. the output of the `Selector`
/// function or the `validators` variable of Algorithm 1.
///
/// Implemented as an inline bitset of capacity [`MAX_PROCESSES`]; all
/// operations are O(capacity/64) and the type is `Copy`, which keeps the
/// simulator allocation-free on its hot path.
///
/// ```
/// use gencon_types::{ProcessId, ProcessSet};
/// let mut s = ProcessSet::new();
/// s.insert(ProcessId::new(0));
/// s.insert(ProcessId::new(2));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId::new(2)));
/// assert!(!s.contains(ProcessId::new(1)));
/// let t = ProcessSet::range(0, 2); // {p0, p1}
/// assert_eq!(s.union(t).len(), 3);
/// assert_eq!(s.intersection(t).len(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet {
    words: [u64; WORDS],
}

impl ProcessSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        ProcessSet::default()
    }

    /// Creates the set `{first, first+1, ..., first+count-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `first + count > MAX_PROCESSES`.
    #[must_use]
    pub fn range(first: usize, count: usize) -> Self {
        assert!(first + count <= MAX_PROCESSES);
        let mut s = ProcessSet::new();
        for i in first..first + count {
            s.insert(ProcessId::new(i));
        }
        s
    }

    /// Creates a set containing a single process.
    #[must_use]
    pub fn singleton(p: ProcessId) -> Self {
        let mut s = ProcessSet::new();
        s.insert(p);
        s
    }

    /// Inserts a process; returns `true` if it was not already present.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let (w, m) = Self::locate(p);
        let was = self.words[w] & m != 0;
        self.words[w] |= m;
        !was
    }

    /// Removes a process; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let (w, m) = Self::locate(p);
        let was = self.words[w] & m != 0;
        self.words[w] &= !m;
        was
    }

    /// Tests membership.
    #[must_use]
    pub fn contains(&self, p: ProcessId) -> bool {
        let (w, m) = Self::locate(p);
        self.words[w] & m != 0
    }

    /// Number of processes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty (the ∅ checks of lines 15 and 21).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: ProcessSet) -> ProcessSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(other.words) {
            *w |= o;
        }
        out
    }

    /// Set intersection (used for `|Selector(p, φ) ∩ C|` in Selector-liveness).
    #[must_use]
    pub fn intersection(&self, other: ProcessSet) -> ProcessSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(other.words) {
            *w &= o;
        }
        out
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: ProcessSet) -> ProcessSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(other.words) {
            *w &= !o;
        }
        out
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: ProcessSet) -> bool {
        self.words
            .iter()
            .zip(other.words)
            .all(|(&w, o)| w & !o == 0)
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> ProcessSetIter {
        ProcessSetIter {
            set: *self,
            next: 0,
        }
    }

    fn locate(p: ProcessId) -> (usize, u64) {
        let i = p.index();
        (i / 64, 1u64 << (i % 64))
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = ProcessSetIter;
    fn into_iter(self) -> ProcessSetIter {
        ProcessSetIter { set: self, next: 0 }
    }
}

impl IntoIterator for &ProcessSet {
    type Item = ProcessId;
    type IntoIter = ProcessSetIter;
    fn into_iter(self) -> ProcessSetIter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`] in increasing index order.
#[derive(Clone, Debug)]
pub struct ProcessSetIter {
    set: ProcessSet,
    next: usize,
}

impl Iterator for ProcessSetIter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        while self.next < MAX_PROCESSES {
            let i = self.next;
            self.next += 1;
            let p = ProcessId::new(i);
            if self.set.contains(p) {
                return Some(p);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(MAX_PROCESSES - self.next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_set_has_no_members() {
        let s = ProcessSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(p(0)));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::new();
        assert!(s.insert(p(5)));
        assert!(!s.insert(p(5)), "double insert reports already present");
        assert!(s.contains(p(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(p(5)));
        assert!(!s.remove(p(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn membership_across_word_boundaries() {
        let mut s = ProcessSet::new();
        for i in [0, 63, 64, 127, 128, 255] {
            s.insert(p(i));
        }
        assert_eq!(s.len(), 6);
        for i in [0, 63, 64, 127, 128, 255] {
            assert!(s.contains(p(i)), "missing {i}");
        }
        assert!(!s.contains(p(1)));
        assert!(!s.contains(p(65)));
    }

    #[test]
    fn range_constructor() {
        let s = ProcessSet::range(2, 3);
        assert_eq!(
            s.iter().map(ProcessId::index).collect::<Vec<_>>(),
            [2, 3, 4]
        );
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::range(0, 4); // {0,1,2,3}
        let b = ProcessSet::range(2, 4); // {2,3,4,5}
        assert_eq!(a.union(b).len(), 6);
        assert_eq!(a.intersection(b).len(), 2);
        assert_eq!(
            a.difference(b)
                .iter()
                .map(ProcessId::index)
                .collect::<Vec<_>>(),
            [0, 1]
        );
        assert!(ProcessSet::range(2, 2).is_subset(a));
        assert!(!b.is_subset(a));
        assert!(ProcessSet::new().is_subset(a));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s: ProcessSet = [p(200), p(3), p(77)].into_iter().collect();
        let order: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(order, [3, 77, 200]);
    }

    #[test]
    fn singleton_behaviour() {
        let s = ProcessSet::singleton(p(9));
        assert_eq!(s.len(), 1);
        assert!(s.contains(p(9)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(p(7).to_string(), "p7");
        let s = ProcessSet::range(0, 2);
        assert_eq!(s.to_string(), "{p0,p1}");
        assert_eq!(format!("{:?}", ProcessSet::new()), "{}");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PROCESSES")]
    fn out_of_range_id_panics() {
        let _ = ProcessId::new(MAX_PROCESSES);
    }

    #[test]
    fn extend_and_collect() {
        let mut s = ProcessSet::new();
        s.extend([p(1), p(2)]);
        assert_eq!(s.len(), 2);
        let t: ProcessSet = s.iter().collect();
        assert_eq!(s, t);
    }
}
