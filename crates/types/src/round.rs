//! Rounds, phases and the three-round phase structure of Algorithm 1.

use std::fmt;

/// A phase number φ ≥ 1.
///
/// Each phase of the generic algorithm is one attempt to decide, composed of
/// a selection round, an (optional) validation round and a decision round.
///
/// Phase 0 is reserved as the *initial timestamp* value (`ts_p := 0` at
/// initialization, line 3 of Algorithm 1); it never labels an executed phase.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Phase(u64);

impl Phase {
    /// The initial-timestamp sentinel (`ts = 0`).
    pub const ZERO: Phase = Phase(0);
    /// The first executed phase.
    pub const FIRST: Phase = Phase(1);

    /// Creates a phase from its number.
    #[must_use]
    pub fn new(phi: u64) -> Self {
        Phase(phi)
    }

    /// The phase number.
    #[must_use]
    pub fn number(self) -> u64 {
        self.0
    }

    /// The next phase (φ + 1).
    #[must_use]
    pub fn next(self) -> Phase {
        Phase(self.0 + 1)
    }

    /// The previous phase (φ - 1), saturating at 0.
    #[must_use]
    pub fn prev(self) -> Phase {
        Phase(self.0.saturating_sub(1))
    }

    /// Whether this is the initial-timestamp sentinel.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "φ{}", self.0)
    }
}

impl From<u64> for Phase {
    fn from(phi: u64) -> Phase {
        Phase(phi)
    }
}

/// A global round number r ≥ 1 as driven by the lock-step executor.
///
/// The mapping from global rounds to `(Phase, RoundKind)` pairs depends on the
/// algorithm's schedule (3 rounds per phase when `FLAG = φ`, 2 when
/// `FLAG = *`, fewer when §3.1 optimizations apply) and is owned by
/// `gencon-core`'s `Schedule`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Round(u64);

impl Round {
    /// The first round of an execution.
    pub const FIRST: Round = Round(1);

    /// Creates a round from its number (1-based).
    #[must_use]
    pub fn new(r: u64) -> Self {
        Round(r)
    }

    /// The round number.
    #[must_use]
    pub fn number(self) -> u64 {
        self.0
    }

    /// The next round (r + 1).
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// 0-based offset of this round from round 1 (useful for indexing traces).
    #[must_use]
    pub fn offset(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(r: u64) -> Round {
        Round(r)
    }
}

/// The role a round plays inside a phase of Algorithm 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoundKind {
    /// Selection round (r = 3φ − 2): validators are elected and a value is
    /// selected via the FLV function. The round in which `Pcons` must
    /// eventually hold.
    Selection,
    /// Validation round (r = 3φ − 1): validators announce the selected value;
    /// processes validate it and update `ts`. Skipped when `FLAG = *`.
    Validation,
    /// Decision round (r = 3φ): processes exchange `(vote, ts)` and decide on
    /// `TD` matching votes.
    Decision,
}

impl RoundKind {
    /// All three kinds in phase order.
    pub const ALL: [RoundKind; 3] = [
        RoundKind::Selection,
        RoundKind::Validation,
        RoundKind::Decision,
    ];
}

impl fmt::Display for RoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoundKind::Selection => "selection",
            RoundKind::Validation => "validation",
            RoundKind::Decision => "decision",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_arithmetic() {
        assert_eq!(Phase::ZERO.next(), Phase::FIRST);
        assert_eq!(Phase::new(5).prev(), Phase::new(4));
        assert_eq!(Phase::ZERO.prev(), Phase::ZERO, "prev saturates at zero");
        assert!(Phase::ZERO.is_zero());
        assert!(!Phase::FIRST.is_zero());
        assert!(Phase::new(2) < Phase::new(3));
    }

    #[test]
    fn round_arithmetic() {
        assert_eq!(Round::FIRST.number(), 1);
        assert_eq!(Round::FIRST.offset(), 0);
        assert_eq!(Round::new(7).next(), Round::new(8));
        assert_eq!(Round::new(3).offset(), 2);
    }

    #[test]
    fn displays() {
        assert_eq!(Phase::new(2).to_string(), "φ2");
        assert_eq!(Round::new(4).to_string(), "r4");
        assert_eq!(RoundKind::Selection.to_string(), "selection");
        assert_eq!(RoundKind::Validation.to_string(), "validation");
        assert_eq!(RoundKind::Decision.to_string(), "decision");
    }

    #[test]
    fn conversions() {
        assert_eq!(Phase::from(3u64), Phase::new(3));
        assert_eq!(Round::from(3u64), Round::new(3));
    }
}
