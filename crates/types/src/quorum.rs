//! Exact integer quorum arithmetic.
//!
//! Every threshold condition in the paper has the shape `count > (x + y)/2`
//! or `count > x` over integers. Dividing first would silently change strict
//! inequalities (e.g. `3 > 5/2` is true with integer division, but the paper
//! means `3 > 2.5`); these helpers always compare cross-multiplied integers,
//! so they are exact for all inputs.
//!
//! ```
//! use gencon_types::quorum;
//! // "more than (n+b)/2 messages" with n = 4, b = 1: needs ≥ 3.
//! assert!(!quorum::more_than_half(2, 4 + 1));
//! assert!(quorum::more_than_half(3, 4 + 1));
//! ```

/// `true` iff `count > total / 2` in exact (rational) arithmetic,
/// i.e. `2·count > total`.
///
/// Used for: line 15 (`> (n+b)/2` with `total = n + b`), line 22
/// (`> (|validators|+b)/2`), Algorithm 4 line 8 ("a majority of messages"),
/// and the various `> (n+3b+f)/2`-style class bounds.
#[must_use]
pub fn more_than_half(count: usize, total: usize) -> bool {
    2 * count > total
}

/// The least `q` such that `2·q > total`, i.e. `⌊total/2⌋ + 1`.
///
/// This is the number of identical messages needed to satisfy
/// [`more_than_half`].
#[must_use]
pub fn majority_threshold(total: usize) -> usize {
    total / 2 + 1
}

/// `true` iff `count > bound` (a plain strict threshold, spelled out for
/// symmetry with [`more_than_half`] at call sites quoting the paper).
#[must_use]
pub fn more_than(count: usize, bound: usize) -> bool {
    count > bound
}

/// The minimal decision threshold for class 1: least `TD` with
/// `TD > (n + 3b + f)/2` (Table 1), i.e. `⌊(n+3b+f)/2⌋ + 1`.
#[must_use]
pub fn class1_min_td(n: usize, f: usize, b: usize) -> usize {
    (n + 3 * b + f) / 2 + 1
}

/// The minimal decision threshold for class 2: least `TD` with
/// `TD > 3b + f` (Table 1).
#[must_use]
pub fn class2_min_td(f: usize, b: usize) -> usize {
    3 * b + f + 1
}

/// The minimal decision threshold for class 3: least `TD` with
/// `TD > 2b + f` (Table 1).
#[must_use]
pub fn class3_min_td(f: usize, b: usize) -> usize {
    2 * b + f + 1
}

/// The minimal `n` for class 1: `n > 5b + 3f` (Table 1).
#[must_use]
pub fn class1_min_n(f: usize, b: usize) -> usize {
    5 * b + 3 * f + 1
}

/// The minimal `n` for class 2: `n > 4b + 2f` (Table 1).
#[must_use]
pub fn class2_min_n(f: usize, b: usize) -> usize {
    4 * b + 2 * f + 1
}

/// The minimal `n` for class 3: `n > 3b + 2f` (Table 1).
#[must_use]
pub fn class3_min_n(f: usize, b: usize) -> usize {
    3 * b + 2 * f + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_than_half_is_exact() {
        // total = 5: strictly more than 2.5 means at least 3.
        assert!(!more_than_half(2, 5));
        assert!(more_than_half(3, 5));
        // total = 4: strictly more than 2 means at least 3.
        assert!(!more_than_half(2, 4));
        assert!(more_than_half(3, 4));
        // degenerate totals
        assert!(more_than_half(1, 0));
        assert!(!more_than_half(0, 0));
    }

    #[test]
    fn majority_threshold_matches_more_than_half() {
        for total in 0..50 {
            let q = majority_threshold(total);
            assert!(more_than_half(q, total));
            assert!(q == 0 || !more_than_half(q - 1, total));
        }
    }

    #[test]
    fn class_bounds_match_table1_examples() {
        // OneThirdRule: b = 0 ⇒ n > 3f; f = 1 ⇒ n ≥ 4.
        assert_eq!(class1_min_n(1, 0), 4);
        // FaB Paxos: f = 0 ⇒ n > 5b; b = 1 ⇒ n ≥ 6.
        assert_eq!(class1_min_n(0, 1), 6);
        // Paxos/CT: b = 0 ⇒ n > 2f; f = 1 ⇒ n ≥ 3.
        assert_eq!(class2_min_n(1, 0), 3);
        // MQB: f = 0 ⇒ n > 4b; b = 1 ⇒ n ≥ 5.
        assert_eq!(class2_min_n(0, 1), 5);
        // PBFT: f = 0 ⇒ n > 3b; b = 1 ⇒ n ≥ 4.
        assert_eq!(class3_min_n(0, 1), 4);
    }

    #[test]
    fn class_min_td_satisfies_strict_bounds() {
        for f in 0..4 {
            for b in 0..4 {
                let n1 = class1_min_n(f, b);
                let td1 = class1_min_td(n1, f, b);
                assert!(2 * td1 > n1 + 3 * b + f, "class1 TD bound violated");
                // TD must also be reachable: TD ≤ n − b − f.
                assert!(td1 <= n1 - b - f, "class1 TD unreachable at minimal n");

                let td2 = class2_min_td(f, b);
                assert!(td2 > 3 * b + f);
                assert!(td2 <= class2_min_n(f, b) - b - f);

                let td3 = class3_min_td(f, b);
                assert!(td3 > 2 * b + f);
                assert!(td3 <= class3_min_n(f, b) - b - f);
            }
        }
    }

    #[test]
    fn more_than_is_strict() {
        assert!(!more_than(3, 3));
        assert!(more_than(4, 3));
    }
}
