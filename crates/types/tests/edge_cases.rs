//! Edge cases in quorum/round/config arithmetic uncovered while wiring the
//! workspace: the degenerate single-process system, thresholds saturated at
//! `td = n`, and sizes adjacent to `MAX_PROCESSES` and integer limits.

use gencon_types::{
    quorum, Config, ConfigError, Phase, ProcessId, ProcessSet, Round, MAX_PROCESSES,
};

// ---------- n = 1: the smallest legal system -------------------------------

#[test]
fn single_process_system_is_legal_and_self_quorate() {
    let cfg = Config::new(1, 0, 0).unwrap();
    assert_eq!(cfg.n(), 1);
    assert_eq!(cfg.honest_minimum(), 1);
    assert_eq!(cfg.correct_minimum(), 1);
    assert_eq!(cfg.all_processes().len(), 1);
    // One process is a strict majority of itself.
    assert!(quorum::more_than_half(1, 1));
    assert_eq!(quorum::majority_threshold(1), 1);
    // td = 1 = n is the only valid threshold.
    assert!(cfg.validate_threshold(1).is_ok());
    assert_eq!(cfg.validate_threshold(0), Err(ConfigError::ThresholdZero));
    assert_eq!(
        cfg.validate_threshold(2),
        Err(ConfigError::ThresholdUnreachable { td: 2, max: 1 })
    );
}

#[test]
fn single_process_system_admits_no_faults() {
    assert_eq!(
        Config::new(1, 1, 0),
        Err(ConfigError::NoCorrectProcess { n: 1, f: 1, b: 0 })
    );
    assert_eq!(
        Config::new(1, 0, 1),
        Err(ConfigError::NoCorrectProcess { n: 1, f: 0, b: 1 })
    );
    assert_eq!(Config::new(0, 0, 0), Err(ConfigError::NoProcesses));
}

// ---------- td = n: thresholds saturated at the system size ----------------

#[test]
fn threshold_equal_to_n_requires_zero_faults() {
    // With no faults, waiting for all n processes is legal (td = n = n-b-f).
    for n in 1..=8 {
        let cfg = Config::new(n, 0, 0).unwrap();
        assert!(
            cfg.validate_threshold(n).is_ok(),
            "td = n = {n} with f = b = 0"
        );
        assert!(cfg.validate_threshold(n + 1).is_err());
    }
    // A single fault of either kind makes td = n unreachable.
    let crashy = Config::new(4, 1, 0).unwrap();
    assert_eq!(
        crashy.validate_threshold(4),
        Err(ConfigError::ThresholdUnreachable { td: 4, max: 3 })
    );
    let byz = Config::new(4, 0, 1).unwrap();
    assert_eq!(
        byz.validate_threshold(4),
        Err(ConfigError::ThresholdUnreachable { td: 4, max: 3 })
    );
}

#[test]
fn majority_threshold_of_zero_total_is_vacuous_one() {
    // total = 0: no count can exceed half of nothing except a positive one.
    assert_eq!(quorum::majority_threshold(0), 1);
    assert!(!quorum::more_than_half(0, 0));
    assert!(quorum::more_than_half(1, 0));
}

// ---------- overflow-adjacent sizes ----------------------------------------

#[test]
fn config_rejects_sizes_beyond_max_processes() {
    assert!(Config::new(MAX_PROCESSES, 0, 0).is_ok());
    assert_eq!(
        Config::new(MAX_PROCESSES + 1, 0, 0),
        Err(ConfigError::TooManyProcesses {
            n: MAX_PROCESSES + 1
        })
    );
    // Huge n must fail cleanly, not wrap anywhere downstream.
    assert!(matches!(
        Config::new(usize::MAX, 0, 0),
        Err(ConfigError::TooManyProcesses { .. })
    ));
}

#[test]
fn fault_sums_near_usize_max_do_not_overflow_config_validation() {
    // f + b is computed before the n comparison; the largest values that
    // can reach it are bounded by callers, but the check itself must hold
    // for f + b straddling n without wrapping.
    let cfg = Config::new(MAX_PROCESSES, MAX_PROCESSES / 2, MAX_PROCESSES / 2 - 1).unwrap();
    assert_eq!(cfg.correct_minimum(), 1);
    assert!(Config::new(MAX_PROCESSES, MAX_PROCESSES / 2, MAX_PROCESSES / 2).is_err());
}

#[test]
fn quorum_arithmetic_is_exact_at_large_counts() {
    // 2 * count must not be the limiting factor within the supported domain
    // (counts are bounded by MAX_PROCESSES in practice, but the helpers
    // document exactness — check well beyond the practical range).
    let big = 1_000_000_000usize;
    assert!(quorum::more_than_half(big / 2 + 1, big));
    assert!(!quorum::more_than_half(big / 2, big));
    assert_eq!(quorum::majority_threshold(big), big / 2 + 1);
    // Odd totals round the right way.
    assert!(quorum::more_than_half(big / 2 + 1, big + 1));
    assert!(!quorum::more_than_half(big / 2, big + 1));
}

#[test]
fn class_min_bounds_are_monotone_in_faults() {
    // Adding faults can never shrink the minimal system, for every class.
    for f in 0..8 {
        for b in 0..8 {
            assert!(quorum::class1_min_n(f + 1, b) > quorum::class1_min_n(f, b));
            assert!(quorum::class1_min_n(f, b + 1) > quorum::class1_min_n(f, b));
            assert!(quorum::class2_min_n(f + 1, b) > quorum::class2_min_n(f, b));
            assert!(quorum::class2_min_n(f, b + 1) > quorum::class2_min_n(f, b));
            assert!(quorum::class3_min_n(f + 1, b) > quorum::class3_min_n(f, b));
            assert!(quorum::class3_min_n(f, b + 1) > quorum::class3_min_n(f, b));
        }
    }
}

// ---------- round/phase arithmetic at the extremes -------------------------

#[test]
fn phase_prev_saturates_at_zero() {
    assert_eq!(Phase::ZERO.prev(), Phase::ZERO);
    assert_eq!(Phase::FIRST.prev(), Phase::ZERO);
    assert!(Phase::ZERO.is_zero());
    assert!(!Phase::FIRST.is_zero());
    assert_eq!(Phase::new(u64::MAX).number(), u64::MAX);
}

#[test]
fn round_offset_is_zero_based_and_display_matches() {
    assert_eq!(Round::FIRST.offset(), 0);
    assert_eq!(Round::new(10).offset(), 9);
    assert_eq!(Round::FIRST.next().number(), 2);
    assert_eq!(Round::new(3).to_string(), "r3");
    assert_eq!(Phase::new(2).to_string(), "φ2");
}

#[test]
fn process_set_saturates_at_max_processes() {
    let full = ProcessSet::range(0, MAX_PROCESSES);
    assert_eq!(full.len(), MAX_PROCESSES);
    let last = ProcessId::new(MAX_PROCESSES - 1);
    assert!(full.contains(last));
    // Removing and re-inserting the topmost id round-trips.
    let mut set = full;
    assert!(set.remove(last));
    assert_eq!(set.len(), MAX_PROCESSES - 1);
    assert!(set.insert(last));
    assert!(set.is_subset(ProcessSet::range(0, MAX_PROCESSES)));
}
