//! Property tests for the foundation types: `ProcessSet` behaves as a set,
//! quorum arithmetic is exact, and the class bounds are mutually
//! consistent.

use proptest::prelude::*;

use gencon_types::{quorum, Config, ProcessId, ProcessSet};

fn ids() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..256, 0..40)
}

proptest! {
    #[test]
    fn process_set_models_btreeset(a in ids(), b in ids()) {
        use std::collections::BTreeSet;
        let sa: ProcessSet = a.iter().map(|&i| ProcessId::new(i)).collect();
        let sb: ProcessSet = b.iter().map(|&i| ProcessId::new(i)).collect();
        let ra: BTreeSet<usize> = a.iter().copied().collect();
        let rb: BTreeSet<usize> = b.iter().copied().collect();

        prop_assert_eq!(sa.len(), ra.len());
        prop_assert_eq!(
            sa.union(sb).iter().map(ProcessId::index).collect::<Vec<_>>(),
            ra.union(&rb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sa.intersection(sb).iter().map(ProcessId::index).collect::<Vec<_>>(),
            ra.intersection(&rb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sa.difference(sb).iter().map(ProcessId::index).collect::<Vec<_>>(),
            ra.difference(&rb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(sa.is_subset(sb), ra.is_subset(&rb));
    }

    #[test]
    fn set_insert_remove_consistency(a in ids(), x in 0usize..256) {
        let mut s: ProcessSet = a.iter().map(|&i| ProcessId::new(i)).collect();
        let p = ProcessId::new(x);
        let had = s.contains(p);
        prop_assert_eq!(s.insert(p), !had);
        prop_assert!(s.contains(p));
        prop_assert!(s.remove(p));
        prop_assert!(!s.contains(p));
        prop_assert!(!s.remove(p));
    }

    #[test]
    fn more_than_half_is_exact_rational(count in 0usize..1000, total in 0usize..1000) {
        // Compare against exact rational arithmetic: count > total/2.
        let exact = (count as f64) > (total as f64) / 2.0;
        prop_assert_eq!(quorum::more_than_half(count, total), exact);
    }

    #[test]
    fn majority_threshold_is_minimal(total in 0usize..1000) {
        let q = quorum::majority_threshold(total);
        prop_assert!(quorum::more_than_half(q, total));
        if q > 0 {
            prop_assert!(!quorum::more_than_half(q - 1, total));
        }
    }

    #[test]
    fn class_bounds_are_ordered(f in 0usize..10, b in 0usize..10) {
        // Class 3 tolerates the most with the fewest processes:
        // min_n(class3) ≤ min_n(class2) ≤ min_n(class1).
        let n1 = quorum::class1_min_n(f, b);
        let n2 = quorum::class2_min_n(f, b);
        let n3 = quorum::class3_min_n(f, b);
        prop_assert!(n3 <= n2 && n2 <= n1);
        // And every class's minimal TD is reachable at its minimal n.
        if f + b > 0 {
            let c1 = Config::new(n1, f, b).unwrap();
            prop_assert!(c1.validate_threshold(quorum::class1_min_td(n1, f, b)).is_ok());
            let c2 = Config::new(n2, f, b).unwrap();
            prop_assert!(c2.validate_threshold(quorum::class2_min_td(f, b)).is_ok());
            let c3 = Config::new(n3, f, b).unwrap();
            prop_assert!(c3.validate_threshold(quorum::class3_min_td(f, b)).is_ok());
        }
    }

    #[test]
    fn config_accessors_consistent(n in 1usize..100, f in 0usize..10, b in 0usize..10) {
        match Config::new(n, f, b) {
            Ok(cfg) => {
                prop_assert!(f + b < n);
                prop_assert_eq!(cfg.honest_minimum(), n - b);
                prop_assert_eq!(cfg.correct_minimum(), n - b - f);
                prop_assert_eq!(cfg.all_processes().len(), n);
            }
            Err(_) => prop_assert!(f + b >= n),
        }
    }
}
