//! Byzantine adversary strategies attacking the generic consensus protocol.
//!
//! Each strategy implements [`gencon_rounds::Adversary`] for the
//! [`gencon_core::ConsensusMsg`] message type and exhibits one of the
//! behaviours the paper's Byzantine model allows (§2.1–2.2):
//!
//! * [`Silent`] — sends nothing, ever (a crash-like Byzantine process);
//! * [`Equivocator`] — sends *different* plausible protocol messages to the
//!   two halves of the system in every round, the canonical attack that
//!   `Pcons` implementations must neutralize;
//! * [`FreshLiar`] — always claims its vote was validated in the current
//!   phase (timestamp forgery, the attack the class-2 FLV's `> b`
//!   multiplicity rule defends against);
//! * [`HistoryForger`] — fabricates history entries to smuggle a value
//!   through the class-3 FLV's attestation check (defended by the `> b`
//!   attestor rule);
//! * [`SplitVoter`] — silent until decision rounds, where it reports
//!   conflicting `⟨v, φ⟩` votes to different halves, hunting for double
//!   decisions at the resilience boundary.
//!
//! None of these can impersonate honest processes — the executor attributes
//! messages to their true senders, and `gencon-crypto` authenticators
//! enforce the same in networked deployments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gencon_core::{ConsensusMsg, DecisionMsg, History, Schedule, SelectionMsg, ValidationMsg};
use gencon_rounds::{Adversary, HeardOf, Outgoing};
use gencon_types::{Config, Phase, ProcessId, Round, RoundKind, Value};

/// Shared construction data for strategies.
#[derive(Clone, Debug)]
pub struct AdversaryCtx {
    /// System parameters.
    pub cfg: Config,
    /// The honest algorithm's schedule (the adversary speaks its language).
    pub schedule: Schedule,
}

impl AdversaryCtx {
    /// Creates a context.
    #[must_use]
    pub fn new(cfg: Config, schedule: Schedule) -> Self {
        AdversaryCtx { cfg, schedule }
    }
}

fn split_value<V: Value>(dest: ProcessId, n: usize, v0: &V, v1: &V) -> V {
    if dest.index() < n / 2 {
        v0.clone()
    } else {
        v1.clone()
    }
}

/// A Byzantine process that never sends anything.
///
/// Strictly weaker than a crash fault for the protocol (it never helps with
/// quorums either), so every threshold proof must already tolerate it.
#[derive(Clone, Debug)]
pub struct Silent<V> {
    id: ProcessId,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V: Value> Silent<V> {
    /// Creates the silent adversary.
    #[must_use]
    pub fn new(id: ProcessId) -> Self {
        Silent {
            id,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V: Value> Adversary for Silent<V> {
    type Msg = ConsensusMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&mut self, _r: Round) -> Outgoing<Self::Msg> {
        Outgoing::Silent
    }

    fn observe(&mut self, _r: Round, _heard: &HeardOf<Self::Msg>) {}
}

/// A Byzantine process that never sends anything, for *any* message type —
/// the protocol-agnostic variant of [`Silent`] (useful when attacking
/// compositions such as `gencon-smr` bundles or `gencon-pcons` stacks).
#[derive(Clone, Debug)]
pub struct Mute<M> {
    id: ProcessId,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: Clone + Send + 'static> Mute<M> {
    /// Creates the mute adversary.
    #[must_use]
    pub fn new(id: ProcessId) -> Self {
        Mute {
            id,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M: Clone + Send + 'static> Adversary for Mute<M> {
    type Msg = M;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&mut self, _r: Round) -> Outgoing<M> {
        Outgoing::Silent
    }

    fn observe(&mut self, _r: Round, _heard: &HeardOf<M>) {}
}

/// Equivocates in every round: the first half of the system hears `v0`
/// everywhere a value appears, the second half hears `v1`.
#[derive(Clone, Debug)]
pub struct Equivocator<V> {
    id: ProcessId,
    ctx: AdversaryCtx,
    v0: V,
    v1: V,
}

impl<V: Value> Equivocator<V> {
    /// Creates an equivocator pushing `v0` to low ids and `v1` to high ids.
    #[must_use]
    pub fn new(id: ProcessId, ctx: AdversaryCtx, v0: V, v1: V) -> Self {
        Equivocator { id, ctx, v0, v1 }
    }

    fn selection_msg(&self, phase: Phase, v: &V) -> ConsensusMsg<V> {
        // Claim the vote was validated last phase and manufacture the
        // matching history.
        let ts = phase.prev();
        let mut history = History::initial(v.clone());
        if !ts.is_zero() {
            history.record(v.clone(), ts);
        }
        ConsensusMsg::Selection(
            phase,
            SelectionMsg {
                vote: v.clone(),
                ts,
                history,
                selector: self.ctx.cfg.all_processes(),
            },
        )
    }
}

impl<V: Value> Adversary for Equivocator<V> {
    type Msg = ConsensusMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        let (phase, kind) = self.ctx.schedule.locate(r);
        let n = self.ctx.cfg.n();
        let msgs = (0..n)
            .map(|i| {
                let dest = ProcessId::new(i);
                let v = split_value(dest, n, &self.v0, &self.v1);
                let msg = match kind {
                    RoundKind::Selection => self.selection_msg(phase, &v),
                    RoundKind::Validation => ConsensusMsg::Validation(
                        phase,
                        ValidationMsg {
                            select: Some(v),
                            validators: self.ctx.cfg.all_processes(),
                        },
                    ),
                    RoundKind::Decision => {
                        ConsensusMsg::Decision(phase, DecisionMsg { vote: v, ts: phase })
                    }
                };
                (dest, msg)
            })
            .collect();
        Outgoing::PerDest(msgs)
    }

    fn observe(&mut self, _r: Round, _heard: &HeardOf<Self::Msg>) {}
}

/// Sends consistent messages but always pretends its vote was validated in
/// the *current* phase (maximal timestamp forgery).
#[derive(Clone, Debug)]
pub struct FreshLiar<V> {
    id: ProcessId,
    ctx: AdversaryCtx,
    v: V,
}

impl<V: Value> FreshLiar<V> {
    /// Creates the liar pushing value `v`.
    #[must_use]
    pub fn new(id: ProcessId, ctx: AdversaryCtx, v: V) -> Self {
        FreshLiar { id, ctx, v }
    }
}

impl<V: Value> Adversary for FreshLiar<V> {
    type Msg = ConsensusMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        let (phase, kind) = self.ctx.schedule.locate(r);
        let msg = match kind {
            RoundKind::Selection => {
                let mut history = History::initial(self.v.clone());
                history.record(self.v.clone(), phase);
                ConsensusMsg::Selection(
                    phase,
                    SelectionMsg {
                        vote: self.v.clone(),
                        ts: phase, // impossibly fresh timestamp
                        history,
                        selector: self.ctx.cfg.all_processes(),
                    },
                )
            }
            RoundKind::Validation => ConsensusMsg::Validation(
                phase,
                ValidationMsg {
                    select: Some(self.v.clone()),
                    validators: self.ctx.cfg.all_processes(),
                },
            ),
            RoundKind::Decision => ConsensusMsg::Decision(
                phase,
                DecisionMsg {
                    vote: self.v.clone(),
                    ts: phase,
                },
            ),
        };
        Outgoing::Broadcast(msg)
    }

    fn observe(&mut self, _r: Round, _heard: &HeardOf<Self::Msg>) {}
}

/// Class-3 attack: fabricates history attestations for a value nobody
/// selected, trying to force it through Algorithm 4's line 2.
#[derive(Clone, Debug)]
pub struct HistoryForger<V> {
    id: ProcessId,
    ctx: AdversaryCtx,
    v: V,
    forged_phases: Vec<u64>,
}

impl<V: Value> HistoryForger<V> {
    /// Creates the forger attesting `(v, φ)` for every `φ` in
    /// `forged_phases`.
    #[must_use]
    pub fn new(id: ProcessId, ctx: AdversaryCtx, v: V, forged_phases: Vec<u64>) -> Self {
        HistoryForger {
            id,
            ctx,
            v,
            forged_phases,
        }
    }
}

impl<V: Value> Adversary for HistoryForger<V> {
    type Msg = ConsensusMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        let (phase, kind) = self.ctx.schedule.locate(r);
        match kind {
            RoundKind::Selection => {
                let mut history = History::new();
                for &phi in &self.forged_phases {
                    history.record(self.v.clone(), Phase::new(phi));
                }
                let ts = self
                    .forged_phases
                    .iter()
                    .max()
                    .copied()
                    .map(Phase::new)
                    .unwrap_or(Phase::ZERO);
                Outgoing::Broadcast(ConsensusMsg::Selection(
                    phase,
                    SelectionMsg {
                        vote: self.v.clone(),
                        ts,
                        history,
                        selector: self.ctx.cfg.all_processes(),
                    },
                ))
            }
            RoundKind::Validation => Outgoing::Broadcast(ConsensusMsg::Validation(
                phase,
                ValidationMsg {
                    select: Some(self.v.clone()),
                    validators: self.ctx.cfg.all_processes(),
                },
            )),
            RoundKind::Decision => Outgoing::Broadcast(ConsensusMsg::Decision(
                phase,
                DecisionMsg {
                    vote: self.v.clone(),
                    ts: phase,
                },
            )),
        }
    }

    fn observe(&mut self, _r: Round, _heard: &HeardOf<Self::Msg>) {}
}

/// Silent until decision rounds, where it reports conflicting `⟨v, φ⟩`
/// votes to different halves — the minimal adversary for double-decision
/// hunting at the resilience boundary (experiment E1).
#[derive(Clone, Debug)]
pub struct SplitVoter<V> {
    id: ProcessId,
    ctx: AdversaryCtx,
    v0: V,
    v1: V,
}

impl<V: Value> SplitVoter<V> {
    /// Creates a split voter (low ids hear `v0`, high ids `v1`).
    #[must_use]
    pub fn new(id: ProcessId, ctx: AdversaryCtx, v0: V, v1: V) -> Self {
        SplitVoter { id, ctx, v0, v1 }
    }
}

impl<V: Value> Adversary for SplitVoter<V> {
    type Msg = ConsensusMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        let (phase, kind) = self.ctx.schedule.locate(r);
        if kind != RoundKind::Decision {
            return Outgoing::Silent;
        }
        let n = self.ctx.cfg.n();
        let msgs = (0..n)
            .map(|i| {
                let dest = ProcessId::new(i);
                let v = split_value(dest, n, &self.v0, &self.v1);
                (
                    dest,
                    ConsensusMsg::Decision(phase, DecisionMsg { vote: v, ts: phase }),
                )
            })
            .collect();
        Outgoing::PerDest(msgs)
    }

    fn observe(&mut self, _r: Round, _heard: &HeardOf<Self::Msg>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_core::Flag;

    fn ctx() -> AdversaryCtx {
        AdversaryCtx::new(
            Config::byzantine(4, 1).unwrap(),
            Schedule::new(Flag::Phi, false),
        )
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn silent_stays_silent() {
        let mut s: Silent<u64> = Silent::new(p(3));
        assert_eq!(s.id(), p(3));
        assert!(matches!(s.send(Round::new(1)), Outgoing::Silent));
    }

    #[test]
    fn equivocator_splits_every_round_kind() {
        let mut e = Equivocator::new(p(3), ctx(), 10u64, 20u64);
        for r in 1..=3u64 {
            let out = e.send(Round::new(r));
            let low = out.message_for(p(0)).unwrap();
            let high = out.message_for(p(3)).unwrap();
            assert_ne!(low, high, "round {r} must equivocate");
        }
    }

    #[test]
    fn equivocator_selection_messages_are_plausible() {
        let mut e = Equivocator::new(p(3), ctx(), 10u64, 20u64);
        // round 4 = selection of phase 2
        let out = e.send(Round::new(4));
        let m = out.message_for(p(0)).unwrap();
        let sel = m.as_selection().unwrap();
        assert_eq!(sel.vote, 10);
        assert_eq!(sel.ts, Phase::new(1));
        assert!(
            sel.history.contains(&10, Phase::new(1)),
            "forged history matches claim"
        );
    }

    #[test]
    fn fresh_liar_claims_current_phase() {
        let mut l = FreshLiar::new(p(3), ctx(), 99u64);
        let out = l.send(Round::new(4)); // selection, phase 2
        let m = out.message_for(p(1)).unwrap();
        let sel = m.as_selection().unwrap();
        assert_eq!(sel.ts, Phase::new(2));
        let out_d = l.send(Round::new(6)); // decision, phase 2
        let d = out_d.message_for(p(1)).unwrap();
        assert_eq!(d.as_decision().unwrap().ts, Phase::new(2));
    }

    #[test]
    fn history_forger_attests_requested_phases() {
        let mut f = HistoryForger::new(p(3), ctx(), 7u64, vec![1, 3]);
        let out = f.send(Round::new(10)); // selection, phase 4
        let m = out.message_for(p(0)).unwrap();
        let sel = m.as_selection().unwrap();
        assert!(sel.history.contains(&7, Phase::new(1)));
        assert!(sel.history.contains(&7, Phase::new(3)));
        assert_eq!(sel.ts, Phase::new(3));
    }

    #[test]
    fn split_voter_only_speaks_in_decisions() {
        let mut s = SplitVoter::new(p(3), ctx(), 1u64, 2u64);
        assert!(matches!(s.send(Round::new(1)), Outgoing::Silent));
        assert!(matches!(s.send(Round::new(2)), Outgoing::Silent));
        let out = s.send(Round::new(3));
        assert_eq!(
            out.message_for(p(0)).unwrap().as_decision().unwrap().vote,
            1
        );
        assert_eq!(
            out.message_for(p(3)).unwrap().as_decision().unwrap().vote,
            2
        );
    }

    #[test]
    fn observe_is_a_no_op() {
        let mut e = Equivocator::new(p(3), ctx(), 1u64, 2u64);
        let heard: HeardOf<ConsensusMsg<u64>> = HeardOf::empty(4);
        e.observe(Round::new(1), &heard);
        let mut l = FreshLiar::new(p(3), ctx(), 1u64);
        l.observe(Round::new(1), &heard);
    }
}
